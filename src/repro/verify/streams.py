"""Deterministic per-test RNG stream allocation.

Statistical tests need *many* independent random streams (one per
trial), and a failure must reproduce exactly — on any machine, in any
test order, under any parallelism.  The allocator derives every stream
from ``(root_seed, stream name)`` through SHA-256 into a
``numpy.random.SeedSequence``, so:

* two different names never collide (up to hash collisions);
* the same ``(root_seed, name)`` pair yields bit-identical draws on
  every platform numpy supports;
* a failing test can print ``allocator.describe(name)`` and anyone can
  replay that exact stream.
"""

from __future__ import annotations

import hashlib
from typing import List

import numpy as np

from repro._validation import check_integer

__all__ = ["StreamAllocator"]


class StreamAllocator:
    """Names -> reproducible, independent numpy generators.

    Parameters
    ----------
    root_seed:
        The suite-level seed; tests hold it constant so every run draws
        the same streams.
    namespace:
        Optional prefix isolating one module's streams from another's
        (e.g. ``"verify.laplace"``), so name reuse across files is safe.
    """

    def __init__(self, root_seed: int, namespace: str = "") -> None:
        check_integer(root_seed, "root_seed", minimum=0)
        self.root_seed = int(root_seed)
        self.namespace = str(namespace)

    def _entropy(self, name: str) -> List[int]:
        token = f"{self.namespace}/{name}".encode("utf-8")
        digest = hashlib.sha256(token).digest()
        words = [
            int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
        ]
        return [self.root_seed] + words

    def seed_sequence(self, name: str) -> np.random.SeedSequence:
        """The :class:`~numpy.random.SeedSequence` backing ``name``."""
        return np.random.SeedSequence(self._entropy(name))

    def generator(self, name: str) -> np.random.Generator:
        """A fresh generator for ``name`` (same name -> same stream)."""
        return np.random.default_rng(self.seed_sequence(name))

    def generators(self, name: str, count: int) -> List[np.random.Generator]:
        """``count`` independent child generators spawned under ``name``.

        Children are spawned from the named seed sequence, so trial ``i``
        of a statistical test always sees the same stream regardless of
        how many trials run, in what order, or in which process.
        """
        check_integer(count, "count", minimum=1)
        children = self.seed_sequence(name).spawn(count)
        return [np.random.default_rng(child) for child in children]

    def describe(self, name: str) -> str:
        """Human-readable reproduction recipe for a stream."""
        return (
            f"StreamAllocator(root_seed={self.root_seed}, "
            f"namespace={self.namespace!r}).generator({name!r})"
        )

    def __repr__(self) -> str:
        return (
            f"StreamAllocator(root_seed={self.root_seed}, "
            f"namespace={self.namespace!r})"
        )
