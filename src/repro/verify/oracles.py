"""Closed-form error oracles for every publisher in the library.

An :class:`ErrorOracle` packages the *analytic* first two moments of a
publisher's output — the deterministic structural bias per bin and the
full noise covariance across bins — from which the expected error of
any point or range workload follows exactly:

* ``unit_mse`` — expected mean squared error of the point-query
  workload, ``mean_i(bias_i^2 + Var_i)``;
* ``range_variance(lo, hi)`` / ``range_bias(lo, hi)`` — moments of a
  range-sum estimate, read off the covariance (correlated noise inside
  merged buckets is what separates NoiseFirst/StructureFirst from the
  Dwork baseline, so the full covariance matters);
* ``workload_mse(workload)`` — expected MSE over an arbitrary
  :class:`~repro.workloads.Workload`.

Provenance of each formula is documented on its builder and collected in
``docs/verification.md``.  Oracles are ``exact`` when the publisher's
structure is deterministic (or conditioned on, via publish metadata) and
``upper_bound`` when only a bound is analytic.  Linear estimators
(Boost, Privelet, DAWA-lite's bucket tree, Fourier reconstruction) get
their covariance by exact basis propagation through the very code that
publishes — see :mod:`repro.verify.linearity` — so a mis-implemented
transform shows up as a calibration failure, not a silently wrong test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro._validation import check_counts, check_integer, check_positive
from repro.baselines.boost import build_tree_sums, consistent_leaves
from repro.baselines.privelet import haar_inverse, haar_transform
from repro.core.publisher import Publisher
from repro.hist.histogram import Histogram
from repro.partition.partition import Partition
from repro.verify.linearity import linear_operator_matrix, output_covariance
from repro.workloads.workload import Workload

__all__ = [
    "ErrorOracle",
    "dwork_oracle",
    "uniform_flat_oracle",
    "boost_oracle",
    "privelet_oracle",
    "noisefirst_oracle",
    "structurefirst_oracle",
    "ahp_oracle",
    "dawa_oracle",
    "fourier_oracle",
    "mwem_full_range_oracle",
    "identity2d_oracle",
    "uniformgrid_oracle",
    "uniform_stream_oracle",
    "expected_variance",
    "oracle_from_result",
    "ORACLE_BUILDERS",
]


@dataclass(frozen=True)
class ErrorOracle:
    """Analytic bias + noise covariance of one publisher configuration."""

    publisher: str
    kind: str  # "exact" | "upper_bound"
    per_bin_bias: np.ndarray
    covariance: np.ndarray
    notes: str = ""

    def __post_init__(self) -> None:
        bias = np.asarray(self.per_bin_bias, dtype=np.float64)
        cov = np.asarray(self.covariance, dtype=np.float64)
        if bias.ndim != 1:
            raise ValueError("per_bin_bias must be 1-D")
        if cov.shape != (len(bias), len(bias)):
            raise ValueError(
                f"covariance shape {cov.shape} does not match "
                f"{len(bias)} bins"
            )
        if self.kind not in ("exact", "upper_bound"):
            raise ValueError(f"kind must be exact|upper_bound, got {self.kind}")
        object.__setattr__(self, "per_bin_bias", bias)
        object.__setattr__(self, "covariance", cov)

    @property
    def n(self) -> int:
        return len(self.per_bin_bias)

    @property
    def per_bin_variance(self) -> np.ndarray:
        """Noise variance of each published bin."""
        return np.diag(self.covariance).copy()

    def unit_mse(self) -> float:
        """Expected MSE of the unit (point-query) workload."""
        return float(np.mean(self.per_bin_bias**2 + self.per_bin_variance))

    def range_bias(self, lo: int, hi: int) -> float:
        """Deterministic bias of the range sum ``[lo, hi]`` (inclusive)."""
        self._check_range(lo, hi)
        return float(self.per_bin_bias[lo : hi + 1].sum())

    def range_variance(self, lo: int, hi: int) -> float:
        """Noise variance of the range sum ``[lo, hi]`` (inclusive)."""
        self._check_range(lo, hi)
        return float(self.covariance[lo : hi + 1, lo : hi + 1].sum())

    def workload_mse(self, workload: "Workload | str") -> float:
        """Expected MSE over a workload (``"unit"`` for point queries)."""
        if isinstance(workload, str):
            if workload != "unit":
                raise ValueError(f"unknown workload alias {workload!r}")
            return self.unit_mse()
        if workload.n != self.n:
            raise ValueError(
                f"workload built for {workload.n} bins, oracle has {self.n}"
            )
        total = 0.0
        for q in workload:
            total += (
                self.range_bias(q.lo, q.hi) ** 2
                + self.range_variance(q.lo, q.hi)
            )
        return total / len(workload)

    def _check_range(self, lo: int, hi: int) -> None:
        if not 0 <= lo <= hi < self.n:
            raise ValueError(
                f"range [{lo}, {hi}] outside oracle of {self.n} bins"
            )


def _shared_noise_covariance(
    groups: Sequence[Sequence[int]], group_variances: Sequence[float], n: int
) -> np.ndarray:
    """Covariance when every bin of a group carries the *same* noise draw."""
    cov = np.zeros((n, n), dtype=np.float64)
    for bins, var in zip(groups, group_variances):
        idx = np.asarray(list(bins), dtype=np.int64)
        cov[np.ix_(idx, idx)] = var
    return cov


# ---------------------------------------------------------------------------
# Paper baselines
# ---------------------------------------------------------------------------

def dwork_oracle(
    n: int, epsilon: float, sensitivity: float = 1.0
) -> ErrorOracle:
    """Identity baseline: ``Lap(sens/eps)`` per bin, independent.

    Per-bin variance ``2 (sens/eps)^2``; a length-``L`` range accumulates
    ``L`` independent noises — Dwork et al. (TCC 2006), the ``2L/eps^2``
    range law the paper's Section 2 quotes.
    """
    check_integer(n, "n", minimum=1)
    check_positive(epsilon, "epsilon")
    check_positive(sensitivity, "sensitivity")
    var = 2.0 * (sensitivity / epsilon) ** 2
    return ErrorOracle(
        publisher="dwork",
        kind="exact",
        per_bin_bias=np.zeros(n),
        covariance=np.eye(n) * var,
        notes=f"iid Lap({sensitivity:g}/{epsilon:g}) per bin",
    )


def uniform_flat_oracle(
    counts: Sequence[float], epsilon: float
) -> ErrorOracle:
    """One noisy total spread uniformly: bias to the mean, shared noise.

    Every bin publishes ``(total + Lap(1/eps)) / n``: bias
    ``mean(c) - c_i``, variance ``2/(n eps)^2``, and the noise of all
    bins is the *same* draw (rank-one covariance).
    """
    arr = check_counts(counts, "counts")
    check_positive(epsilon, "epsilon")
    n = len(arr)
    var = 2.0 / (epsilon * epsilon) / (n * n)
    cov = np.full((n, n), var, dtype=np.float64)
    return ErrorOracle(
        publisher="uniform",
        kind="exact",
        per_bin_bias=np.full(n, arr.mean()) - arr,
        covariance=cov,
        notes="noisy total / n; single shared Laplace draw",
    )


def boost_oracle(
    n: int, epsilon: float, branching: int = 2, consistency: bool = True
) -> ErrorOracle:
    """Boost: exact covariance of Hay et al.'s consistent estimator.

    Every node of the height-``h`` interval tree is measured with
    ``Lap(h/eps)`` (variance ``2 h^2/eps^2``); the two-pass
    least-squares consistency is a *linear* map from the measurements to
    the leaves, so the output covariance is propagated exactly through
    the publishing code itself (Hay et al., VLDB 2010, Sections 4-5; the
    closed-form variance reductions of their Theorem 5 fall out of this
    covariance).  The estimator is unbiased, so the bias vector is zero.
    """
    check_integer(n, "n", minimum=1)
    check_positive(epsilon, "epsilon")
    check_integer(branching, "branching", minimum=2)
    b = branching
    padded = 1
    while padded < n:
        padded *= b
    level_sizes = [len(level) for level in build_tree_sums(np.zeros(padded), b)]
    height = len(level_sizes)
    n_meas = sum(level_sizes)
    var_node = 2.0 * (height / epsilon) ** 2

    def estimator(measurements: np.ndarray) -> np.ndarray:
        levels: List[np.ndarray] = []
        offset = 0
        for size in level_sizes:
            levels.append(measurements[offset : offset + size])
            offset += size
        if consistency:
            leaves = consistent_leaves(levels, b)
        else:
            leaves = levels[0]
        return leaves[:n]

    matrix = linear_operator_matrix(estimator, n_meas)
    cov = output_covariance(matrix, np.full(n_meas, var_node))
    return ErrorOracle(
        publisher="boost",
        kind="exact",
        per_bin_bias=np.zeros(n),
        covariance=cov,
        notes=(
            f"height {height} tree, Lap({height:g}/{epsilon:g}) per node, "
            f"consistency={'on' if consistency else 'off'}"
        ),
    )


def privelet_oracle(n: int, epsilon: float) -> ErrorOracle:
    """Privelet: exact covariance of the noisy inverse Haar transform.

    With padded size ``m = 2^L``, generalized sensitivity
    ``rho = 1 + L/2`` and ``lambda = rho/eps`` (Xiao et al., ICDE 2010,
    Section 4), the base coefficient carries ``Lap(lambda/m)`` and a
    level-``l`` detail ``Lap(lambda / 2^(l-1))``.  The reconstruction is
    linear, so the covariance is exact; its diagonal reproduces the
    closed-form per-bin variance in
    :func:`repro.analysis.variance.privelet_unit_variance`, and its
    range sums realize the ``O(log^3 n / eps^2)`` range-query bound.
    """
    check_integer(n, "n", minimum=1)
    check_positive(epsilon, "epsilon")
    m = 1
    while m < n:
        m *= 2
    _, detail_template = haar_transform(np.zeros(m))
    levels = len(detail_template)
    rho = 1.0 + levels / 2.0
    lam = rho / epsilon

    sizes = [len(d) for d in detail_template]
    n_meas = 1 + sum(sizes)
    variances = np.empty(n_meas, dtype=np.float64)
    variances[0] = 2.0 * (lam / m) ** 2
    offset = 1
    for idx, size in enumerate(sizes):
        weight = 2.0 ** idx  # level idx+1 has weight 2^(level-1)
        variances[offset : offset + size] = 2.0 * (lam / weight) ** 2
        offset += size

    def estimator(measurements: np.ndarray) -> np.ndarray:
        base = float(measurements[0])
        details: List[np.ndarray] = []
        pos = 1
        for size in sizes:
            details.append(measurements[pos : pos + size])
            pos += size
        return haar_inverse(base, details)[:n]

    matrix = linear_operator_matrix(estimator, n_meas)
    cov = output_covariance(matrix, variances)
    return ErrorOracle(
        publisher="privelet",
        kind="exact",
        per_bin_bias=np.zeros(n),
        covariance=cov,
        notes=f"m={m}, rho={rho:g}, lambda={lam:g}",
    )


# ---------------------------------------------------------------------------
# The paper's algorithms (conditioned on the realized structure)
# ---------------------------------------------------------------------------

def noisefirst_oracle(
    counts: Sequence[float],
    partition: Partition,
    epsilon: float,
    sensitivity: float = 1.0,
) -> ErrorOracle:
    """NoiseFirst conditioned on its final partition (paper Section 4).

    A bucket of width ``w`` publishes the *mean* of ``w`` independent
    ``Lap(sens/eps)`` draws for each of its bins: per-bin variance
    ``2 (sens/eps)^2 / w``, perfectly correlated inside the bucket, and
    structural bias ``bucket-mean(c) - c_i`` — the bias+variance
    decomposition of Xu et al.'s Eq. (4).  Exact when the partition is
    held fixed; the adaptive ``k*`` selection reuses the same noisy data
    and adds a selection correlation this oracle deliberately excludes
    (freeze the partition, or use well-separated steps, to test it).
    """
    arr = check_counts(counts, "counts")
    check_positive(epsilon, "epsilon")
    check_positive(sensitivity, "sensitivity")
    if partition.n != len(arr):
        raise ValueError("partition and counts sizes differ")
    sigma2 = 2.0 * (sensitivity / epsilon) ** 2
    groups = [list(range(start, stop)) for start, stop in partition.buckets()]
    variances = [sigma2 / (stop - start) for start, stop in partition.buckets()]
    return ErrorOracle(
        publisher="noisefirst",
        kind="exact",
        per_bin_bias=partition.apply_means(arr) - arr,
        covariance=_shared_noise_covariance(groups, variances, len(arr)),
        notes=f"k={partition.k}; bucket-averaged Lap noise",
    )


def structurefirst_oracle(
    counts: Sequence[float],
    partition: Partition,
    eps_noise: float,
) -> ErrorOracle:
    """StructureFirst conditioned on its partition (paper Section 5).

    One ``Lap(1/eps_noise)`` per bucket *sum*, divided by the width
    ``w``: per-bin variance ``2/(eps_noise^2 w^2)``, identical noise for
    bins sharing a bucket, bias ``bucket-mean(c) - c_i``.  Exact for the
    deterministic structure modes (``uniform``/``oracle``/``k=1``) and,
    per-trial, conditional on any EM-sampled partition.
    """
    arr = check_counts(counts, "counts")
    check_positive(eps_noise, "eps_noise")
    if partition.n != len(arr):
        raise ValueError("partition and counts sizes differ")
    sigma2 = 2.0 / (eps_noise * eps_noise)
    groups = [list(range(start, stop)) for start, stop in partition.buckets()]
    variances = [
        sigma2 / (stop - start) ** 2 for start, stop in partition.buckets()
    ]
    return ErrorOracle(
        publisher="structurefirst",
        kind="exact",
        per_bin_bias=partition.apply_means(arr) - arr,
        covariance=_shared_noise_covariance(groups, variances, len(arr)),
        notes=f"k={partition.k}; one Lap per bucket sum at eps_n={eps_noise:g}",
    )


# ---------------------------------------------------------------------------
# Successor baselines (conditioned on publish metadata)
# ---------------------------------------------------------------------------

def ahp_oracle(
    counts: Sequence[float],
    cluster_bins: Sequence[Sequence[int]],
    eps_counts: float,
) -> ErrorOracle:
    """AHP conditioned on its realized (non-contiguous) clusters.

    The re-measurement stage adds one ``Lap(1/eps2)`` to each cluster's
    *true* sum and publishes the noisy mean: bias
    ``cluster-mean(c) - c_i`` (exact — the re-measurement reads the true
    counts), variance ``2/(eps2^2 |C|^2)`` shared across the cluster's
    bins (Zhang et al., SDM 2014, Section 3.3).
    """
    arr = check_counts(counts, "counts")
    check_positive(eps_counts, "eps_counts")
    n = len(arr)
    seen = np.zeros(n, dtype=bool)
    bias = np.empty(n, dtype=np.float64)
    sigma2 = 2.0 / (eps_counts * eps_counts)
    groups: List[List[int]] = []
    variances: List[float] = []
    for cluster in cluster_bins:
        idx = np.asarray(list(cluster), dtype=np.int64)
        if len(idx) == 0:
            raise ValueError("clusters must be non-empty")
        if np.any(seen[idx]):
            raise ValueError("clusters must not overlap")
        seen[idx] = True
        bias[idx] = arr[idx].mean() - arr[idx]
        groups.append([int(i) for i in idx])
        variances.append(sigma2 / len(idx) ** 2)
    if not np.all(seen):
        raise ValueError("clusters must cover every bin")
    return ErrorOracle(
        publisher="ahp",
        kind="exact",
        per_bin_bias=bias,
        covariance=_shared_noise_covariance(groups, variances, n),
        notes=f"{len(groups)} clusters; Lap(1/{eps_counts:g}) per cluster sum",
    )


def dawa_oracle(
    counts: Sequence[float],
    partition: Partition,
    eps_measure: float,
    branching: int = 2,
) -> ErrorOracle:
    """DAWA-lite conditioned on its partition.

    Stage 2 runs Boost over the ``k`` (zero-padded) bucket sums: each
    tree node gets ``Lap(h/eps2)`` and the consistent bucket estimates
    are a linear map of the measurements, so the bucket covariance is
    exact; dividing by the widths and broadcasting gives the bin
    covariance ``Cov[B_i, B_j] / (w_i w_j)``.  Bias is the bucket-mean
    approximation, as for StructureFirst.
    """
    arr = check_counts(counts, "counts")
    check_positive(eps_measure, "eps_measure")
    check_integer(branching, "branching", minimum=2)
    if partition.n != len(arr):
        raise ValueError("partition and counts sizes differ")
    k = partition.k
    b = branching
    padded = 1
    while padded < k:
        padded *= b
    level_sizes = [len(level) for level in build_tree_sums(np.zeros(padded), b)]
    height = len(level_sizes)
    n_meas = sum(level_sizes)
    var_node = 2.0 * (height / eps_measure) ** 2

    def bucket_estimator(measurements: np.ndarray) -> np.ndarray:
        levels: List[np.ndarray] = []
        offset = 0
        for size in level_sizes:
            levels.append(measurements[offset : offset + size])
            offset += size
        return consistent_leaves(levels, b)[:k]

    matrix = linear_operator_matrix(bucket_estimator, n_meas)
    bucket_cov = output_covariance(matrix, np.full(n_meas, var_node))

    n = len(arr)
    widths = np.asarray(partition.bucket_sizes(), dtype=np.float64)
    bucket_of = np.empty(n, dtype=np.int64)
    for b_idx, (start, stop) in enumerate(partition.buckets()):
        bucket_of[start:stop] = b_idx
    cov = bucket_cov[np.ix_(bucket_of, bucket_of)] / np.outer(
        widths[bucket_of], widths[bucket_of]
    )
    return ErrorOracle(
        publisher="dawa-lite",
        kind="exact",
        per_bin_bias=partition.apply_means(arr) - arr,
        covariance=cov,
        notes=f"k={k}, tree height {height} at eps2={eps_measure:g}",
    )


def fourier_oracle(
    counts: Sequence[float], k: int, eps_noise: float
) -> ErrorOracle:
    """Fourier/EFPA conditioned on the retained coefficient count ``k``.

    Bias is deterministic spectral leakage: the inverse transform of the
    head-``k`` true spectrum minus the truth.  Noise: independent
    ``Lap(sqrt(k)/eps_noise)`` on the real and imaginary component of
    each retained coefficient, propagated exactly through the
    orthonormal inverse rFFT (a linear map) — Ács et al., ICDM 2012.
    """
    arr = check_counts(counts, "counts")
    check_integer(k, "k", minimum=1)
    check_positive(eps_noise, "eps_noise")
    n = len(arr)
    spectrum = np.fft.rfft(arr, norm="ortho")
    if k > len(spectrum):
        raise ValueError(f"k={k} exceeds {len(spectrum)} rfft coefficients")
    truncated = np.zeros_like(spectrum)
    truncated[:k] = spectrum[:k]
    bias = np.fft.irfft(truncated, n=n, norm="ortho") - arr

    scale = np.sqrt(k) / eps_noise
    var_component = 2.0 * scale * scale

    def estimator(noise_components: np.ndarray) -> np.ndarray:
        noisy = np.zeros(len(spectrum), dtype=np.complex128)
        noisy[:k] = noise_components[:k] + 1j * noise_components[k:]
        return np.fft.irfft(noisy, n=n, norm="ortho")

    matrix = linear_operator_matrix(estimator, 2 * k)
    cov = output_covariance(matrix, np.full(2 * k, var_component))
    return ErrorOracle(
        publisher="fourier",
        kind="exact",
        per_bin_bias=bias,
        covariance=cov,
        notes=f"k={k} coefficients at Lap(sqrt(k)/{eps_noise:g}) per part",
    )


def mwem_full_range_oracle(
    counts: Sequence[float], public_total: Optional[float] = None
) -> ErrorOracle:
    """MWEM under the single full-domain query: exactly uniform output.

    When the workload is only the full range ``[0, n-1]``, every
    multiplicative-weights update scales all weights by the same factor
    and the renormalization cancels it, so the synthetic histogram stays
    the uniform distribution scaled to the public total — deterministic
    output with zero variance.  A degenerate but *exact* regime that
    end-to-end checks MWEM's update and renormalization arithmetic.
    """
    arr = check_counts(counts, "counts")
    n = len(arr)
    total = float(arr.sum()) if public_total is None else float(public_total)
    total = max(total, 1.0)
    return ErrorOracle(
        publisher="mwem",
        kind="exact",
        per_bin_bias=np.full(n, total / n) - arr,
        covariance=np.zeros((n, n)),
        notes="full-range workload: MW update is a no-op; output uniform",
    )


# ---------------------------------------------------------------------------
# Extensions: spatial and streaming
# ---------------------------------------------------------------------------

def identity2d_oracle(
    shape: "tuple[int, int]", epsilon: float
) -> ErrorOracle:
    """2-D identity baseline, flattened row-major: iid ``Lap(1/eps)``."""
    rows, cols = shape
    check_integer(rows, "rows", minimum=1)
    check_integer(cols, "cols", minimum=1)
    return dwork_oracle(rows * cols, epsilon)


def uniformgrid_oracle(
    counts2d: np.ndarray, epsilon: float, m_rows: int, m_cols: int
) -> ErrorOracle:
    """UniformGrid with a fixed ``m_rows x m_cols`` grid, flattened.

    Each block publishes ``(sum + Lap(1/eps)) / area`` for all its
    cells: bias ``block-mean - cell``, shared noise of variance
    ``2/(eps^2 area^2)`` inside the block (Qardaji et al., ICDE 2013).
    """
    arr = np.asarray(counts2d, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("counts2d must be 2-D")
    check_positive(epsilon, "epsilon")
    rows, cols = arr.shape
    check_integer(m_rows, "m_rows", minimum=1)
    check_integer(m_cols, "m_cols", minimum=1)
    row_edges = np.linspace(0, rows, m_rows + 1).round().astype(int)
    col_edges = np.linspace(0, cols, m_cols + 1).round().astype(int)
    n = rows * cols
    sigma2 = 2.0 / (epsilon * epsilon)
    bias = np.empty((rows, cols), dtype=np.float64)
    groups: List[List[int]] = []
    variances: List[float] = []
    flat_index = np.arange(n).reshape(rows, cols)
    for i in range(m_rows):
        for j in range(m_cols):
            r0, r1 = row_edges[i], row_edges[i + 1]
            c0, c1 = col_edges[j], col_edges[j + 1]
            if r0 == r1 or c0 == c1:
                continue
            block = arr[r0:r1, c0:c1]
            bias[r0:r1, c0:c1] = block.mean() - block
            groups.append([int(v) for v in flat_index[r0:r1, c0:c1].ravel()])
            variances.append(sigma2 / block.size**2)
    return ErrorOracle(
        publisher="uniformgrid",
        kind="exact",
        per_bin_bias=bias.ravel(),
        covariance=_shared_noise_covariance(groups, variances, n),
        notes=f"{m_rows}x{m_cols} grid over {rows}x{cols} cells",
    )


def uniform_stream_oracle(n: int, epsilon: float, w: int) -> ErrorOracle:
    """UniformStream: every timestep adds iid ``Lap(w/eps)`` per bin.

    The per-step share is ``eps/w`` (Kellaris et al., VLDB 2014), so
    each released histogram is the Dwork baseline at ``eps/w``.
    """
    check_integer(w, "w", minimum=1)
    check_positive(epsilon, "epsilon")
    oracle = dwork_oracle(n, epsilon / w)
    return ErrorOracle(
        publisher="uniform-stream",
        kind="exact",
        per_bin_bias=oracle.per_bin_bias,
        covariance=oracle.covariance,
        notes=f"per-step share eps/w = {epsilon / w:g}",
    )


# ---------------------------------------------------------------------------
# Dispatcher
# ---------------------------------------------------------------------------

def _build_dwork(histogram, epsilon, **kw):
    return dwork_oracle(histogram.size, epsilon,
                        sensitivity=kw.get("sensitivity", 1.0))


def _build_uniform(histogram, epsilon, **kw):
    return uniform_flat_oracle(histogram.counts, epsilon)


def _build_boost(histogram, epsilon, **kw):
    return boost_oracle(histogram.size, epsilon,
                        branching=kw.get("branching", 2),
                        consistency=kw.get("consistency", True))


def _build_privelet(histogram, epsilon, **kw):
    return privelet_oracle(histogram.size, epsilon)


def _require_partition(kw, histogram, name):
    partition = kw.get("partition")
    if partition is None:
        raise ValueError(
            f"the {name} oracle is conditional on a partition; pass "
            "partition=... (e.g. from the publish metadata)"
        )
    return partition


def _build_noisefirst(histogram, epsilon, **kw):
    partition = _require_partition(kw, histogram, "noisefirst")
    return noisefirst_oracle(histogram.counts, partition, epsilon,
                             sensitivity=kw.get("sensitivity", 1.0))


def _build_structurefirst(histogram, epsilon, **kw):
    partition = _require_partition(kw, histogram, "structurefirst")
    eps_noise = kw.get("eps_noise", epsilon)
    return structurefirst_oracle(histogram.counts, partition, eps_noise)


def _build_dawa(histogram, epsilon, **kw):
    partition = _require_partition(kw, histogram, "dawa-lite")
    return dawa_oracle(histogram.counts, partition,
                       eps_measure=kw.get("eps_measure", epsilon),
                       branching=kw.get("branching", 2))


def _build_ahp(histogram, epsilon, **kw):
    clusters = kw.get("cluster_bins")
    if clusters is None:
        raise ValueError(
            "the ahp oracle is conditional on cluster_bins=... "
            "(from the publish metadata)"
        )
    return ahp_oracle(histogram.counts, clusters,
                      eps_counts=kw.get("eps_counts", epsilon))


def _build_fourier(histogram, epsilon, **kw):
    k = kw.get("k")
    if k is None:
        raise ValueError("the fourier oracle is conditional on k=...")
    return fourier_oracle(histogram.counts, k,
                          eps_noise=kw.get("eps_noise", epsilon))


def _build_mwem(histogram, epsilon, **kw):
    return mwem_full_range_oracle(histogram.counts,
                                  public_total=kw.get("public_total"))


#: Publisher name -> oracle builder ``(histogram, epsilon, **kw) -> ErrorOracle``.
ORACLE_BUILDERS: Dict[str, Callable[..., ErrorOracle]] = {
    "dwork": _build_dwork,
    "uniform": _build_uniform,
    "boost": _build_boost,
    "privelet": _build_privelet,
    "noisefirst": _build_noisefirst,
    "structurefirst": _build_structurefirst,
    "dawa-lite": _build_dawa,
    "ahp": _build_ahp,
    "fourier": _build_fourier,
    "mwem": _build_mwem,
}


def expected_variance(
    publisher: Union[str, Publisher],
    workload: "Workload | str",
    epsilon: float,
    k: Optional[int] = None,
    n: Optional[int] = None,
    histogram: Optional[Histogram] = None,
    **kwargs,
) -> float:
    """Analytic expected workload MSE of a publisher configuration.

    Parameters
    ----------
    publisher:
        Publisher instance or registered name (see ``ORACLE_BUILDERS``).
    workload:
        A :class:`~repro.workloads.Workload`, or ``"unit"`` for the
        point-query workload.
    epsilon:
        Total privacy budget of the release.
    k, n, histogram:
        Structure hints.  ``histogram`` supplies the true counts (needed
        by bias-carrying oracles); when omitted, a zero histogram of
        size ``n`` (or the workload's size) stands in, which is exact
        for the unbiased publishers.  ``k`` forwards to conditional
        oracles as their bucket/coefficient count.
    kwargs:
        Oracle-specific conditionals (``partition=``, ``cluster_bins=``,
        ``eps_noise=``, ...), typically read off publish metadata.
    """
    name = publisher.name if isinstance(publisher, Publisher) else str(publisher)
    try:
        builder = ORACLE_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"no oracle registered for publisher {name!r}; have "
            f"{sorted(ORACLE_BUILDERS)}"
        ) from None
    if histogram is None:
        if n is None:
            if isinstance(workload, Workload):
                n = workload.n
            else:
                raise ValueError("pass histogram= or n= to size the oracle")
        histogram = Histogram.from_counts(np.zeros(n))
    if k is not None:
        kwargs.setdefault("k", k)
    oracle = builder(histogram, epsilon, **kwargs)
    return oracle.workload_mse(workload)


def oracle_from_result(
    publisher: Union[str, Publisher],
    histogram: Histogram,
    epsilon: float,
    result,
) -> ErrorOracle:
    """Conditional oracle for one realized publish, read off its metadata.

    For the structure-random publishers (NoiseFirst, StructureFirst,
    DAWA-lite, AHP, Fourier) the error moments are exact only
    *conditional* on the structure the publish actually chose; this
    helper extracts that structure from ``result.meta`` and builds the
    matching oracle, so calibration loops can pair each trial with its
    own prediction (see
    :func:`repro.verify.calibration.run_conditional_trials`).

    For the deterministic-structure publishers the metadata is only used
    for configuration echoes (branching, consistency) and the oracle is
    unconditional.
    """
    name = publisher.name if isinstance(publisher, Publisher) else str(publisher)
    meta = result.meta
    counts = histogram.counts
    n = histogram.size
    if name == "dwork":
        return dwork_oracle(n, epsilon)
    if name == "uniform":
        return uniform_flat_oracle(counts, epsilon)
    if name == "boost":
        return boost_oracle(
            n,
            epsilon,
            branching=int(meta.get("branching", 2)),
            consistency=bool(meta.get("consistency", True)),
        )
    if name == "privelet":
        return privelet_oracle(n, epsilon)
    if name == "noisefirst":
        partition = meta.get("partition")
        if partition is None:  # adaptive NF fell back to the identity
            return dwork_oracle(n, epsilon)
        return noisefirst_oracle(counts, partition, epsilon)
    if name == "structurefirst":
        return structurefirst_oracle(
            counts, meta["partition"], meta["eps_noise"]
        )
    if name == "dawa-lite":
        return dawa_oracle(
            counts,
            meta["partition"],
            meta["eps_measure"],
            branching=int(meta.get("branching", 2)),
        )
    if name == "ahp":
        return ahp_oracle(counts, meta["cluster_bins"], meta["eps_counts"])
    if name == "fourier":
        return fourier_oracle(counts, int(meta["k"]), meta["eps_noise"])
    if name == "mwem":
        return mwem_full_range_oracle(
            counts, public_total=meta.get("public_total")
        )
    raise KeyError(
        f"no conditional oracle for publisher {name!r}; have "
        f"{sorted(ORACLE_BUILDERS)}"
    )
