"""Special functions for the statistical verification harness.

The library's only hard dependency is numpy, so the tail probabilities
the goodness-of-fit tests need are implemented here from the standard
numerical recipes:

* regularized incomplete gamma ``P(a, x)`` / ``Q(a, x)`` via the series
  expansion (``x < a + 1``) and the Lentz continued fraction otherwise —
  this gives the chi-square survival function ``Q(df/2, x/2)``;
* the Kolmogorov distribution's survival function
  ``Q_KS(lam) = 2 sum_{j>=1} (-1)^(j-1) exp(-2 j^2 lam^2)``;
* the standard normal survival function via ``math.erfc``.

All routines are scalar, deterministic, and accurate to far better than
the resolution any hypothesis test here needs (~1e-10 relative).
"""

from __future__ import annotations

import math

from repro._validation import check_integer, check_non_negative

__all__ = [
    "gammainc_lower",
    "gammainc_upper",
    "chi2_sf",
    "kolmogorov_sf",
    "normal_sf",
]

_MAX_ITER = 500
_EPS = 1e-14


def _gamma_series(a: float, x: float) -> float:
    """Regularized lower incomplete gamma by series; valid for x < a + 1."""
    term = 1.0 / a
    total = term
    for k in range(1, _MAX_ITER):
        term *= x / (a + k)
        total += term
        if abs(term) < abs(total) * _EPS:
            break
    log_prefactor = a * math.log(x) - x - math.lgamma(a)
    return total * math.exp(log_prefactor)


def _gamma_cont_fraction(a: float, x: float) -> float:
    """Regularized upper incomplete gamma by Lentz's continued fraction."""
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b if b != 0 else 1.0 / tiny
    h = d
    for i in range(1, _MAX_ITER):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            break
    log_prefactor = a * math.log(x) - x - math.lgamma(a)
    return h * math.exp(log_prefactor)


def gammainc_lower(a: float, x: float) -> float:
    """Regularized lower incomplete gamma ``P(a, x)``; in [0, 1]."""
    if a <= 0:
        raise ValueError(f"a must be > 0, got {a}")
    x = check_non_negative(x, "x")
    if x == 0.0:
        return 0.0
    if x < a + 1.0:
        return min(1.0, max(0.0, _gamma_series(a, x)))
    return min(1.0, max(0.0, 1.0 - _gamma_cont_fraction(a, x)))


def gammainc_upper(a: float, x: float) -> float:
    """Regularized upper incomplete gamma ``Q(a, x) = 1 - P(a, x)``."""
    if a <= 0:
        raise ValueError(f"a must be > 0, got {a}")
    x = check_non_negative(x, "x")
    if x == 0.0:
        return 1.0
    if x < a + 1.0:
        return min(1.0, max(0.0, 1.0 - _gamma_series(a, x)))
    return min(1.0, max(0.0, _gamma_cont_fraction(a, x)))


def chi2_sf(statistic: float, df: int) -> float:
    """Survival function of the chi-square distribution with ``df`` d.o.f."""
    check_integer(df, "df", minimum=1)
    statistic = check_non_negative(statistic, "statistic")
    return gammainc_upper(df / 2.0, statistic / 2.0)


def kolmogorov_sf(lam: float) -> float:
    """Survival function of the Kolmogorov distribution.

    ``Q_KS(lam) = 2 sum_{j=1}^inf (-1)^(j-1) exp(-2 j^2 lam^2)``.  For
    small ``lam`` the alternating series converges slowly, but the value
    is indistinguishable from 1 below ~0.18, so we short-circuit there.
    """
    lam = check_non_negative(lam, "lam")
    if lam < 0.18:
        return 1.0
    total = 0.0
    for j in range(1, 101):
        term = 2.0 * (-1.0) ** (j - 1) * math.exp(-2.0 * j * j * lam * lam)
        total += term
        if abs(term) < 1e-16:
            break
    return min(1.0, max(0.0, total))


def normal_sf(z: float) -> float:
    """Survival function of the standard normal distribution."""
    return 0.5 * math.erfc(float(z) / math.sqrt(2.0))
