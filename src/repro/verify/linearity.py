"""Exact noise propagation through linear estimators.

Several publishers (Boost's two-pass consistency, Privelet's inverse
wavelet, DAWA-lite's bucket tree) are *linear* maps from their noisy
measurements to the published counts.  For a linear estimator
``x_hat = A y`` with independent zero-mean measurement noises of
variances ``v_j``, the output covariance is exactly
``Sigma = A diag(v) A^T`` — no Monte Carlo needed.

``linear_operator_matrix`` materializes ``A`` by feeding basis vectors
through the estimator (exact for any linear map, and cheap at the domain
sizes calibration tests use); the helpers below turn ``A`` and the
measurement variances into per-bin variances and range-sum variances.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "linear_operator_matrix",
    "output_covariance",
    "unit_variances_from_covariance",
    "range_variance_from_covariance",
]


def linear_operator_matrix(
    apply_fn: Callable[[np.ndarray], np.ndarray],
    input_dim: int,
    check_linear: bool = True,
) -> np.ndarray:
    """Materialize the matrix of a linear map by basis propagation.

    Parameters
    ----------
    apply_fn:
        The estimator, mapping a length-``input_dim`` measurement vector
        to the output vector.  Must be linear (checked by default with a
        random probe).
    input_dim:
        Number of measurement coordinates.
    check_linear:
        Verify ``A x = apply_fn(x)`` on one random probe; catches callers
        passing affine or nonlinear estimators.
    """
    if input_dim < 1:
        raise ValueError(f"input_dim must be >= 1, got {input_dim}")
    columns = []
    for j in range(input_dim):
        basis = np.zeros(input_dim, dtype=np.float64)
        basis[j] = 1.0
        columns.append(np.asarray(apply_fn(basis), dtype=np.float64))
    matrix = np.column_stack(columns)
    if check_linear:
        probe_rng = np.random.default_rng(0)
        probe = probe_rng.normal(size=input_dim)
        direct = np.asarray(apply_fn(probe), dtype=np.float64)
        if not np.allclose(matrix @ probe, direct, rtol=1e-9, atol=1e-9):
            raise ValueError(
                "apply_fn is not linear: basis reconstruction disagrees "
                "with a direct evaluation"
            )
    return matrix


def output_covariance(
    matrix: np.ndarray, noise_variances: Sequence[float]
) -> np.ndarray:
    """Exact output covariance ``A diag(v) A^T`` of a linear estimator."""
    a = np.asarray(matrix, dtype=np.float64)
    v = np.asarray(noise_variances, dtype=np.float64)
    if v.ndim != 1 or a.shape[1] != len(v):
        raise ValueError(
            f"matrix has {a.shape[1]} inputs but {len(v)} variances given"
        )
    if np.any(v < 0):
        raise ValueError("noise variances must be >= 0")
    return (a * v) @ a.T


def unit_variances_from_covariance(covariance: np.ndarray) -> np.ndarray:
    """Per-bin variances: the diagonal of the output covariance."""
    cov = np.asarray(covariance, dtype=np.float64)
    if cov.ndim != 2 or cov.shape[0] != cov.shape[1]:
        raise ValueError(f"covariance must be square, got shape {cov.shape}")
    return np.diag(cov).copy()


def range_variance_from_covariance(
    covariance: np.ndarray, lo: int, hi: int
) -> float:
    """Variance of the range sum ``x_hat[lo..hi]`` (inclusive)."""
    cov = np.asarray(covariance, dtype=np.float64)
    n = cov.shape[0]
    if not 0 <= lo <= hi < n:
        raise ValueError(f"range [{lo}, {hi}] outside covariance of size {n}")
    block = cov[lo : hi + 1, lo : hi + 1]
    return float(block.sum())
