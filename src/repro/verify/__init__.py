"""Statistical verification harness: oracles, GOF tests, calibration.

The paper's claims are quantitative, so shape/invariant tests alone
cannot catch a mis-calibrated noise scale or a wrong budget split.  This
subpackage supplies the correctness layer:

* :mod:`repro.verify.oracles` — closed-form per-bin and range-query
  error formulas for every publisher (``expected_variance`` is the
  one-call dispatcher);
* :mod:`repro.verify.stats` — KS / chi-square goodness-of-fit tests for
  the mechanism distributions, with Bonferroni control;
* :mod:`repro.verify.streams` — deterministic named RNG streams so any
  statistical failure reproduces exactly;
* :mod:`repro.verify.calibration` — many-trial empirical-vs-analytic
  comparison helpers with ``z``-sigma confidence bands;
* :mod:`repro.verify.linearity` — exact covariance propagation through
  linear estimators (Boost consistency, wavelets, bucket trees);
* :mod:`repro.verify.special` — numpy-only incomplete-gamma /
  Kolmogorov tail probabilities backing the tests.

See ``docs/verification.md`` for formula provenance.
"""

from repro.verify.calibration import (
    CalibrationReport,
    check_mean,
    check_upper_bound,
    run_calibration_trials,
    run_conditional_trials,
)
from repro.verify.linearity import (
    linear_operator_matrix,
    output_covariance,
    range_variance_from_covariance,
    unit_variances_from_covariance,
)
from repro.verify.oracles import (
    ORACLE_BUILDERS,
    ErrorOracle,
    ahp_oracle,
    boost_oracle,
    dawa_oracle,
    dwork_oracle,
    expected_variance,
    fourier_oracle,
    identity2d_oracle,
    mwem_full_range_oracle,
    noisefirst_oracle,
    oracle_from_result,
    privelet_oracle,
    structurefirst_oracle,
    uniform_flat_oracle,
    uniform_stream_oracle,
    uniformgrid_oracle,
)
from repro.verify.special import (
    chi2_sf,
    gammainc_lower,
    gammainc_upper,
    kolmogorov_sf,
    normal_sf,
)
from repro.verify.stats import (
    GofResult,
    bonferroni_alpha,
    chi_square_from_samples,
    chi_square_test,
    ks_test,
    laplace_cdf,
    merge_sparse_cells,
    two_sided_geometric_pmf,
)
from repro.verify.streams import StreamAllocator

__all__ = [
    # oracles
    "ErrorOracle",
    "ORACLE_BUILDERS",
    "expected_variance",
    "oracle_from_result",
    "dwork_oracle",
    "uniform_flat_oracle",
    "boost_oracle",
    "privelet_oracle",
    "noisefirst_oracle",
    "structurefirst_oracle",
    "ahp_oracle",
    "dawa_oracle",
    "fourier_oracle",
    "mwem_full_range_oracle",
    "identity2d_oracle",
    "uniformgrid_oracle",
    "uniform_stream_oracle",
    # calibration
    "CalibrationReport",
    "run_calibration_trials",
    "run_conditional_trials",
    "check_mean",
    "check_upper_bound",
    # stats
    "GofResult",
    "ks_test",
    "chi_square_test",
    "chi_square_from_samples",
    "laplace_cdf",
    "two_sided_geometric_pmf",
    "bonferroni_alpha",
    "merge_sparse_cells",
    # streams
    "StreamAllocator",
    # linearity
    "linear_operator_matrix",
    "output_covariance",
    "unit_variances_from_covariance",
    "range_variance_from_covariance",
    # special functions
    "chi2_sf",
    "kolmogorov_sf",
    "gammainc_lower",
    "gammainc_upper",
    "normal_sf",
]
