"""Empirical-vs-analytic calibration checks.

The calibration tests publish many times with independent seeded
streams, measure the empirical workload MSE per trial, and compare the
mean against the closed-form prediction of an
:class:`~repro.verify.oracles.ErrorOracle`:

* ``check_mean`` — two-sided: the empirical mean must sit inside a
  ``z``-sigma band around the prediction (the band width comes from the
  *observed* per-trial spread, so heavy-tailed Laplace fourth moments
  are handled without distributional assumptions);
* ``check_upper_bound`` — one-sided, for ``upper_bound`` oracles;
* ``run_calibration_trials`` / ``run_conditional_trials`` — the trial
  loops, the latter re-deriving the oracle *per trial* from the publish
  metadata (for publishers whose structure is itself random).

With ``z = 5`` and 200+ trials the false-positive rate per check is
below 1e-6, so a red calibration test means a real mis-calibration, not
statistical noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro._validation import check_integer, check_non_negative
from repro.core.publisher import PublishResult, Publisher
from repro.hist.histogram import Histogram
from repro.metrics.errors import mean_squared_error
from repro.verify.oracles import ErrorOracle
from repro.verify.streams import StreamAllocator
from repro.workloads.workload import Workload

__all__ = [
    "CalibrationReport",
    "run_calibration_trials",
    "run_conditional_trials",
    "check_mean",
    "check_upper_bound",
]


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of one empirical-vs-analytic comparison."""

    predicted: float
    empirical_mean: float
    empirical_sem: float
    n_trials: int
    z: float
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "OK" if self.ok else "MISCALIBRATED"
        return (
            f"[{status}] predicted={self.predicted:.6g} "
            f"empirical={self.empirical_mean:.6g} "
            f"(±{self.z:g}·sem={self.z * self.empirical_sem:.3g}, "
            f"n={self.n_trials}) {self.detail}"
        )


def _trial_mse(
    truth: Histogram, published: Histogram, workload: "Workload | str"
) -> float:
    if isinstance(workload, str):
        if workload != "unit":
            raise ValueError(f"unknown workload alias {workload!r}")
        return mean_squared_error(truth.counts, published.counts)
    return mean_squared_error(
        workload.evaluate(truth), workload.evaluate(published)
    )


def run_calibration_trials(
    publisher_factory: Callable[[], Publisher],
    histogram: Histogram,
    epsilon: float,
    n_trials: int,
    streams: StreamAllocator,
    stream_name: str,
    workload: "Workload | str" = "unit",
) -> np.ndarray:
    """Per-trial empirical workload MSEs over independent seeded streams."""
    check_integer(n_trials, "n_trials", minimum=2)
    generators = streams.generators(stream_name, n_trials)
    mses = np.empty(n_trials, dtype=np.float64)
    for i, gen in enumerate(generators):
        result = publisher_factory().publish(histogram, budget=epsilon, rng=gen)
        mses[i] = _trial_mse(histogram, result.histogram, workload)
    return mses


def run_conditional_trials(
    publisher_factory: Callable[[], Publisher],
    histogram: Histogram,
    epsilon: float,
    n_trials: int,
    streams: StreamAllocator,
    stream_name: str,
    oracle_from_result: Callable[[PublishResult], ErrorOracle],
    workload: "Workload | str" = "unit",
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-trial (empirical MSE, conditional predicted MSE) pairs.

    For publishers whose structure is random (EM-sampled partitions,
    noisy-scaffold clusters, selected coefficient counts), the oracle is
    exact only *conditional* on the realized structure.  The noise stage
    draws after the structure stage, so
    ``E[empirical] = E[conditional prediction]`` and the paired means
    must agree — which :func:`check_mean` then asserts on the paired
    differences.
    """
    check_integer(n_trials, "n_trials", minimum=2)
    generators = streams.generators(stream_name, n_trials)
    empirical = np.empty(n_trials, dtype=np.float64)
    predicted = np.empty(n_trials, dtype=np.float64)
    for i, gen in enumerate(generators):
        result = publisher_factory().publish(histogram, budget=epsilon, rng=gen)
        empirical[i] = _trial_mse(histogram, result.histogram, workload)
        predicted[i] = oracle_from_result(result).workload_mse(workload)
    return empirical, predicted


def _summary(
    samples: np.ndarray, predicted: np.ndarray
) -> Tuple[float, float, int]:
    diffs = samples - predicted
    n = len(diffs)
    mean = float(diffs.mean())
    sem = float(diffs.std(ddof=1) / np.sqrt(n)) if n > 1 else 0.0
    return mean, sem, n


def check_mean(
    samples: Sequence[float],
    predicted: "float | Sequence[float]",
    z: float = 5.0,
    rel_slack: float = 0.02,
) -> CalibrationReport:
    """Two-sided check: mean(samples) == mean(predicted) within band.

    ``predicted`` is a scalar (fixed oracle) or per-trial vector
    (conditional oracle); the tolerance is ``z`` standard errors of the
    paired difference plus ``rel_slack`` of the predicted magnitude (a
    numerical floor so a zero-variance exact oracle does not demand
    bitwise-equal floats).
    """
    arr = np.asarray(samples, dtype=np.float64)
    pred = np.broadcast_to(
        np.asarray(predicted, dtype=np.float64), arr.shape
    ).astype(np.float64)
    check_non_negative(z, "z")
    check_non_negative(rel_slack, "rel_slack")
    mean_diff, sem, n = _summary(arr, pred)
    target = float(pred.mean())
    tolerance = z * sem + rel_slack * abs(target) + 1e-12
    ok = abs(mean_diff) <= tolerance
    return CalibrationReport(
        predicted=target,
        empirical_mean=float(arr.mean()),
        empirical_sem=sem,
        n_trials=n,
        z=float(z),
        ok=ok,
        detail=f"|mean diff|={abs(mean_diff):.4g} tolerance={tolerance:.4g}",
    )


def check_upper_bound(
    samples: Sequence[float],
    bound: float,
    z: float = 5.0,
) -> CalibrationReport:
    """One-sided check: mean(samples) <= bound (+ z standard errors)."""
    arr = np.asarray(samples, dtype=np.float64)
    check_non_negative(z, "z")
    n = len(arr)
    mean = float(arr.mean())
    sem = float(arr.std(ddof=1) / np.sqrt(n)) if n > 1 else 0.0
    ok = mean <= bound + z * sem + 1e-12
    return CalibrationReport(
        predicted=float(bound),
        empirical_mean=mean,
        empirical_sem=sem,
        n_trials=n,
        z=float(z),
        ok=ok,
        detail="one-sided upper bound",
    )
