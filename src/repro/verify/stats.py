"""Distribution goodness-of-fit tests for mechanism verification.

These are the statistical primitives behind ``tests/verify``'s
mechanism-distribution checks: a one-sample Kolmogorov-Smirnov test for
continuous mechanisms (Laplace), a chi-square test with sparse-cell
merging for discrete mechanisms (two-sided geometric, exponential
mechanism), and Bonferroni bookkeeping so a suite of ``m`` checks keeps
its *family-wise* false-positive rate at the declared level.

Everything is deterministic given the input samples; randomness lives in
:mod:`repro.verify.streams`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro._validation import check_integer, check_positive, check_probability
from repro.verify.special import chi2_sf, kolmogorov_sf

__all__ = [
    "GofResult",
    "ks_test",
    "chi_square_test",
    "chi_square_from_samples",
    "laplace_cdf",
    "two_sided_geometric_pmf",
    "bonferroni_alpha",
    "merge_sparse_cells",
]


@dataclass(frozen=True)
class GofResult:
    """Outcome of one goodness-of-fit test."""

    test: str
    statistic: float
    pvalue: float
    n_samples: int
    df: int = 0

    def passes(self, alpha: float) -> bool:
        """True when the null (correct distribution) is *not* rejected."""
        check_probability(alpha, "alpha")
        return self.pvalue >= alpha


def laplace_cdf(x: "float | np.ndarray", scale: float, loc: float = 0.0):
    """CDF of the Laplace distribution with the given scale and location."""
    check_positive(scale, "scale")
    arr = np.asarray(x, dtype=np.float64)
    z = (arr - loc) / scale
    out = np.where(z < 0, 0.5 * np.exp(z), 1.0 - 0.5 * np.exp(-z))
    if np.isscalar(x) or arr.ndim == 0:
        return float(out)
    return out


def two_sided_geometric_pmf(k: "int | np.ndarray", alpha: float):
    """PMF of the two-sided geometric distribution with parameter ``alpha``.

    ``Pr[K = k] = (1 - alpha) / (1 + alpha) * alpha ** |k|`` for integer
    ``k``; this is the stationary law of the geometric mechanism with
    ``alpha = exp(-epsilon / sensitivity)``.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    arr = np.asarray(k)
    out = (1.0 - alpha) / (1.0 + alpha) * alpha ** np.abs(arr.astype(np.float64))
    if np.isscalar(k) or arr.ndim == 0:
        return float(out)
    return out


def ks_test(
    samples: Sequence[float],
    cdf: Callable[[np.ndarray], np.ndarray],
) -> GofResult:
    """One-sample Kolmogorov-Smirnov test against a fully specified CDF.

    The p-value uses the asymptotic Kolmogorov distribution with
    Stephens' small-sample correction
    ``lam = (sqrt(n) + 0.12 + 0.11 / sqrt(n)) * D``, accurate for
    ``n >= 35`` and conservative below.
    """
    arr = np.sort(np.asarray(samples, dtype=np.float64))
    n = len(arr)
    if n < 8:
        raise ValueError(f"need at least 8 samples for a KS test, got {n}")
    theo = np.asarray(cdf(arr), dtype=np.float64)
    if theo.shape != arr.shape:
        raise ValueError("cdf must return one value per sample")
    if np.any(theo < -1e-12) or np.any(theo > 1.0 + 1e-12):
        raise ValueError("cdf values must lie in [0, 1]")
    ecdf_hi = np.arange(1, n + 1, dtype=np.float64) / n
    ecdf_lo = np.arange(0, n, dtype=np.float64) / n
    d = float(max(np.max(ecdf_hi - theo), np.max(theo - ecdf_lo)))
    sqrt_n = math.sqrt(n)
    lam = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d
    return GofResult(test="ks", statistic=d, pvalue=kolmogorov_sf(lam),
                     n_samples=n)


def merge_sparse_cells(
    observed: Sequence[float],
    expected: Sequence[float],
    min_expected: float = 5.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge adjacent cells until every expected count is >= ``min_expected``.

    Standard chi-square hygiene: cells are folded left-to-right into
    their right neighbour (the final cell folds backwards) so the
    asymptotic chi-square approximation holds.
    """
    obs = np.asarray(observed, dtype=np.float64)
    exp = np.asarray(expected, dtype=np.float64)
    if obs.shape != exp.shape:
        raise ValueError("observed and expected must have the same shape")
    merged_obs: List[float] = []
    merged_exp: List[float] = []
    acc_o = 0.0
    acc_e = 0.0
    for o, e in zip(obs, exp):
        acc_o += float(o)
        acc_e += float(e)
        if acc_e >= min_expected:
            merged_obs.append(acc_o)
            merged_exp.append(acc_e)
            acc_o = 0.0
            acc_e = 0.0
    if acc_e > 0.0:
        if merged_exp:
            merged_obs[-1] += acc_o
            merged_exp[-1] += acc_e
        else:
            merged_obs.append(acc_o)
            merged_exp.append(acc_e)
    return np.asarray(merged_obs), np.asarray(merged_exp)


def chi_square_test(
    observed: Sequence[float],
    expected: Sequence[float],
    min_expected: float = 5.0,
) -> GofResult:
    """Pearson chi-square goodness-of-fit on matched count vectors.

    ``expected`` is rescaled to the observed total (the distributional
    shape, not the sample size, is under test); sparse cells are merged
    first so the chi-square approximation is valid.
    """
    obs = np.asarray(observed, dtype=np.float64)
    exp = np.asarray(expected, dtype=np.float64)
    if obs.sum() <= 0 or exp.sum() <= 0:
        raise ValueError("observed and expected must have positive totals")
    exp = exp * (obs.sum() / exp.sum())
    obs, exp = merge_sparse_cells(obs, exp, min_expected=min_expected)
    if len(obs) < 2:
        raise ValueError(
            "fewer than 2 cells survive sparse-cell merging; widen the "
            "binning or collect more samples"
        )
    statistic = float(np.sum((obs - exp) ** 2 / exp))
    df = len(obs) - 1
    return GofResult(test="chi2", statistic=statistic,
                     pvalue=chi2_sf(statistic, df), n_samples=int(obs.sum()),
                     df=df)


def chi_square_from_samples(
    samples: Sequence[float],
    pmf: Callable[[np.ndarray], np.ndarray],
    support: Sequence[int],
    min_expected: float = 5.0,
) -> GofResult:
    """Chi-square GOF of integer ``samples`` against a PMF on ``support``.

    Values outside ``support`` are folded into the nearest end cell, so
    the tails are tested too (with the correct tail mass on the ends).
    """
    sup = np.asarray(sorted(set(int(s) for s in support)), dtype=np.int64)
    if len(sup) < 2:
        raise ValueError("support must contain at least 2 values")
    arr = np.asarray(samples, dtype=np.float64)
    clipped = np.clip(np.rint(arr).astype(np.int64), sup[0], sup[-1])
    observed = np.array(
        [np.count_nonzero(clipped == v) for v in sup], dtype=np.float64
    )
    probs = np.asarray(pmf(sup), dtype=np.float64)
    # Fold the untested tail mass into the end cells so probabilities sum
    # to 1 over the folded support.
    probs = probs.copy()
    probs[0] += max(0.0, _tail_mass_below(pmf, sup[0]))
    probs[-1] += max(0.0, _tail_mass_above(pmf, sup[-1]))
    expected = probs * len(arr)
    return chi_square_test(observed, expected, min_expected=min_expected)


def _tail_mass_below(pmf, lo: int, span: int = 200) -> float:
    ks = np.arange(lo - span, lo)
    return float(np.sum(pmf(ks)))


def _tail_mass_above(pmf, hi: int, span: int = 200) -> float:
    ks = np.arange(hi + 1, hi + span + 1)
    return float(np.sum(pmf(ks)))


def bonferroni_alpha(family_alpha: float, n_tests: int) -> float:
    """Per-test level keeping the family-wise error at ``family_alpha``."""
    check_probability(family_alpha, "family_alpha")
    check_integer(n_tests, "n_tests", minimum=1)
    return family_alpha / n_tests
