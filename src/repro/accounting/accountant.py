"""The :class:`Accountant`: enforced budget withdrawal.

An accountant is created with a total :class:`PrivacyBudget` and hands
out spends until the budget is exhausted, raising
:class:`~repro.exceptions.BudgetExceededError` on overdraft.  Publishers
receive an accountant rather than a raw epsilon so their composition is
checked, not merely asserted in a docstring.
"""

from __future__ import annotations

import threading

from repro.accounting.budget import EPS_TOL, PrivacyBudget
from repro.accounting.ledger import Ledger, SpendRecord
from repro.exceptions import BudgetExceededError

__all__ = ["Accountant"]


class Accountant:
    """Tracks and enforces spends against a fixed total budget.

    The overdraft check and the ledger append are atomic under an
    internal lock, so concurrent spenders (e.g. the query service's
    per-request handler threads debiting one tenant) can never race two
    debits past the total: sequential composition holds even when the
    spends themselves are issued in parallel.

    Example
    -------
    >>> acc = Accountant(PrivacyBudget(1.0))
    >>> acc.spend(PrivacyBudget(0.4), purpose="structure")
    >>> acc.spent.epsilon
    0.4
    >>> acc.remaining.epsilon
    0.6
    """

    def __init__(self, total: "PrivacyBudget | float") -> None:
        if isinstance(total, (int, float)) and not isinstance(total, bool):
            total = PrivacyBudget(float(total))
        if not isinstance(total, PrivacyBudget):
            raise TypeError(
                "total must be a PrivacyBudget or a number, "
                f"got {type(total).__name__}"
            )
        self._total = total
        self._ledger = Ledger()
        # Reentrant so spend_all can hold it across remaining + spend.
        self._lock = threading.RLock()

    @property
    def total(self) -> PrivacyBudget:
        """The budget this accountant was created with."""
        return self._total

    @property
    def ledger(self) -> Ledger:
        """The append-only spend ledger."""
        return self._ledger

    @property
    def spent(self) -> PrivacyBudget:
        """Composed budget spent so far."""
        return self._ledger.total()

    @property
    def remaining(self) -> PrivacyBudget:
        """Budget still available (never negative)."""
        spent = self.spent
        return PrivacyBudget(
            max(self._total.epsilon - spent.epsilon, 0.0),
            max(self._total.delta - spent.delta, 0.0),
        )

    def spend(
        self,
        budget: "PrivacyBudget | float",
        purpose: str,
        parallel_group: "str | None" = None,
    ) -> PrivacyBudget:
        """Withdraw ``budget``; raise :class:`BudgetExceededError` on overdraft.

        Returns the budget actually recorded, so callers can chain.
        """
        if isinstance(budget, (int, float)) and not isinstance(budget, bool):
            budget = PrivacyBudget(float(budget))
        if not isinstance(budget, PrivacyBudget):
            raise TypeError(
                f"budget must be a PrivacyBudget or number, got {type(budget).__name__}"
            )
        with self._lock:
            candidate = Ledger(list(self._ledger.records))
            candidate.append(SpendRecord(budget, purpose, parallel_group))
            projected = candidate.total()
            if (
                projected.epsilon > self._total.epsilon + EPS_TOL
                or projected.delta > self._total.delta + EPS_TOL
            ):
                raise BudgetExceededError(
                    requested=budget.epsilon,
                    remaining=self.remaining.epsilon,
                )
            self._ledger.append(SpendRecord(budget, purpose, parallel_group))
        return budget

    def spend_all(self, purpose: str) -> PrivacyBudget:
        """Withdraw everything that remains, in one spend."""
        with self._lock:
            remaining = self.remaining
            if remaining.epsilon <= 0 and remaining.delta <= 0:
                raise BudgetExceededError(requested=0.0, remaining=0.0)
            return self.spend(remaining, purpose)

    def __repr__(self) -> str:
        return (
            f"Accountant(total={self._total}, spent={self.spent}, "
            f"records={len(self._ledger)})"
        )
