"""Append-only ledger of privacy spends.

Every mechanism invocation inside a publisher records *what* was spent
and *why* (a free-form purpose label), so the composed privacy claim of
any algorithm can be audited after the fact.  Tests across the suite
assert that each publisher's ledger sums exactly to its declared budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from repro.accounting.budget import PrivacyBudget

__all__ = ["SpendRecord", "Ledger"]


@dataclass(frozen=True)
class SpendRecord:
    """One budget spend: how much, what for, and under which composition.

    ``parallel_group`` tags spends that act on *disjoint* subsets of the
    data: spends sharing a group compose in parallel (max) rather than
    sequentially (sum).  ``None`` means plain sequential composition.
    """

    budget: PrivacyBudget
    purpose: str
    parallel_group: "str | None" = None


@dataclass
class Ledger:
    """Ordered record of every spend drawn from an accountant."""

    records: List[SpendRecord] = field(default_factory=list)

    def append(self, record: SpendRecord) -> None:
        """Add a spend record (called by the accountant only)."""
        self.records.append(record)

    def __iter__(self) -> Iterator[SpendRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def total(self) -> PrivacyBudget:
        """Composed total: sequential spends add; parallel groups take max.

        Within a ``parallel_group`` the worst single spend bounds the
        group's privacy cost (the spends touch disjoint records); groups
        and ungrouped spends then compose sequentially.
        """
        sequential = PrivacyBudget(0.0)
        groups: dict = {}
        for rec in self.records:
            if rec.parallel_group is None:
                sequential = sequential + rec.budget
            else:
                current = groups.get(rec.parallel_group, PrivacyBudget(0.0))
                if rec.budget.epsilon > current.epsilon or (
                    rec.budget.epsilon == current.epsilon
                    and rec.budget.delta > current.delta
                ):
                    groups[rec.parallel_group] = rec.budget
                else:
                    groups.setdefault(rec.parallel_group, current)
        for group_budget in groups.values():
            sequential = sequential + group_budget
        return sequential

    def purposes(self) -> List[str]:
        """Purpose labels in spend order (handy for test assertions)."""
        return [rec.purpose for rec in self.records]
