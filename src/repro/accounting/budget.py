"""The :class:`PrivacyBudget` value type.

A budget is an immutable ``(epsilon, delta)`` pair with arithmetic for
sequential composition (addition) and splitting.  Pure epsilon-DP budgets
have ``delta == 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro._validation import check_in_range, check_non_negative

__all__ = ["PrivacyBudget"]

# Tolerance for floating-point budget comparisons.  Splitting epsilon into
# k parts and re-summing must not spuriously trip the overspend check.
EPS_TOL = 1e-9


@dataclass(frozen=True, order=False)
class PrivacyBudget:
    """An immutable (epsilon, delta) differential-privacy budget."""

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.epsilon, "epsilon")
        check_in_range(self.delta, "delta", 0.0, 1.0)

    @property
    def is_pure(self) -> bool:
        """True when this is a pure epsilon-DP budget (delta == 0)."""
        return self.delta == 0.0

    def __add__(self, other: "PrivacyBudget") -> "PrivacyBudget":
        """Sequential composition: budgets add in both parameters."""
        if not isinstance(other, PrivacyBudget):
            return NotImplemented
        return PrivacyBudget(self.epsilon + other.epsilon, self.delta + other.delta)

    def __sub__(self, other: "PrivacyBudget") -> "PrivacyBudget":
        """Remaining budget after spending ``other``; clamps tiny negatives.

        Raises ValueError if the result would be materially negative.
        """
        if not isinstance(other, PrivacyBudget):
            return NotImplemented
        eps = self.epsilon - other.epsilon
        delta = self.delta - other.delta
        if eps < -EPS_TOL or delta < -EPS_TOL:
            raise ValueError(
                f"cannot subtract {other} from {self}: would go negative"
            )
        return PrivacyBudget(max(eps, 0.0), max(delta, 0.0))

    def __mul__(self, factor: float) -> "PrivacyBudget":
        """Scale the budget, e.g. ``budget * 0.5`` for a half share."""
        check_non_negative(factor, "factor")
        return PrivacyBudget(self.epsilon * factor, self.delta * factor)

    __rmul__ = __mul__

    def covers(self, other: "PrivacyBudget") -> bool:
        """True when ``other`` can be spent out of this budget."""
        return (
            other.epsilon <= self.epsilon + EPS_TOL
            and other.delta <= self.delta + EPS_TOL
        )

    def split(self, shares: "int | List[float]") -> List["PrivacyBudget"]:
        """Split into sub-budgets for sequential composition.

        ``shares`` may be an integer (equal split) or a list of positive
        weights (proportional split).  The shares always sum back to the
        original budget exactly up to floating point.
        """
        if isinstance(shares, bool):
            raise TypeError("shares must be an int or a list of weights")
        if isinstance(shares, int):
            if shares < 1:
                raise ValueError(f"shares must be >= 1, got {shares}")
            weights = [1.0] * shares
        else:
            weights = [float(w) for w in shares]
            if not weights:
                raise ValueError("shares list must be non-empty")
            if any(w <= 0 for w in weights):
                raise ValueError("all share weights must be > 0")
        total = sum(weights)
        return [self * (w / total) for w in weights]

    def __str__(self) -> str:
        if self.is_pure:
            return f"eps={self.epsilon:g}"
        return f"eps={self.epsilon:g}, delta={self.delta:g}"
