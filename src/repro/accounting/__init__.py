"""Privacy-budget accounting.

Publishers never call ``rng.laplace`` on their own authority; they draw
budget from an :class:`Accountant`, which enforces that the total
epsilon spent never exceeds what the caller granted.  The ledger records
every spend so tests (and auditors) can verify each algorithm's composed
privacy claim.
"""

from repro.accounting.budget import PrivacyBudget
from repro.accounting.ledger import Ledger, SpendRecord
from repro.accounting.accountant import Accountant

__all__ = ["PrivacyBudget", "Ledger", "SpendRecord", "Accountant"]
