"""Workload builders for the evaluation's query families."""

from __future__ import annotations

from repro._validation import as_rng, check_integer
from repro.hist.ranges import RangeQuery
from repro.workloads.workload import Workload

__all__ = [
    "unit_queries",
    "all_ranges",
    "prefix_ranges",
    "random_ranges",
    "fixed_length_ranges",
]


def unit_queries(n: int) -> Workload:
    """One unit-length query per bin — the point-query workload."""
    check_integer(n, "n", minimum=1)
    queries = tuple(RangeQuery(i, i) for i in range(n))
    return Workload(n=n, queries=queries, name="unit")


def all_ranges(n: int) -> Workload:
    """Every one of the ``n (n+1) / 2`` ranges.  Quadratic; small n only."""
    check_integer(n, "n", minimum=1)
    if n > 512:
        raise ValueError(
            f"all_ranges over {n} bins would create {n * (n + 1) // 2} queries; "
            "use random_ranges for large domains"
        )
    queries = tuple(
        RangeQuery(lo, hi) for lo in range(n) for hi in range(lo, n)
    )
    return Workload(n=n, queries=queries, name="all-ranges")


def prefix_ranges(n: int) -> Workload:
    """The ``n`` prefix ranges ``[0..0], [0..1], ..., [0..n-1]``.

    Prefix sums determine all ranges, so this is the canonical workload
    for cumulative-distribution use cases.
    """
    check_integer(n, "n", minimum=1)
    queries = tuple(RangeQuery(0, hi) for hi in range(n))
    return Workload(n=n, queries=queries, name="prefix")


def random_ranges(
    n: int,
    count: int,
    rng: "object | int | None" = 0,
) -> Workload:
    """``count`` ranges with endpoints uniform over all valid (lo, hi)."""
    check_integer(n, "n", minimum=1)
    check_integer(count, "count", minimum=1)
    generator = as_rng(rng)
    los = generator.integers(0, n, size=count)
    his = generator.integers(0, n, size=count)
    queries = tuple(
        RangeQuery(int(min(a, b)), int(max(a, b))) for a, b in zip(los, his)
    )
    return Workload(n=n, queries=queries, name="random-ranges")


def fixed_length_ranges(
    n: int,
    length: int,
    count: "int | None" = None,
    rng: "object | int | None" = 0,
) -> Workload:
    """Ranges of exactly ``length`` bins; all of them, or a random sample.

    The range-length sweep bench (``fig_range_vs_len``) uses this to
    isolate error as a function of query length.
    """
    check_integer(n, "n", minimum=1)
    check_integer(length, "length", minimum=1)
    if length > n:
        raise ValueError(f"length ({length}) cannot exceed n ({n})")
    max_start = n - length
    starts = range(max_start + 1)
    if count is not None:
        check_integer(count, "count", minimum=1)
        generator = as_rng(rng)
        starts = generator.integers(0, max_start + 1, size=count)
    queries = tuple(RangeQuery(int(s), int(s) + length - 1) for s in starts)
    return Workload(n=n, queries=queries, name=f"len-{length}")
