"""Workload builders for the evaluation's query families."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._validation import as_rng, check_integer
from repro.hist.ranges import RangeQuery
from repro.workloads.workload import Workload

__all__ = [
    "unit_queries",
    "all_ranges",
    "prefix_ranges",
    "random_ranges",
    "fixed_length_ranges",
    "clustered_ranges",
    "heavy_tailed_ranges",
    "marginal_ranges",
]


def unit_queries(n: int) -> Workload:
    """One unit-length query per bin — the point-query workload."""
    check_integer(n, "n", minimum=1)
    queries = tuple(RangeQuery(i, i) for i in range(n))
    return Workload(n=n, queries=queries, name="unit")


def all_ranges(n: int) -> Workload:
    """Every one of the ``n (n+1) / 2`` ranges.  Quadratic; small n only."""
    check_integer(n, "n", minimum=1)
    if n > 512:
        raise ValueError(
            f"all_ranges over {n} bins would create {n * (n + 1) // 2} queries; "
            "use random_ranges for large domains"
        )
    queries = tuple(
        RangeQuery(lo, hi) for lo in range(n) for hi in range(lo, n)
    )
    return Workload(n=n, queries=queries, name="all-ranges")


def prefix_ranges(n: int) -> Workload:
    """The ``n`` prefix ranges ``[0..0], [0..1], ..., [0..n-1]``.

    Prefix sums determine all ranges, so this is the canonical workload
    for cumulative-distribution use cases.
    """
    check_integer(n, "n", minimum=1)
    queries = tuple(RangeQuery(0, hi) for hi in range(n))
    return Workload(n=n, queries=queries, name="prefix")


def random_ranges(
    n: int,
    count: int,
    rng: "object | int | None" = 0,
) -> Workload:
    """``count`` ranges with endpoints uniform over all valid (lo, hi)."""
    check_integer(n, "n", minimum=1)
    check_integer(count, "count", minimum=1)
    generator = as_rng(rng)
    los = generator.integers(0, n, size=count)
    his = generator.integers(0, n, size=count)
    queries = tuple(
        RangeQuery(int(min(a, b)), int(max(a, b))) for a, b in zip(los, his)
    )
    return Workload(n=n, queries=queries, name="random-ranges")


def fixed_length_ranges(
    n: int,
    length: int,
    count: "int | None" = None,
    rng: "object | int | None" = 0,
) -> Workload:
    """Ranges of exactly ``length`` bins; all of them, or a random sample.

    The range-length sweep bench (``fig_range_vs_len``) uses this to
    isolate error as a function of query length.
    """
    check_integer(n, "n", minimum=1)
    check_integer(length, "length", minimum=1)
    if length > n:
        raise ValueError(f"length ({length}) cannot exceed n ({n})")
    max_start = n - length
    starts = range(max_start + 1)
    if count is not None:
        check_integer(count, "count", minimum=1)
        generator = as_rng(rng)
        starts = generator.integers(0, max_start + 1, size=count)
    queries = tuple(RangeQuery(int(s), int(s) + length - 1) for s in starts)
    return Workload(n=n, queries=queries, name=f"len-{length}")


def clustered_ranges(
    n: int,
    count: int,
    n_clusters: int = 3,
    spread: float = 0.05,
    weights: "Sequence[float] | None" = None,
    rng: "object | int | None" = 0,
) -> Workload:
    """Short ranges whose midpoints cluster around a few hotspots.

    Models real query logs, where interest concentrates on a handful of
    regions instead of spreading uniformly.  ``weights`` sets the
    relative probability of each cluster and is normalized internally,
    so ``[2, 2, 2]`` and ``[1, 1, 1]`` describe the same workload.
    """
    check_integer(n, "n", minimum=1)
    check_integer(count, "count", minimum=1)
    check_integer(n_clusters, "n_clusters", minimum=1)
    if spread <= 0:
        raise ValueError(f"spread must be positive, got {spread}")
    generator = as_rng(rng)
    if weights is None:
        probs = np.full(n_clusters, 1.0 / n_clusters)
    else:
        probs = np.asarray(list(weights), dtype=np.float64)
        if len(probs) != n_clusters:
            raise ValueError(
                f"weights has {len(probs)} entries for {n_clusters} clusters"
            )
        if np.any(~np.isfinite(probs)) or np.any(probs < 0) or probs.sum() <= 0:
            raise ValueError("weights must be non-negative, finite, non-zero")
        probs = probs / probs.sum()
    centers = generator.integers(0, n, size=n_clusters)
    picks = generator.choice(n_clusters, size=count, p=probs)
    sigma = max(spread * n, 1.0)
    mids = centers[picks] + generator.normal(0.0, sigma, size=count)
    mids = np.clip(np.round(mids), 0, n - 1).astype(np.int64)
    half = np.maximum(
        np.round(generator.exponential(sigma / 2.0, size=count)), 0
    ).astype(np.int64)
    los = np.clip(mids - half, 0, n - 1)
    his = np.clip(mids + half, 0, n - 1)
    queries = tuple(RangeQuery(int(a), int(b)) for a, b in zip(los, his))
    return Workload(n=n, queries=queries, name="clustered")


def heavy_tailed_ranges(
    n: int,
    count: int,
    alpha: float = 1.2,
    rng: "object | int | None" = 0,
) -> Workload:
    """Ranges whose lengths follow a power law: mostly short, a few huge.

    Length ``L`` is drawn with ``P(L = l) ~ l**(-alpha)`` over ``[1, n]``
    and the start is uniform over valid positions — the length profile
    DPBench attributes to real range-query logs.
    """
    check_integer(n, "n", minimum=1)
    check_integer(count, "count", minimum=1)
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    generator = as_rng(rng)
    lengths_support = np.arange(1, n + 1, dtype=np.float64)
    pmf = lengths_support ** (-alpha)
    pmf /= pmf.sum()
    lengths = generator.choice(n, size=count, p=pmf) + 1
    starts = np.floor(
        generator.random(size=count) * (n - lengths + 1)
    ).astype(np.int64)
    queries = tuple(
        RangeQuery(int(s), int(s + l - 1)) for s, l in zip(starts, lengths)
    )
    return Workload(n=n, queries=queries, name="heavy-tail")


def marginal_ranges(n: int, block: "int | None" = None) -> Workload:
    """Disjoint contiguous blocks covering the domain — a coarse marginal.

    With ``block = b`` the workload asks for the counts of each of the
    ``ceil(n / b)`` aligned blocks (the last may be shorter), i.e. the
    histogram at a coarser granularity.  Defaults to ``b ≈ sqrt(n)``,
    giving the classic marginal-style workload.  Fully deterministic.
    """
    check_integer(n, "n", minimum=1)
    if block is None:
        block = max(1, int(round(n ** 0.5)))
    check_integer(block, "block", minimum=1)
    if block > n:
        raise ValueError(f"block ({block}) cannot exceed n ({n})")
    queries = tuple(
        RangeQuery(lo, min(lo + block - 1, n - 1)) for lo in range(0, n, block)
    )
    return Workload(n=n, queries=queries, name=f"marginal-{block}")
