"""The :class:`Workload` type: a named batch of range queries.

A workload binds a list of :class:`~repro.hist.RangeQuery` to the domain
size they were built for, so evaluating it against a histogram of a
different size fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro._validation import check_integer
from repro.exceptions import DomainMismatchError
from repro.hist.histogram import Histogram
from repro.hist.ranges import RangeQuery, evaluate_ranges

__all__ = ["Workload"]


@dataclass(frozen=True)
class Workload:
    """An immutable batch of range queries over a domain of ``n`` bins."""

    n: int
    queries: Tuple[RangeQuery, ...]
    name: str = ""

    def __post_init__(self) -> None:
        check_integer(self.n, "n", minimum=1)
        queries = tuple(self.queries)
        if not queries:
            raise ValueError("a workload must contain at least one query")
        for q in queries:
            if not isinstance(q, RangeQuery):
                raise TypeError(f"expected RangeQuery, got {type(q).__name__}")
            q.validate_for(self.n)
        object.__setattr__(self, "queries", queries)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[RangeQuery]:
        return iter(self.queries)

    def lengths(self) -> np.ndarray:
        """Query lengths, in order (used to bucket errors by length)."""
        return np.fromiter((q.length for q in self.queries), dtype=np.int64)

    def evaluate(self, target: "Histogram | Sequence[float]") -> np.ndarray:
        """Answers to every query against a histogram or raw count vector."""
        if isinstance(target, Histogram):
            if target.size != self.n:
                raise DomainMismatchError(
                    f"workload built for {self.n} bins, histogram has {target.size}"
                )
            counts = target.counts
        else:
            counts = np.asarray(target, dtype=np.float64)
            if len(counts) != self.n:
                raise DomainMismatchError(
                    f"workload built for {self.n} bins, counts has {len(counts)}"
                )
        return evaluate_ranges(counts, self.queries)

    def __str__(self) -> str:
        label = self.name or "workload"
        return f"{label}: {len(self.queries)} queries over {self.n} bins"
