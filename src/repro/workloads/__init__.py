"""Query workloads used in the evaluation."""

from repro.workloads.builders import (
    all_ranges,
    clustered_ranges,
    fixed_length_ranges,
    heavy_tailed_ranges,
    marginal_ranges,
    prefix_ranges,
    random_ranges,
    unit_queries,
)
from repro.workloads.workload import Workload

__all__ = [
    "Workload",
    "unit_queries",
    "all_ranges",
    "prefix_ranges",
    "random_ranges",
    "fixed_length_ranges",
    "clustered_ranges",
    "heavy_tailed_ranges",
    "marginal_ranges",
]
