"""The :class:`Histogram` value type: a domain plus a count vector.

Histograms are immutable; transformations return new instances.  Counts
are stored as float64 because sanitized histograms carry fractional,
possibly negative values.  Convenience constructors build histograms from
raw record samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._validation import check_counts
from repro.hist.domain import Domain

__all__ = ["Histogram"]


@dataclass(frozen=True)
class Histogram:
    """An immutable histogram: an ordered :class:`Domain` and its counts."""

    domain: Domain
    counts: np.ndarray

    def __post_init__(self) -> None:
        counts = check_counts(self.counts, "counts")
        if len(counts) != self.domain.size:
            raise ValueError(
                f"counts has {len(counts)} bins but domain has {self.domain.size}"
            )
        counts = counts.copy()
        counts.setflags(write=False)
        object.__setattr__(self, "counts", counts)

    @classmethod
    def from_counts(
        cls, counts: Sequence[float], domain: "Domain | None" = None, name: str = ""
    ) -> "Histogram":
        """Build a histogram from a count vector, defaulting the domain.

        Without an explicit domain, bins are the integers ``0..n-1``.
        """
        counts = check_counts(counts, "counts")
        if domain is None:
            domain = Domain.integers(len(counts), name=name)
        return cls(domain=domain, counts=counts)

    @classmethod
    def from_records(
        cls, values: Sequence[float], domain: Domain
    ) -> "Histogram":
        """Histogram raw numeric records into the bins of ``domain``."""
        if not domain.is_numeric:
            raise ValueError("from_records requires a numeric domain")
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("values must be 1-dimensional")
        counts, _edges = np.histogram(arr, bins=domain.bin_edges())
        return cls(domain=domain, counts=counts.astype(np.float64))

    @property
    def size(self) -> int:
        """Number of bins."""
        return self.domain.size

    @property
    def total(self) -> float:
        """Sum of all counts."""
        return float(self.counts.sum())

    def range_sum(self, lo: int, hi: int) -> float:
        """Sum of counts over the inclusive bin range ``[lo, hi]``."""
        if not 0 <= lo <= hi < self.size:
            raise ValueError(
                f"range [{lo}, {hi}] outside histogram of {self.size} bins"
            )
        return float(self.counts[lo : hi + 1].sum())

    def with_counts(self, counts: Sequence[float]) -> "Histogram":
        """New histogram on the same domain with replaced counts."""
        return Histogram(domain=self.domain, counts=np.asarray(counts, dtype=float))

    def normalized(self) -> np.ndarray:
        """Counts as a probability vector (uniform if the total is <= 0).

        Negative counts (possible after noising) are clamped to zero
        before normalizing, which is the convention used for KL/KS
        comparisons in the benches.
        """
        clamped = np.clip(self.counts, 0.0, None)
        total = clamped.sum()
        if total <= 0:
            return np.full(self.size, 1.0 / self.size)
        return clamped / total

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.domain == other.domain and np.array_equal(
            self.counts, other.counts
        )

    def __hash__(self) -> int:  # frozen dataclass with ndarray needs custom hash
        return hash((self.domain, self.counts.tobytes()))

    def __str__(self) -> str:
        return f"Histogram({self.domain}, total={self.total:g})"
