"""Histogram domains.

A :class:`Domain` describes the ordered bins of a histogram independently
of any counts: either a numeric interval discretized into equal-width
bins, or an explicit ordered list of categorical labels.  Domains are
value objects — equality is structural — and every histogram, query
workload, and publisher carries one so mismatched comparisons fail loudly
(:class:`~repro.exceptions.DomainMismatchError`) instead of silently
misaligning bins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro._validation import check_integer
from repro.exceptions import DomainMismatchError

__all__ = ["Domain"]


@dataclass(frozen=True)
class Domain:
    """An ordered domain of ``size`` histogram bins.

    Parameters
    ----------
    size:
        Number of bins; must be >= 1.
    lower, upper:
        Optional numeric bounds when the domain discretizes an interval.
        When given, bin ``i`` covers
        ``[lower + i*w, lower + (i+1)*w)`` with ``w = (upper-lower)/size``.
    labels:
        Optional ordered categorical labels (length must equal ``size``).
    name:
        Optional human-readable name used in reports.
    """

    size: int
    lower: Optional[float] = None
    upper: Optional[float] = None
    labels: Optional[Tuple[str, ...]] = None
    name: str = ""

    def __post_init__(self) -> None:
        check_integer(self.size, "size", minimum=1)
        has_lower = self.lower is not None
        has_upper = self.upper is not None
        if has_lower != has_upper:
            raise ValueError("lower and upper must be given together")
        if has_lower and not float(self.lower) < float(self.upper):
            raise ValueError(
                f"lower must be < upper, got [{self.lower}, {self.upper}]"
            )
        if self.labels is not None:
            labels = tuple(str(lbl) for lbl in self.labels)
            if len(labels) != self.size:
                raise ValueError(
                    f"labels has {len(labels)} entries but size is {self.size}"
                )
            object.__setattr__(self, "labels", labels)

    @classmethod
    def integers(cls, size: int, start: int = 0, name: str = "") -> "Domain":
        """Domain of unit-width integer bins ``start, start+1, ...``."""
        check_integer(size, "size", minimum=1)
        check_integer(start, "start")
        return cls(size=size, lower=float(start), upper=float(start + size), name=name)

    @classmethod
    def categorical(cls, labels: Sequence[str], name: str = "") -> "Domain":
        """Domain over an explicit ordered list of category labels."""
        labels = tuple(str(lbl) for lbl in labels)
        if not labels:
            raise ValueError("labels must be non-empty")
        return cls(size=len(labels), labels=labels, name=name)

    @property
    def is_numeric(self) -> bool:
        """True when the domain discretizes a numeric interval."""
        return self.lower is not None

    @property
    def bin_width(self) -> Optional[float]:
        """Width of each bin for numeric domains, else ``None``."""
        if not self.is_numeric:
            return None
        return (float(self.upper) - float(self.lower)) / self.size

    def bin_edges(self) -> np.ndarray:
        """The ``size + 1`` bin edges of a numeric domain."""
        if not self.is_numeric:
            raise ValueError("bin_edges is only defined for numeric domains")
        return np.linspace(float(self.lower), float(self.upper), self.size + 1)

    def bin_of(self, value: float) -> int:
        """Index of the bin containing a numeric ``value``.

        The upper edge of the last bin is inclusive so the domain covers
        the full closed interval.
        """
        if not self.is_numeric:
            raise ValueError("bin_of is only defined for numeric domains")
        lower, upper = float(self.lower), float(self.upper)
        if not lower <= value <= upper:
            raise ValueError(f"value {value!r} outside domain [{lower}, {upper}]")
        if value == upper:
            return self.size - 1
        return int((value - lower) / self.bin_width)

    def label_of(self, index: int) -> str:
        """Human-readable label of bin ``index``."""
        check_integer(index, "index")
        if not 0 <= index < self.size:
            raise ValueError(f"index {index} outside [0, {self.size})")
        if self.labels is not None:
            return self.labels[index]
        if self.is_numeric:
            edges = self.bin_edges()
            return f"[{edges[index]:g}, {edges[index + 1]:g})"
        return str(index)

    def require_same(self, other: "Domain") -> None:
        """Raise :class:`DomainMismatchError` unless ``other`` matches."""
        if not isinstance(other, Domain):
            raise TypeError(f"expected Domain, got {type(other).__name__}")
        if (
            self.size != other.size
            or self.lower != other.lower
            or self.upper != other.upper
            or self.labels != other.labels
        ):
            raise DomainMismatchError(f"domains differ: {self} vs {other}")

    def __len__(self) -> int:
        return self.size

    def __str__(self) -> str:
        desc = f"{self.size} bins"
        if self.is_numeric:
            desc += f" over [{self.lower:g}, {self.upper:g}]"
        if self.name:
            desc = f"{self.name}: {desc}"
        return desc
