"""JSON-friendly (de)serialization of histograms.

The experiment harness persists published histograms as plain dicts so
results can be inspected or re-analysed without the library.  The format
is deliberately boring: a versioned dict of lists and scalars.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.hist.domain import Domain
from repro.hist.histogram import Histogram

__all__ = ["histogram_to_dict", "histogram_from_dict"]

_FORMAT_VERSION = 1


def histogram_to_dict(hist: Histogram) -> Dict[str, Any]:
    """Serialize a histogram into a JSON-compatible dict."""
    if not isinstance(hist, Histogram):
        raise TypeError(f"expected Histogram, got {type(hist).__name__}")
    domain = hist.domain
    return {
        "version": _FORMAT_VERSION,
        "counts": [float(c) for c in hist.counts],
        "domain": {
            "size": domain.size,
            "lower": domain.lower,
            "upper": domain.upper,
            "labels": list(domain.labels) if domain.labels is not None else None,
            "name": domain.name,
        },
    }


def histogram_from_dict(payload: Dict[str, Any]) -> Histogram:
    """Inverse of :func:`histogram_to_dict`; validates the payload."""
    if not isinstance(payload, dict):
        raise TypeError(f"expected dict, got {type(payload).__name__}")
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported histogram format version: {version!r}")
    try:
        dom = payload["domain"]
        counts = payload["counts"]
    except KeyError as exc:
        raise ValueError(f"histogram payload missing key: {exc}") from exc
    labels = dom.get("labels")
    domain = Domain(
        size=int(dom["size"]),
        lower=dom.get("lower"),
        upper=dom.get("upper"),
        labels=tuple(labels) if labels is not None else None,
        name=str(dom.get("name", "")),
    )
    return Histogram(domain=domain, counts=np.asarray(counts, dtype=np.float64))
