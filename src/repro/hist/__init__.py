"""Histogram data structures: domains, counts, and range queries."""

from repro.hist.domain import Domain
from repro.hist.histogram import Histogram
from repro.hist.ranges import RangeQuery, evaluate_ranges, prefix_sums
from repro.hist.serialize import histogram_from_dict, histogram_to_dict

__all__ = [
    "Domain",
    "Histogram",
    "RangeQuery",
    "evaluate_ranges",
    "prefix_sums",
    "histogram_from_dict",
    "histogram_to_dict",
]
