"""Range-count queries over histograms.

A :class:`RangeQuery` is an inclusive bin interval ``[lo, hi]``.  Batch
evaluation uses prefix sums so a workload of ``m`` queries over ``n``
bins costs ``O(n + m)`` instead of ``O(n * m)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro._validation import check_counts, check_integer

__all__ = ["RangeQuery", "prefix_sums", "evaluate_ranges"]


@dataclass(frozen=True, order=True)
class RangeQuery:
    """Inclusive bin range ``[lo, hi]`` over a histogram of known size."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        check_integer(self.lo, "lo", minimum=0)
        check_integer(self.hi, "hi", minimum=0)
        if self.lo > self.hi:
            raise ValueError(f"lo ({self.lo}) must be <= hi ({self.hi})")

    @property
    def length(self) -> int:
        """Number of bins covered."""
        return self.hi - self.lo + 1

    def validate_for(self, size: int) -> None:
        """Raise if the query does not fit a histogram of ``size`` bins."""
        if self.hi >= size:
            raise ValueError(
                f"query [{self.lo}, {self.hi}] exceeds histogram of {size} bins"
            )

    def __str__(self) -> str:
        return f"[{self.lo}..{self.hi}]"


def prefix_sums(counts: Sequence[float]) -> np.ndarray:
    """Return the length ``n + 1`` prefix-sum array ``P`` of ``counts``.

    ``P[j] = sum(counts[:j])`` so a range sum is ``P[hi+1] - P[lo]``.
    """
    arr = check_counts(counts, "counts")
    out = np.empty(len(arr) + 1, dtype=np.float64)
    out[0] = 0.0
    np.cumsum(arr, out=out[1:])
    return out


def evaluate_ranges(
    counts: Sequence[float], queries: Iterable[RangeQuery]
) -> np.ndarray:
    """Evaluate a batch of range queries against a count vector.

    Returns one answer per query, in order.
    """
    arr = check_counts(counts, "counts")
    query_list: List[RangeQuery] = list(queries)
    for q in query_list:
        q.validate_for(len(arr))
    if not query_list:
        return np.empty(0, dtype=np.float64)
    prefix = prefix_sums(arr)
    los = np.fromiter((q.lo for q in query_list), dtype=np.int64)
    his = np.fromiter((q.hi for q in query_list), dtype=np.int64)
    return prefix[his + 1] - prefix[los]
