"""DPBench-grade scenario families: named, seeded, fingerprinted cells.

A *scenario* composes a dataset generator (shape × domain size × scale)
with a workload battery (point, marginal, clustered, heavy-tailed and
fixed-length range queries) into a named, fully self-describing unit.
DPBench (Hay et al.) showed DP-histogram conclusions flip across these
regimes, so the utility radar sweeps a *family* of scenarios rather than
a single dataset, and every scenario can be reconstructed offline from
its name alone — which is what lets history ingest re-derive
oracle-anchored utility rows from journals long after the run.

Spec names follow the sweep convention::

    scenario/<family>/<label>/<publisher>/eps=<eps>

so the history store, journals, and drift radar treat scenario runs
exactly like sweep runs, with the scenario registry as the offline
source of dataset bytes and workload definitions.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.spec import ExperimentSpec
from repro.hist.histogram import Histogram
from repro.workloads.workload import Workload

__all__ = [
    "Scenario",
    "SCENARIOS",
    "FAMILIES",
    "get_scenario",
    "list_families",
    "list_scenarios",
    "build_scenario_specs",
    "parse_scenario_spec_name",
    "scenario_publishers",
]

_NAME_PART = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

_SCENARIO_SPEC_RE = re.compile(
    r"^scenario/(?P<family>[^/]+)/(?P<label>[^/]+)/"
    r"(?P<publisher>[^/]+)/eps=(?P<eps>[^/]+)$"
)

#: Workload-spec opcodes understood by :meth:`Scenario.build_workloads`.
#: Each is a plain tuple so scenarios stay hashable and serializable:
#:   ("unit",)                              -> one query per bin
#:   ("marginal", block)                    -> disjoint aligned blocks
#:   ("clustered", count, k, spread, seed)  -> hotspot-clustered ranges
#:   ("heavy-tail", count, alpha, seed)     -> power-law length ranges
#:   ("len", length)                        -> all ranges of one length
_WORKLOAD_OPS = ("unit", "marginal", "clustered", "heavy-tail", "len")


@dataclass(frozen=True)
class Scenario:
    """One named evaluation cell: a dataset shape plus its workload battery.

    Everything needed to rebuild the histogram and workloads is stored
    in plain values, so a scenario is reconstructible from the registry
    with no run-time state — the property the offline ingest path and
    the journal fingerprint check both rely on.
    """

    family: str
    label: str
    generator: str
    n_bins: int
    total: int
    gen_params: Tuple[Tuple[str, object], ...] = ()
    workload_specs: Tuple[Tuple, ...] = (("unit",),)
    description: str = ""

    def __post_init__(self) -> None:
        for part, value in (("family", self.family), ("label", self.label)):
            if not _NAME_PART.match(value):
                raise ValueError(
                    f"scenario {part} {value!r} must match {_NAME_PART.pattern}"
                )
        if self.n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {self.n_bins}")
        if self.total < 0:
            raise ValueError(f"total must be >= 0, got {self.total}")
        for spec in self.workload_specs:
            if not spec or spec[0] not in _WORKLOAD_OPS:
                raise ValueError(f"unknown workload spec {spec!r}")

    @property
    def name(self) -> str:
        """Registry key: ``<family>/<label>``."""
        return f"{self.family}/{self.label}"

    def build_histogram(self) -> Histogram:
        """Rebuild the scenario's dataset — deterministic for a scenario."""
        from repro.datasets import generators

        factory = getattr(generators, f"{self.generator}_histogram", None)
        if factory is None:
            raise ValueError(f"unknown generator {self.generator!r}")
        return factory(self.n_bins, total=self.total, **dict(self.gen_params))

    def build_workloads(self) -> Tuple[Workload, ...]:
        """Rebuild the workload battery — deterministic for a scenario."""
        from repro.workloads import builders

        out: List[Workload] = []
        n = self.n_bins
        for spec in self.workload_specs:
            op = spec[0]
            if op == "unit":
                out.append(builders.unit_queries(n))
            elif op == "marginal":
                out.append(builders.marginal_ranges(n, block=spec[1]))
            elif op == "clustered":
                _, count, k, spread, seed = spec
                out.append(
                    builders.clustered_ranges(
                        n, count=count, n_clusters=k, spread=spread, rng=seed
                    )
                )
            elif op == "heavy-tail":
                _, count, alpha, seed = spec
                out.append(
                    builders.heavy_tailed_ranges(
                        n, count=count, alpha=alpha, rng=seed
                    )
                )
            elif op == "len":
                out.append(builders.fixed_length_ranges(n, spec[1]))
        return tuple(out)

    def fingerprint(self) -> str:
        """SHA-256 identity covering dataset bytes and workload battery.

        Two scenarios with the same name but different generator
        parameters (or a generator whose output changed) get different
        fingerprints, so stale history rows never silently mix.
        """
        h = hashlib.sha256()
        h.update(self.name.encode())
        h.update(repr((self.generator, self.n_bins, self.total)).encode())
        h.update(repr(self.gen_params).encode())
        h.update(repr(self.workload_specs).encode())
        h.update(self.build_histogram().counts.tobytes())
        return h.hexdigest()


def _crossover_lengths(n_bins: int) -> List[int]:
    """Query lengths for the crossover figure: powers of 4 plus n/2."""
    lengths = [l for l in (4, 16, 64, 256, 1024) if l <= n_bins // 2]
    half = n_bins // 2
    if half >= 2 and half not in lengths:
        lengths.append(half)
    return sorted(lengths)


def _default_workloads(n_bins: int) -> Tuple[Tuple, ...]:
    block = max(1, int(round(n_bins ** 0.5)))
    specs: List[Tuple] = [
        ("unit",),
        ("marginal", block),
        ("clustered", 64, 3, 0.05, 0),
        ("heavy-tail", 64, 1.2, 0),
    ]
    specs.extend(("len", l) for l in _crossover_lengths(n_bins))
    return tuple(specs)


def _build_registry() -> Dict[str, Scenario]:
    """The default DPBench-style matrix: 6 shape families × 2 domain sizes."""
    shapes = (
        ("smooth", "gaussian_mixture", "gmm", (),
         "bimodal Gaussian mixture — merge-friendly"),
        ("spiky", "power_law", "power-law", (("alpha", 1.5), ("rng", 0)),
         "i.i.d. heavy-tail magnitudes — merge-hostile"),
        ("heavy-tail", "zipf", "zipf", (("exponent", 1.2), ("rng", 0)),
         "rank-sorted Zipf head — the paper's search-log shape"),
        ("shifted", "shifted", "shifted", (("shift", 0.6), ("rng", 0)),
         "single mode away from the origin — placement-sensitive"),
        ("cliff", "cliff", "cliff",
         (("cliff_at", 0.35), ("ratio", 50.0), ("rng", 0)),
         "two plateaus, one sharp boundary — bias concentrates at the edge"),
        ("step", "step", "step", (("rng", 0),),
         "piecewise-constant — v-optimal's ideal case"),
    )
    registry: Dict[str, Scenario] = {}
    for family, generator, label_base, params, desc in shapes:
        for n_bins in (64, 256):
            gen_params = tuple(params)
            if generator == "step":
                gen_params = (("n_steps", max(4, n_bins // 16)),) + gen_params
            s = Scenario(
                family=family,
                label=f"{label_base}-{n_bins}",
                generator=generator,
                n_bins=n_bins,
                total=50_000,
                gen_params=gen_params,
                workload_specs=_default_workloads(n_bins),
                description=desc,
            )
            registry[s.name] = s
    return registry


#: The scenario registry, keyed by ``<family>/<label>``.
SCENARIOS: Dict[str, Scenario] = _build_registry()

#: Family names in registration order.
FAMILIES: Tuple[str, ...] = tuple(
    dict.fromkeys(s.family for s in SCENARIOS.values())
)


def list_families() -> List[str]:
    return list(FAMILIES)


def list_scenarios(family: Optional[str] = None) -> List[Scenario]:
    if family is None:
        return list(SCENARIOS.values())
    if family not in FAMILIES:
        raise ValueError(
            f"unknown family {family!r}; available: {', '.join(FAMILIES)}"
        )
    return [s for s in SCENARIOS.values() if s.family == family]


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by ``<family>/<label>``."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; see list_scenarios()"
        ) from None


def scenario_publishers() -> Dict[str, object]:
    """Publisher roster for scenario runs — same as the figure roster."""
    from repro.experiments.figures import ROSTER

    return dict(ROSTER)


def build_scenario_specs(
    scenarios: Optional[Sequence[str]] = None,
    publishers: Optional[Sequence[str]] = None,
    epsilons: Sequence[float] = (0.1, 1.0),
    n_seeds: int = 3,
    n_jobs: int = 1,
) -> List[ExperimentSpec]:
    """Expand scenario names × publishers × epsilons into experiment specs.

    Like :func:`repro.robust.sweep.build_sweep_specs`, the same arguments
    always yield specs with the same journal fingerprints (scenarios are
    deterministic), so journaled scenario runs resume and dedup cleanly.
    """
    roster = scenario_publishers()
    pub_names = list(publishers) if publishers else list(roster)
    unknown = [p for p in pub_names if p not in roster]
    if unknown:
        raise ValueError(
            f"unknown publisher(s) {unknown}; available: {', '.join(roster)}"
        )
    if n_seeds < 1:
        raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")
    chosen = (
        [get_scenario(name) for name in scenarios]
        if scenarios
        else list(SCENARIOS.values())
    )
    specs: List[ExperimentSpec] = []
    for scenario in chosen:
        hist = scenario.build_histogram()
        workloads = scenario.build_workloads()
        for pub_name in pub_names:
            for eps in epsilons:
                specs.append(
                    ExperimentSpec(
                        name=(
                            f"scenario/{scenario.family}/{scenario.label}/"
                            f"{pub_name}/eps={eps:g}"
                        ),
                        histogram=hist,
                        publisher_factory=roster[pub_name],
                        epsilon=float(eps),
                        workloads=workloads,
                        seeds=tuple(range(n_seeds)),
                        n_jobs=n_jobs,
                    )
                )
    return specs


def parse_scenario_spec_name(
    spec_name: str,
) -> "Optional[Tuple[Scenario, str, float]]":
    """Parse ``scenario/<family>/<label>/<publisher>/eps=<eps>``.

    Returns ``(scenario, publisher, epsilon)`` when the name follows the
    convention *and* the scenario exists in the registry, else ``None``
    (unknown scenarios are ignored rather than fatal so history ingest
    keeps working across registry renames).
    """
    m = _SCENARIO_SPEC_RE.match(spec_name)
    if not m:
        return None
    key = f"{m.group('family')}/{m.group('label')}"
    scenario = SCENARIOS.get(key)
    if scenario is None:
        return None
    try:
        eps = float(m.group("eps"))
    except ValueError:
        return None
    return scenario, m.group("publisher"), eps
