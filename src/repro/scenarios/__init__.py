"""Scenario-family registry: DPBench-grade evaluation cells.

See :mod:`repro.scenarios.registry` for the design; `docs/evaluation.md`
for the catalogue and how the utility radar consumes it.
"""

from repro.scenarios.registry import (
    FAMILIES,
    SCENARIOS,
    Scenario,
    build_scenario_specs,
    get_scenario,
    list_families,
    list_scenarios,
    parse_scenario_spec_name,
    scenario_publishers,
)

__all__ = [
    "Scenario",
    "SCENARIOS",
    "FAMILIES",
    "get_scenario",
    "list_families",
    "list_scenarios",
    "build_scenario_specs",
    "parse_scenario_spec_name",
    "scenario_publishers",
]
