"""dphist-repro: differentially private histogram publication.

A from-scratch reproduction of "Differentially Private Histogram
Publication" (Xu, Zhang, Xiao, Yang, Yu — ICDE 2012; extended VLDBJ
2013): the NoiseFirst and StructureFirst algorithms, the baselines they
were evaluated against (Dwork identity, Boost hierarchical intervals,
Privelet wavelets, MWEM, Fourier), and the full experiment harness that
regenerates the paper's evaluation.

Quick start
-----------
>>> from repro import NoiseFirst, datasets
>>> result = NoiseFirst().publish(datasets.age(), budget=0.1, rng=0)
>>> result.histogram.size
100
>>> result.epsilon_spent
0.1
"""

from repro import (
    accounting,
    analysis,
    baselines,
    core,
    datasets,
    hist,
    io,
    mechanisms,
    metrics,
    partition,
    postprocess,
    spatial,
    streaming,
    verify,
    workloads,
)
from repro.accounting import Accountant, PrivacyBudget
from repro.baselines import (
    Ahp,
    Boost,
    DworkIdentity,
    FourierPublisher,
    Mwem,
    Privelet,
    UniformFlat,
)
from repro.core import NoiseFirst, PublishResult, Publisher, StructureFirst
from repro.exceptions import (
    BudgetExceededError,
    DomainMismatchError,
    PartitionError,
    ReproError,
)
from repro.hist import Domain, Histogram, RangeQuery
from repro.workloads import Workload

__version__ = "1.0.0"

__all__ = [
    # subpackages
    "accounting",
    "analysis",
    "baselines",
    "core",
    "datasets",
    "hist",
    "io",
    "mechanisms",
    "metrics",
    "partition",
    "postprocess",
    "spatial",
    "streaming",
    "workloads",
    # core types
    "Accountant",
    "PrivacyBudget",
    "Publisher",
    "PublishResult",
    "NoiseFirst",
    "StructureFirst",
    # baselines
    "Ahp",
    "DworkIdentity",
    "Boost",
    "Privelet",
    "Mwem",
    "FourierPublisher",
    "UniformFlat",
    # data types
    "Domain",
    "Histogram",
    "RangeQuery",
    "Workload",
    # exceptions
    "ReproError",
    "BudgetExceededError",
    "PartitionError",
    "DomainMismatchError",
    "__version__",
]
