"""Structured tracing: nested, monotonic-clock span trees.

The observability layer's timing primitive.  A *span* is one named,
timed region of code; spans nest, forming a tree per trial::

    with trace.capture("trial", publisher="noisefirst", seed=3) as root:
        with trace.span("publish"):
            with trace.span("partition.dp", k=32, n=1024):
                ...
    root.to_dict()   # JSON-ready nested tree

Design constraints (see ``docs/observability.md``):

* **Off by default, near-free when off.**  ``span`` consults one
  thread-local attribute; with no active capture it returns a shared
  null context manager — no allocation, no clock read.  A perf test
  (``tests/obs/test_overhead.py``) asserts the disabled cost stays
  under 5% of a representative publish.
* **Monotonic.**  Durations come from ``time.perf_counter`` (the
  monotonic high-resolution clock); spans never read wall-clock time,
  so traces are immune to clock steps.
* **Worker-safe.**  Activation is by the :data:`ENV_VAR` environment
  variable (inherited by pool workers, exactly like
  ``repro.robust.faults``) or a process-local :func:`set_enabled` flag.
  The worker builds its span tree locally and ships it back through the
  existing pickle channel as plain dicts inside
  ``RunRecord.meta["trace"]`` — timing-exempt meta, so the
  parallel-equals-serial bit-identity contract is untouched.
* **Zero dependencies.**  Stdlib only; everything serializes to plain
  ``dict``/``list``/``str``/``float`` so both pickle (worker channel)
  and JSON (checkpoint journal) round-trip it losslessly.

The module also owns the repo's shared low-level timers —
:class:`Stopwatch` and :func:`best_of` — so ``experiments/runner.py``
and ``perf/bench.py`` report through one code path instead of each
hand-rolling ``perf_counter`` arithmetic.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ENV_VAR",
    "Span",
    "Stopwatch",
    "best_of",
    "capture",
    "enabled",
    "self_seconds",
    "set_enabled",
    "span",
    "stage_totals",
    "walk",
]

#: Environment variable that turns tracing on (any non-empty value).
#: Environment activation is what makes worker processes inherit it.
ENV_VAR = "REPRO_TRACE"

#: Process-local override: ``None`` defers to the environment.
_ENABLED: Optional[bool] = None

_STATE = threading.local()


def set_enabled(value: Optional[bool]) -> Optional[bool]:
    """Set the process-local tracing flag; returns the previous value.

    ``True``/``False`` override the environment; ``None`` restores
    environment-driven behavior (:data:`ENV_VAR`).  Note that worker
    *processes* only see the environment variable — a CLI that wants
    traced workers must export :data:`ENV_VAR` (the ``--trace`` flag
    does exactly that).
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = value
    return previous


def enabled() -> bool:
    """Whether new captures will record spans."""
    if _ENABLED is not None:
        return _ENABLED
    return bool(os.environ.get(ENV_VAR))


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------

def _clean_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce span attributes to JSON-safe scalars (str fallback)."""
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, bool) or value is None:
            out[key] = value
        elif isinstance(value, (int, float, str)):
            out[key] = value
        else:
            out[key] = str(value)
    return out


@dataclass
class Span:
    """One timed region: name, attributes, duration, children.

    ``seconds`` is filled when the span closes; ``children`` hold the
    sub-spans opened while this span was the innermost open one.
    """

    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    seconds: float = 0.0
    children: List["Span"] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form: picklable, JSON-able, journal-safe."""
        out: Dict[str, Any] = {"name": self.name, "seconds": self.seconds}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(payload.get("name", "")),
            attrs=dict(payload.get("attrs", {})),
            seconds=float(payload.get("seconds", 0.0)),
            children=[
                cls.from_dict(child)
                for child in payload.get("children", [])
            ],
        )


class _NullSpanContext:
    """Shared no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL = _NullSpanContext()


class _LiveSpanContext:
    """Context manager that appends a timed child span to the stack."""

    __slots__ = ("_stack", "_span", "_t0")

    def __init__(self, stack: List[Span], name: str,
                 attrs: Dict[str, Any]) -> None:
        self._stack = stack
        self._span = Span(name=name, attrs=_clean_attrs(attrs))

    def __enter__(self) -> Span:
        self._stack[-1].children.append(self._span)
        self._stack.append(self._span)
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, *exc: Any) -> bool:
        elapsed = time.perf_counter() - self._t0
        popped = self._stack.pop()
        popped.seconds = elapsed
        return False


def span(name: str, **attrs: Any):
    """Open a child span under the active capture (no-op without one).

    The disabled path is a single thread-local attribute read returning
    a shared null context manager — safe to leave on hot paths.
    """
    stack = getattr(_STATE, "stack", None)
    if stack is None:
        return _NULL
    return _LiveSpanContext(stack, name, attrs)


class _CaptureContext:
    """Root-span context installing a fresh span stack for this thread."""

    __slots__ = ("_name", "_attrs", "_root", "_previous", "_t0")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        self._root = Span(name=self._name, attrs=_clean_attrs(self._attrs))
        self._previous = getattr(_STATE, "stack", None)
        _STATE.stack = [self._root]
        self._t0 = time.perf_counter()
        return self._root

    def __exit__(self, *exc: Any) -> bool:
        self._root.seconds = time.perf_counter() - self._t0
        _STATE.stack = self._previous
        return False


def capture(name: str, **attrs: Any):
    """Start a root span (when tracing is enabled) for this thread.

    Returns a context manager yielding the root :class:`Span`, or
    ``None`` when tracing is disabled.  Nested captures stack: the inner
    capture records into its own tree and restores the outer one on
    exit.
    """
    if not enabled():
        return _NULL
    return _CaptureContext(name, attrs)


# ---------------------------------------------------------------------------
# Trace-tree analytics
# ---------------------------------------------------------------------------

def walk(tree: Dict[str, Any], prefix: str = "") -> Iterator[
        Tuple[str, Dict[str, Any]]]:
    """Depth-first ``(path, span_dict)`` pairs over a serialized tree.

    Paths are slash-joined span names (``"trial/publish/partition.dp"``),
    the scheme the metrics bridge and the run reports aggregate on.
    """
    path = f"{prefix}/{tree.get('name', '')}" if prefix else str(
        tree.get("name", ""))
    yield path, tree
    for child in tree.get("children", ()):
        yield from walk(child, path)


def self_seconds(node: Dict[str, Any]) -> float:
    """A span's own time: its seconds minus its direct children's.

    The "unattributed" remainder of a serialized span — what the
    serving debug endpoint reports as time a request spent outside any
    documented stage.  Clamped at zero (clock jitter can make child
    sums exceed the parent by nanoseconds).
    """
    own = float(node.get("seconds", 0.0))
    children = sum(
        float(child.get("seconds", 0.0))
        for child in node.get("children", ())
    )
    return max(0.0, own - children)


def stage_totals(tree: Dict[str, Any]) -> Dict[str, Tuple[int, float]]:
    """Aggregate a serialized trace: path -> (calls, total seconds)."""
    totals: Dict[str, Tuple[int, float]] = {}
    for path, node in walk(tree):
        calls, seconds = totals.get(path, (0, 0.0))
        totals[path] = (calls + 1, seconds + float(node.get("seconds", 0.0)))
    return totals


# ---------------------------------------------------------------------------
# Shared low-level timers (the one perf_counter code path)
# ---------------------------------------------------------------------------

class Stopwatch:
    """Minimal monotonic timer: ``with Stopwatch() as sw: ...; sw.seconds``.

    Measures regardless of whether tracing is enabled — this is the
    primitive behind ``RunRecord.seconds`` and the tracked benchmarks,
    not an observability feature that can be off.
    """

    __slots__ = ("seconds", "_t0")

    def __init__(self) -> None:
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.seconds = time.perf_counter() - self._t0
        return False


def best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum wall-clock seconds of ``repeats`` calls to ``fn``.

    The benchmark timer (best-of-N suppresses scheduler noise); shared
    by ``repro.perf.bench`` and the perf tests.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        with Stopwatch() as sw:
            fn()
        best = min(best, sw.seconds)
    return best
