"""Observability layer: tracing, metrics, monitoring, and reports.

``repro.obs`` is the instrumentation substrate for the experiment
harness — zero external dependencies, off by default, near-free when
disabled:

* :mod:`repro.obs.trace` — nested monotonic-clock span trees
  (``span("partition.dp", k=32)``) plus the shared low-level timers
  (:class:`Stopwatch`, :func:`best_of`);
* :mod:`repro.obs.metrics` — counter/gauge/histogram registry with
  Prometheus-textfile and JSON exporters;
* :mod:`repro.obs.resources` — opt-in per-trial ``tracemalloc`` /
  ``getrusage`` probes;
* :mod:`repro.obs.monitor` — executor observers: run statistics,
  metric bridging, and the live TTY/JSONL progress monitor;
* :mod:`repro.obs.report` — ``repro report``: markdown run reports
  from checkpoint journals.

Span naming scheme, metric catalog, and report anatomy are documented
in ``docs/observability.md``.
"""

from repro.obs.trace import (
    Span,
    Stopwatch,
    best_of,
    capture,
    span,
    stage_totals,
)
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.resources import ResourceProbe
from repro.obs.monitor import (
    ExecutorObserver,
    MetricsObserver,
    MultiObserver,
    ProgressMonitor,
    RunStats,
)
from repro.obs.report import render_report, write_report

__all__ = [
    "ExecutorObserver",
    "MetricsObserver",
    "MetricsRegistry",
    "MultiObserver",
    "ProgressMonitor",
    "ResourceProbe",
    "RunStats",
    "Span",
    "Stopwatch",
    "best_of",
    "capture",
    "get_registry",
    "render_report",
    "set_registry",
    "span",
    "stage_totals",
    "write_report",
]
