"""Observability layer: tracing, metrics, monitoring, and reports.

``repro.obs`` is the instrumentation substrate for the experiment
harness — zero external dependencies, off by default, near-free when
disabled:

* :mod:`repro.obs.trace` — nested monotonic-clock span trees
  (``span("partition.dp", k=32)``) plus the shared low-level timers
  (:class:`Stopwatch`, :func:`best_of`);
* :mod:`repro.obs.metrics` — counter/gauge/histogram registry with
  Prometheus-textfile and JSON exporters;
* :mod:`repro.obs.resources` — opt-in per-trial ``tracemalloc`` /
  ``getrusage`` probes;
* :mod:`repro.obs.monitor` — executor observers: run statistics,
  metric bridging, and the live TTY/JSONL progress monitor;
* :mod:`repro.obs.report` — ``repro report``: markdown run reports
  from checkpoint journals;
* :mod:`repro.obs.history` — the regression radar's append-only
  SQLite run-history store (``repro history ingest``);
* :mod:`repro.obs.drift` — oracle-anchored accuracy drift detection
  plus longitudinal z-score / CUSUM perf alarms
  (``repro history drift``);
* :mod:`repro.obs.dashboard` — deterministic trend dashboards with
  unicode sparklines (``repro history dash``).

Span naming scheme, metric catalog, report anatomy, and the
regression radar are documented in ``docs/observability.md``.
"""

from repro.obs.trace import (
    Span,
    Stopwatch,
    best_of,
    capture,
    span,
    stage_totals,
)
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.resources import ResourceProbe
from repro.obs.monitor import (
    ExecutorObserver,
    MetricsObserver,
    MultiObserver,
    ProgressMonitor,
    RunStats,
)
from repro.obs.report import render_report, write_report
from repro.obs.history import (
    HistoryStore,
    IngestResult,
    TrialRow,
    UtilityRow,
    default_commit,
    sniff_source,
    trial_row_from_record,
    utility_rows_from_record,
)
from repro.obs.drift import (
    DriftVerdict,
    cusum_positive,
    detect_drift,
    has_confirmed_drift,
    render_verdicts,
    rolling_z,
)
from repro.obs.dashboard import (
    render_dashboard,
    sparkline,
    write_dashboard,
)

__all__ = [
    "DriftVerdict",
    "ExecutorObserver",
    "HistoryStore",
    "IngestResult",
    "MetricsObserver",
    "MetricsRegistry",
    "MultiObserver",
    "ProgressMonitor",
    "ResourceProbe",
    "RunStats",
    "Span",
    "Stopwatch",
    "TrialRow",
    "UtilityRow",
    "best_of",
    "capture",
    "cusum_positive",
    "default_commit",
    "detect_drift",
    "get_registry",
    "has_confirmed_drift",
    "render_dashboard",
    "render_report",
    "render_verdicts",
    "rolling_z",
    "set_registry",
    "sniff_source",
    "span",
    "sparkline",
    "stage_totals",
    "trial_row_from_record",
    "utility_rows_from_record",
    "write_dashboard",
    "write_report",
]
