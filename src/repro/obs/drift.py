"""Drift detection over the run-history store: the regression radar.

The store (:mod:`repro.obs.history`) holds longitudinal trajectories —
per-cell observed accuracy, per-key bench timings.  This module turns
them into machine-readable *verdicts* with two complementary detectors:

**Oracle anchoring (accuracy).**  Every ingested trial carries the
closed-form expected unit MSE of its publisher configuration
(:mod:`repro.verify.oracles`).  A cell *confirms* drift when its latest
observed mean MSE leaves the calibrated tolerance band around that
prediction.  The band is derived from the sampling variance of an
empirical MSE: a mean of roughly ``seeds × effective-bins`` squared
Laplace draws has relative standard deviation
``sqrt(Var(X²))/E(X²) / sqrt(m) = sqrt(5) / sqrt(m)`` (for Laplace,
``E X⁴ = 24b⁴`` against ``(E X²)² = 4b⁴``), so the band is
``z · sqrt(5) / sqrt(m)`` with a floor — multi-seed runs tighten it,
correlated noise (few buckets) widens it via the effective-bin count.
A publisher releasing Laplace noise at ``2/ε`` instead of ``1/ε``
quadruples its MSE and blows through any reasonable band; honest
seed-to-seed noise does not.  ``upper_bound`` oracles only flag from
above; ``exact`` oracles also flag *under*-shooting (less noise than ε
affords is a privacy smell, not a win).

**Longitudinal statistics.**  Independently of the oracle, each cell's
per-batch trajectory is scored with a z-score of the latest point
against a trailing window, and each bench key's calibration-normalized
seconds with a one-sided CUSUM (slow drifts that never trip a single
25% gate still accumulate).  Because sweep results are bit-identical
by construction, an accuracy trajectory is *constant* until a real
behavioral change — the z-score degenerates to an exact change
detector with zero false alarms from run-to-run noise.

Verdict semantics (what CI acts on):

* ``drift`` — confirmed: oracle band violated, or perf CUSUM alarm
  with a material latest-point regression.  The radar lane fails.
* ``watch`` — longitudinal anomaly without oracle confirmation (or a
  CUSUM alarm the latest point has already recovered from).  Reported,
  never fatal: this is the "not on noise" half of the contract.
* ``ok`` / ``no-data`` — nothing to see / not enough trajectory yet.

**Utility verdicts** (:func:`utility_verdicts`, v3 stores) apply the
same oracle-band contract per (scenario, publisher, ε, *workload*)
cell: the band's sample count is ``seeds × eff_queries``, so
long-range workloads — fewer independent observations — get
proportionally wider bands, and rolling-z / CUSUM on the normalized
error (observed ÷ oracle) stay strictly advisory.  See
``docs/evaluation.md``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.history import HistoryStore

__all__ = [
    "DriftVerdict",
    "REL_STD_SQUARED_LAPLACE",
    "accuracy_verdicts",
    "cusum_positive",
    "detect_drift",
    "has_confirmed_drift",
    "oracle_band",
    "perf_verdicts",
    "render_verdicts",
    "rolling_z",
    "utility_verdicts",
]

#: Relative standard deviation of a squared Laplace draw:
#: ``sqrt(E X^4 - (E X^2)^2) / E X^2 = sqrt(24 - 4) / 2 = sqrt(5)``.
REL_STD_SQUARED_LAPLACE = math.sqrt(5.0)

#: Band never shrinks below this relative width — guards against a
#: huge-cell band so tight that float/bias wrinkles trip it.
MIN_BAND = 0.2

#: Perf: a CUSUM alarm only confirms drift when the latest point is
#: also at least this much above the reference (mirrors the bench
#: gate's 25% threshold).
PERF_MIN_RATIO = 0.25


@dataclass
class DriftVerdict:
    """One machine-readable drift verdict (see module docstring)."""

    cell: str
    kind: str  # "accuracy" | "perf"
    status: str  # "ok" | "watch" | "drift" | "no-data"
    observed: Optional[float] = None
    expected: Optional[float] = None
    ratio: Optional[float] = None
    band: Optional[float] = None
    z: Optional[float] = None
    cusum: Optional[float] = None
    n_points: int = 0
    details: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "cell": self.cell,
            "kind": self.kind,
            "status": self.status,
            "n_points": self.n_points,
            "details": list(self.details),
        }
        for name in ("observed", "expected", "ratio", "band", "z",
                     "cusum"):
            value = getattr(self, name)
            if value is not None:
                out[name] = None if _nan(value) else round(value, 6)
        return out


def _nan(value: float) -> bool:
    return isinstance(value, float) and math.isnan(value)


# ---------------------------------------------------------------------------
# Detector primitives (pure functions — golden-tested)
# ---------------------------------------------------------------------------

def rolling_z(
    values: Sequence[float], window: int = 5
) -> Optional[float]:
    """Z-score of the last value against its trailing window.

    Uses up to ``window`` points immediately preceding the last one.
    With a degenerate (zero-variance) window — the normal case for
    bit-identical reruns — returns ``0.0`` when the last value equals
    the window mean and ``inf`` (signed) when it moved at all: a
    deterministic pipeline that changed output *is* the anomaly.
    Returns ``None`` with fewer than 2 trailing points.
    """
    if len(values) < 3:
        return None
    tail = list(values[:-1])[-window:]
    if len(tail) < 2:
        return None
    mean = sum(tail) / len(tail)
    var = sum((v - mean) ** 2 for v in tail) / (len(tail) - 1)
    latest = values[-1]
    if var <= 0.0:
        if latest == mean:
            return 0.0
        return math.copysign(math.inf, latest - mean)
    return (latest - mean) / math.sqrt(var)


def cusum_positive(
    values: Sequence[float],
    slack: float = 0.5,
    sigma_floor_frac: float = 0.05,
    reference: Optional[float] = None,
) -> float:
    """One-sided (upward) CUSUM statistic of a series, in sigmas.

    ``S_i = max(0, S_{i-1} + (x_i - mu)/sigma - slack)`` with ``mu``
    the reference level (default: median of all but the last point)
    and ``sigma`` a *robust* scale estimate — ``1.4826 × MAD`` around
    the reference, so the very shift being hunted cannot inflate its
    own yardstick — floored at ``sigma_floor_frac·mu`` so that an
    almost noiseless series (calibration-normalized bench timings are
    tight) still needs a *sustained* shift to accumulate.  Returns the
    final ``S`` value; compare against a threshold ``h`` (≈5) to alarm.
    """
    if len(values) < 2:
        return 0.0
    history = sorted(values[:-1])
    if reference is None:
        reference = _median(history)
    deviations = sorted(abs(v - reference) for v in history)
    sigma = max(
        1.4826 * _median(deviations),
        abs(reference) * sigma_floor_frac,
        1e-12,
    )
    s = 0.0
    for x in values:
        s = max(0.0, s + (x - reference) / sigma - slack)
    return s


def _median(ordered: Sequence[float]) -> float:
    """Median of an already-sorted non-empty sequence."""
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def oracle_band(
    n_ok: int,
    n_bins: Optional[int],
    k: Optional[int],
    z: float = 4.0,
) -> float:
    """Relative half-width of the oracle tolerance band.

    ``m = n_ok × effective_bins`` independent squared-noise samples
    back the observed mean MSE; correlated noise inside merged buckets
    reduces the effective count to the bucket count ``k`` when the
    publisher reported one.  The band is
    ``max(MIN_BAND, z · sqrt(5) / sqrt(m))``.
    """
    effective_bins = 1
    if k is not None and k > 0:
        effective_bins = int(k)
    elif n_bins is not None and n_bins > 0:
        effective_bins = int(n_bins)
    m = max(1, int(n_ok)) * max(1, effective_bins)
    return max(MIN_BAND, z * REL_STD_SQUARED_LAPLACE / math.sqrt(m))


# ---------------------------------------------------------------------------
# Store-level detectors
# ---------------------------------------------------------------------------

def accuracy_verdicts(
    store: HistoryStore,
    window: int = 5,
    z_thresh: float = 4.0,
    band_z: float = 4.0,
) -> List[DriftVerdict]:
    """One verdict per trial cell in the store (sorted by cell)."""
    verdicts: List[DriftVerdict] = []
    for spec_name, publisher, epsilon in store.trial_cells():
        series = store.trial_series(spec_name, publisher, epsilon)
        cell = f"{spec_name} [{publisher}, eps={epsilon:g}]"
        verdict = DriftVerdict(cell=cell, kind="accuracy", status="ok",
                               n_points=len(series))
        points = [p for p in series if p["mean_mse"] is not None]
        if not points:
            verdict.status = "no-data"
            verdict.details.append("no successful trials in any batch")
            verdicts.append(verdict)
            continue
        latest = points[-1]
        observed = float(latest["mean_mse"])
        verdict.observed = observed
        verdict.n_points = len(points)

        # Oracle anchoring: the confirmed-drift detector.
        oracle = latest["oracle_mse"]
        if oracle is not None and oracle > 0:
            kind = latest.get("oracle_kind") or "exact"
            band = oracle_band(
                int(latest["n_ok"] or 0), latest.get("n"),
                latest.get("k"), z=band_z,
            )
            ratio = observed / float(oracle)
            verdict.expected = float(oracle)
            verdict.ratio = ratio
            verdict.band = band
            if ratio > 1.0 + band:
                verdict.status = "drift"
                verdict.details.append(
                    f"observed MSE {observed:.6g} exceeds oracle "
                    f"{float(oracle):.6g} by {ratio:.2f}x "
                    f"(band ±{band:.2f})"
                )
            elif kind == "exact" and ratio < 1.0 / (1.0 + band):
                verdict.status = "drift"
                verdict.details.append(
                    f"observed MSE {observed:.6g} sits {1 / ratio:.2f}x "
                    f"below the exact oracle {float(oracle):.6g} — "
                    f"under-noised release? (band ±{band:.2f})"
                )
        else:
            verdict.details.append(
                "no oracle anchor for this cell (longitudinal only)"
            )

        # Longitudinal z-score: anomaly -> watch (never fatal alone).
        z = rolling_z([float(p["mean_mse"]) for p in points], window)
        if z is not None:
            verdict.z = z
            if abs(z) > z_thresh and verdict.status == "ok":
                verdict.status = "watch"
                verdict.details.append(
                    f"latest mean MSE departs the trailing window "
                    f"(z={z:.3g}) but stays inside the oracle band"
                )
        verdicts.append(verdict)
    return verdicts


def utility_verdicts(
    store: HistoryStore,
    window: int = 5,
    z_thresh: float = 4.0,
    band_z: float = 4.0,
    cusum_h: float = 5.0,
) -> List[DriftVerdict]:
    """One verdict per utility cell (scenario × publisher × ε × workload).

    Same contract as :func:`accuracy_verdicts`, applied to the v3
    per-workload utility table: the *only* fatal signal is an oracle
    band violation (the band's sample count is ``seeds ×
    eff_queries`` — long-range workloads carry fewer independent
    observations, so their bands are proportionally wider).  Rolling-z
    and a CUSUM over the *normalized* error trajectory
    (observed / oracle where anchored, raw MSE otherwise) surface
    longitudinal anomalies as ``watch``, never as failures.
    """
    verdicts: List[DriftVerdict] = []
    for family, scenario, publisher, epsilon, workload in \
            store.utility_cells():
        series = store.utility_series(
            family, scenario, publisher, epsilon, workload
        )
        cell = (
            f"{family}/{scenario} [{publisher}, eps={epsilon:g}, "
            f"{workload}]"
        )
        verdict = DriftVerdict(cell=cell, kind="utility", status="ok",
                               n_points=len(series))
        points = [p for p in series if p["mean_mse"] is not None]
        if not points:
            verdict.status = "no-data"
            verdict.details.append("no successful trials in any batch")
            verdicts.append(verdict)
            continue
        latest = points[-1]
        observed = float(latest["mean_mse"])
        verdict.observed = observed
        verdict.n_points = len(points)

        # Oracle anchoring: the confirmed-drift detector.
        oracle = latest["oracle_mse"]
        if oracle is not None and oracle > 0:
            kind = latest.get("oracle_kind") or "exact"
            band = oracle_band(
                int(latest["n_ok"] or 0), latest.get("eff_queries"),
                None, z=band_z,
            )
            ratio = observed / float(oracle)
            verdict.expected = float(oracle)
            verdict.ratio = ratio
            verdict.band = band
            if ratio > 1.0 + band:
                verdict.status = "drift"
                verdict.details.append(
                    f"observed {workload} MSE {observed:.6g} exceeds "
                    f"oracle {float(oracle):.6g} by {ratio:.2f}x "
                    f"(band ±{band:.2f})"
                )
            elif kind == "exact" and ratio < 1.0 / (1.0 + band):
                verdict.status = "drift"
                verdict.details.append(
                    f"observed {workload} MSE {observed:.6g} sits "
                    f"{1 / ratio:.2f}x below the exact oracle "
                    f"{float(oracle):.6g} — under-noised release? "
                    f"(band ±{band:.2f})"
                )
        else:
            verdict.details.append(
                "no oracle anchor for this cell (longitudinal only)"
            )

        # Longitudinal detectors on normalized error -> watch only.
        norm = [
            float(p["mean_mse"]) / float(p["oracle_mse"])
            if p["oracle_mse"] else float(p["mean_mse"])
            for p in points
        ]
        z = rolling_z(norm, window)
        if z is not None:
            verdict.z = z
            if abs(z) > z_thresh and verdict.status == "ok":
                verdict.status = "watch"
                verdict.details.append(
                    f"latest normalized error departs the trailing "
                    f"window (z={z:.3g}) but stays inside the oracle "
                    f"band"
                )
        if len(norm) >= 3:
            s = cusum_positive(norm)
            verdict.cusum = s
            if s > cusum_h and verdict.status == "ok":
                verdict.status = "watch"
                verdict.details.append(
                    f"normalized error CUSUM {s:.2f} > {cusum_h:g} — "
                    f"sustained upward creep without a confirmed band "
                    f"violation"
                )
        verdicts.append(verdict)
    return verdicts


def perf_verdicts(
    store: HistoryStore,
    slack: float = 0.5,
    h: float = 5.0,
    min_points: int = 3,
) -> List[DriftVerdict]:
    """One verdict per bench key (CUSUM on normalized seconds)."""
    verdicts: List[DriftVerdict] = []
    for key in store.bench_keys():
        series = store.bench_series(key)
        values = [float(p["normalized"]) for p in series]
        verdict = DriftVerdict(cell=key, kind="perf", status="ok",
                               n_points=len(values))
        if len(values) < min_points:
            verdict.status = "no-data"
            verdict.details.append(
                f"only {len(values)} trajectory point(s); need "
                f"{min_points} before the CUSUM is meaningful"
            )
            verdicts.append(verdict)
            continue
        reference = _median(sorted(values[:-1]))
        latest = values[-1]
        s = cusum_positive(values, slack=slack)
        ratio = latest / reference if reference > 0 else None
        verdict.observed = latest
        verdict.expected = reference
        verdict.ratio = ratio
        verdict.cusum = s
        if s > h:
            if ratio is not None and ratio > 1.0 + PERF_MIN_RATIO:
                verdict.status = "drift"
                verdict.details.append(
                    f"CUSUM {s:.2f} > {h:g} and latest normalized time "
                    f"{latest:.3f} is {ratio:.2f}x the reference "
                    f"{reference:.3f}"
                )
            else:
                verdict.status = "watch"
                verdict.details.append(
                    f"CUSUM {s:.2f} > {h:g} but the latest point has "
                    f"recovered to {latest:.3f} "
                    f"(reference {reference:.3f})"
                )
        verdicts.append(verdict)
    return verdicts


def detect_drift(
    store: HistoryStore,
    window: int = 5,
    z_thresh: float = 4.0,
    band_z: float = 4.0,
    cusum_h: float = 5.0,
) -> List[DriftVerdict]:
    """All verdicts: accuracy cells, utility cells, then bench keys."""
    out = accuracy_verdicts(
        store, window=window, z_thresh=z_thresh, band_z=band_z
    )
    out.extend(utility_verdicts(
        store, window=window, z_thresh=z_thresh, band_z=band_z,
        cusum_h=cusum_h,
    ))
    out.extend(perf_verdicts(store, h=cusum_h))
    return out


def has_confirmed_drift(verdicts: Sequence[DriftVerdict]) -> bool:
    """True when any verdict is a confirmed ``drift`` (CI fails then)."""
    return any(v.status == "drift" for v in verdicts)


def render_verdicts(verdicts: Sequence[DriftVerdict]) -> Dict[str, Any]:
    """Machine-readable verdict document (stable key order)."""
    counts: Dict[str, int] = {}
    for verdict in verdicts:
        counts[verdict.status] = counts.get(verdict.status, 0) + 1
    return {
        "schema": 1,
        "summary": {
            "total": len(verdicts),
            "by_status": {k: counts[k] for k in sorted(counts)},
            "confirmed_drift": has_confirmed_drift(verdicts),
        },
        "verdicts": [v.as_dict() for v in verdicts],
    }


def render_verdicts_text(verdicts: Sequence[DriftVerdict]) -> str:
    """JSON text of :func:`render_verdicts` (CLI ``--json`` output)."""
    return json.dumps(render_verdicts(verdicts), indent=2,
                      sort_keys=True) + "\n"
