"""Markdown run reports from checkpoint journals: ``repro report``.

``python -m repro report sweep.jsonl`` turns the append-only JSONL
journal a supervised sweep wrote (:mod:`repro.robust.journal`) into a
human-readable markdown document:

* **Overview** — cells, trial outcomes, aggregate wall-clock;
* **Per-publisher stage breakdown** — the span trees each worker
  serialized into ``meta["trace"]``, aggregated to ``calls / total /
  mean / share-of-trial`` per slash-joined stage path (this is the
  table that shows *where* NoiseFirst vs StructureFirst spend their
  compute: partition DP vs noise vs post-process);
* **Failure taxonomy** — quarantined :class:`FailedRecord` entries
  grouped by error class (see the taxonomy in ``docs/robustness.md``);
* **ε-ledger** — per-cell privacy spend composed through
  :mod:`repro.accounting` (sequential composition across a cell's
  successful trials, since every trial re-touches the same dataset).

The renderer is deterministic for a given journal (no timestamps, keys
sorted), so reports are golden-testable.  Heavy imports
(journal/runner/accounting) are deferred into the functions to keep
``repro.obs`` an import-light leaf package.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.obs.trace import stage_totals

__all__ = ["render_report", "write_report"]


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """GitHub-flavored markdown pipe table."""
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    sep = "|" + "|".join(" --- " for _ in headers) + "|"
    body = [
        "| " + " | ".join(str(cell) for cell in row) + " |" for row in rows
    ]
    return "\n".join([head, sep, *body])


def _fmt_seconds(value: float) -> str:
    if value >= 100:
        return f"{value:.1f}"
    return f"{value:.4g}"


# ---------------------------------------------------------------------------
# Section builders
# ---------------------------------------------------------------------------

def _overview(records: List[Any], failures: List[Any],
              n_entries: int, n_specs: int) -> List[str]:
    publish_s = sum(r.seconds for r in records)
    eval_s = sum(
        float(r.meta.get("t_eval_seconds", r.meta.get("eval_seconds", 0.0)))
        for r in records
    )
    publishers = sorted({r.publisher for r in records}
                        | {f.publisher for f in failures})
    lines = [
        "## Overview",
        "",
        f"- journal entries: {n_entries} "
        f"({len(records) + len(failures)} unique cells; later entries win)",
        f"- specs: {n_specs}",
        f"- publishers: {', '.join(publishers) if publishers else '(none)'}",
        f"- trials: {len(records)} ok, {len(failures)} failed",
        f"- publish wall-clock: {_fmt_seconds(publish_s)}s total; "
        f"workload evaluation: {_fmt_seconds(eval_s)}s total",
    ]
    return lines


def _stage_breakdown(records: List[Any]) -> List[str]:
    """Per-publisher stage table from the journaled span trees."""
    lines = ["## Per-publisher stage breakdown", ""]
    by_publisher: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        tree = record.meta.get("trace")
        if isinstance(tree, dict):
            by_publisher.setdefault(record.publisher, []).append(tree)

    if not by_publisher:
        lines.append(
            "_No trace data in this journal (run with `--trace` to record "
            "per-stage span trees)._  Falling back to the coarse "
            "publish/evaluate split:"
        )
        lines.append("")
        coarse: Dict[str, Tuple[int, float, float]] = {}
        for r in records:
            n, pub, ev = coarse.get(r.publisher, (0, 0.0, 0.0))
            eval_s = float(
                r.meta.get("t_eval_seconds", r.meta.get("eval_seconds", 0.0))
            )
            coarse[r.publisher] = (n + 1, pub + r.seconds, ev + eval_s)
        rows = [
            (
                name, n, _fmt_seconds(pub), _fmt_seconds(ev),
                _fmt_seconds(pub / n), _fmt_seconds(ev / n),
            )
            for name, (n, pub, ev) in sorted(coarse.items())
        ]
        lines.append(_md_table(
            ["publisher", "trials", "publish s", "eval s",
             "mean publish s", "mean eval s"],
            rows,
        ))
        return lines

    rows: List[Tuple[str, ...]] = []
    for publisher in sorted(by_publisher):
        trees = by_publisher[publisher]
        merged: Dict[str, Tuple[int, float]] = {}
        root_total = 0.0
        for tree in trees:
            root_total += float(tree.get("seconds", 0.0))
            for path, (calls, seconds) in stage_totals(tree).items():
                c0, s0 = merged.get(path, (0, 0.0))
                merged[path] = (c0 + calls, s0 + seconds)
        for path in sorted(merged):
            calls, seconds = merged[path]
            depth = path.count("/")
            label = ("&nbsp;&nbsp;" * depth) + path.rsplit("/", 1)[-1]
            share = (seconds / root_total * 100.0) if root_total > 0 else 0.0
            rows.append((
                publisher if depth == 0 else "",
                label,
                str(calls),
                _fmt_seconds(seconds),
                _fmt_seconds(seconds / calls),
                f"{share:.1f}%",
            ))
    lines.append(_md_table(
        ["publisher", "stage", "calls", "total s", "mean s",
         "share of trial"],
        rows,
    ))
    lines.append("")
    lines.append(
        "_Stage paths are slash-joined span names (scheme: "
        "`docs/observability.md`); share is relative to the trial root "
        "span._"
    )
    return lines


def _failure_taxonomy(failures: List[Any]) -> List[str]:
    lines = ["## Failure taxonomy", ""]
    if not failures:
        lines.append("No quarantined trials — every cell completed.")
        return lines
    by_error: Dict[str, List[Any]] = {}
    for failed in failures:
        by_error.setdefault(failed.error, []).append(failed)
    rows = []
    for error in sorted(by_error):
        group = by_error[error]
        publishers = ", ".join(sorted({f.publisher for f in group}))
        attempts = sum(f.attempts for f in group)
        example = group[0].cause.replace("|", "\\|")[:120] or "(no cause)"
        rows.append((error, len(group), publishers, attempts, example))
    lines.append(_md_table(
        ["error", "count", "publishers", "total attempts", "example cause"],
        rows,
    ))
    lines.append("")
    lines.append(
        "_Error classes follow the failure taxonomy in "
        "`docs/robustness.md`; quarantined cells can be re-attempted with "
        "`python -m repro run --resume --retry-failed`._"
    )
    return lines


def _epsilon_ledger(records: List[Any]) -> List[str]:
    """Per-cell ε spend, composed through ``repro.accounting``."""
    from repro.accounting.budget import PrivacyBudget
    from repro.accounting.ledger import Ledger, SpendRecord

    lines = ["## ε-ledger", ""]
    if not records:
        lines.append("No successful trials; nothing was spent.")
        return lines
    cells: Dict[Tuple[str, str, float], int] = {}
    for r in records:
        eps = float(r.meta.get("spec_epsilon", r.epsilon))
        key = (r.spec_name, r.publisher, eps)
        cells[key] = cells.get(key, 0) + 1
    rows = []
    grand = Ledger()
    for (spec_name, publisher, eps) in sorted(cells):
        n = cells[(spec_name, publisher, eps)]
        ledger = Ledger()
        for _ in range(n):
            spend = SpendRecord(
                budget=PrivacyBudget(eps),
                purpose=f"{spec_name} trial",
            )
            ledger.append(spend)
            grand.append(spend)
        rows.append((
            spec_name, publisher, f"{eps:g}", n,
            f"{ledger.total().epsilon:g}",
        ))
    lines.append(_md_table(
        ["spec", "publisher", "ε per trial", "trials ok",
         "composed ε (sequential)"],
        rows,
    ))
    lines.append("")
    lines.append(
        f"Grand total across every journaled trial (sequential "
        f"composition): **ε = {grand.total().epsilon:g}**.  Each trial "
        "re-queries the same dataset, so spends compose sequentially; "
        "see `docs/privacy.md` for the composition rules."
    )
    return lines


def _history_deltas(records: List[Any], history: Any) -> List[str]:
    """"vs. previous runs of this spec": accuracy + wall-clock deltas.

    Compares each cell's mean unit MSE and publish wall-clock against
    the mean of *prior* observations of the same
    ``(spec, publisher, ε)`` cell in the run-history store
    (:mod:`repro.obs.history`).  The journal's own rows are excluded by
    content hash, so ingesting this very journal first does not wash
    the deltas out.  Output is deterministic for a given store.
    """
    from repro.obs.history import HistoryStore, trial_content_sha

    lines = ["## History deltas", ""]
    owned = not isinstance(history, HistoryStore)
    store = HistoryStore(history) if owned else history
    try:
        cells: Dict[Tuple[str, str, float], List[Any]] = {}
        for r in records:
            key = (r.spec_name, r.publisher,
                   float(r.meta.get("spec_epsilon", r.epsilon)))
            cells.setdefault(key, []).append(r)
        rows = []
        for key in sorted(cells):
            spec_name, publisher, eps = key
            group = cells[key]
            shas = [trial_content_sha(r) for r in group]
            mse = sum(r.metric("unit", "mse") for r in group
                      if "unit" in r.workload_errors)
            n_mse = sum(1 for r in group if "unit" in r.workload_errors)
            mean_mse = mse / n_mse if n_mse else None
            mean_secs = sum(r.seconds for r in group) / len(group)
            prior = store.prior_cell_stats(
                spec_name, publisher, eps, exclude_shas=shas
            )
            if prior is None:
                rows.append((spec_name, f"{eps:g}",
                             _fmt_metric(mean_mse), "—",
                             _fmt_seconds(mean_secs), "—", 0))
                continue
            d_mse = _delta(mean_mse, prior.get("mean_mse"))
            d_secs = _delta(mean_secs, prior.get("mean_seconds"))
            rows.append((
                spec_name, f"{eps:g}", _fmt_metric(mean_mse), d_mse,
                _fmt_seconds(mean_secs), d_secs, prior["n_trials"],
            ))
        if not rows:
            lines.append("No successful trials to compare.")
            return lines
        lines.append(_md_table(
            ["cell", "ε", "mean unit MSE", "Δ vs history",
             "mean publish s", "Δ vs history", "prior trials"],
            rows,
        ))
        lines.append("")
        lines.append(
            "_Deltas compare this journal against the mean of prior "
            "observations of the same cell in the run-history store "
            "(`python -m repro history`); the journal's own rows are "
            "excluded by content hash._"
        )
    finally:
        if owned:
            store.close()
    return lines


def _fmt_metric(value: Any) -> str:
    if value is None:
        return "—"
    return f"{float(value):.6g}"


def _delta(current: Any, prior: Any) -> str:
    if current is None or prior is None or prior == 0:
        return "—"
    return f"{(float(current) / float(prior) - 1.0) * 100.0:+.1f}%"


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

def render_report(
    journal: Union[str, Path, Any],
    history: Union[str, Path, Any, None] = None,
) -> str:
    """Render the markdown run report for ``journal``.

    ``journal`` is a path or a
    :class:`repro.robust.journal.CheckpointJournal`.  Later journal
    entries win per cell (same rule ``--resume`` uses), so a journal
    that healed a quarantine on a second pass reports the healed state.
    ``history`` (a path or :class:`repro.obs.history.HistoryStore`)
    appends the "vs. previous runs of this spec" delta section.
    """
    from repro.robust.journal import CheckpointJournal, record_from_payload
    from repro.robust.records import is_failed

    if not isinstance(journal, CheckpointJournal):
        journal = CheckpointJournal(journal)

    entries = journal.entries()
    latest: Dict[Tuple[str, str, str, int, float], Any] = {}
    fingerprints = set()
    for entry in entries:
        key = entry["key"]
        fingerprints.add(entry.get("fingerprint", ""))
        cell = (
            entry.get("fingerprint", ""),
            key["spec_name"],
            key["publisher"],
            int(key["seed"]),
            float(key["epsilon"]),
        )
        latest[cell] = record_from_payload(entry["payload"])

    records = [r for r in latest.values() if not is_failed(r)]
    failures = [r for r in latest.values() if is_failed(r)]
    records.sort(key=lambda r: (r.spec_name, r.publisher, r.seed))
    failures.sort(key=lambda r: (r.spec_name, r.publisher, r.seed))
    n_specs = len({(r.spec_name) for r in latest.values()})

    sections: List[str] = [f"# Run report — `{journal.path.name}`", ""]
    if not entries:
        sections.append(
            "_Empty journal: no completed trials were recorded._"
        )
        return "\n".join(sections) + "\n"
    sections.extend(_overview(records, failures, len(entries), n_specs))
    sections.append("")
    sections.extend(_stage_breakdown(records))
    sections.append("")
    sections.extend(_failure_taxonomy(failures))
    sections.append("")
    sections.extend(_epsilon_ledger(records))
    if history is not None:
        sections.append("")
        sections.extend(_history_deltas(records, history))
    return "\n".join(sections) + "\n"


def write_report(journal: Union[str, Path, Any],
                 out: Union[str, Path],
                 history: Union[str, Path, Any, None] = None) -> Path:
    """Render and atomically write the report; returns the path."""
    from repro.robust.atomicio import atomic_write_text

    out = Path(out)
    atomic_write_text(out, render_report(journal, history=history))
    return out
