"""Live sweep monitoring: executor observers, progress, run stats.

The supervised executor (:mod:`repro.robust.executor`) emits *events* —
wave dispatched, seed completed, strike, pool respawn, journal append —
to an observer object.  This module defines the observer protocol and
three implementations:

:class:`RunStats`
    Plain counters for the end-of-run summary line (retries by kind,
    quarantines, respawns, journal appends, fault-free trial count).

:class:`MetricsObserver`
    Bridges events and completed records into a
    :class:`repro.obs.metrics.MetricsRegistry` — executor counters plus
    per-stage latency histograms harvested from each record's
    ``meta["trace"]`` span tree.

:class:`ProgressMonitor`
    The human/machine progress reporter behind ``--progress``:

    * ``tty`` — one continuously rewritten status line
      (``\\r``-terminated) with completed/failed/retried counts, an ETA
      extrapolated from the completed-trial rate, and the current
      stragglers (in-flight seeds older than ``straggler_after``);
    * ``jsonl`` — one self-contained JSON object per event on the
      stream, for dashboards and tests.

    Progress goes to *stderr* by default so result tables on stdout
    stay machine-parseable.

Observers must never break a run: the executor wraps every callback and
downgrades observer exceptions to ``RuntimeWarning``.  This module
deliberately imports nothing from the rest of ``repro`` (records are
duck-typed via their ``failed`` attribute), so ``repro.robust`` can
depend on it without cycles.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import stage_totals

__all__ = [
    "ENV_STRAGGLER_FACTOR",
    "ExecutorObserver",
    "MetricsObserver",
    "MultiObserver",
    "ProgressMonitor",
    "RunStats",
]

#: Environment default for :class:`ProgressMonitor`'s adaptive
#: straggler factor (the ``--straggler-factor`` CLI flag wins).
ENV_STRAGGLER_FACTOR = "REPRO_STRAGGLER_FACTOR"


def _env_straggler_factor() -> Optional[float]:
    raw = os.environ.get(ENV_STRAGGLER_FACTOR)
    if not raw:
        return None
    try:
        factor = float(raw)
    except ValueError:
        return None
    return factor if factor > 0 else None


def _is_failed(record: Any) -> bool:
    """Duck-typed FailedRecord check (avoids importing repro.robust)."""
    return bool(getattr(record, "failed", False))


class ExecutorObserver:
    """Executor event sink; subclass and override what you need.

    Every hook receives the spec name so one observer can follow a
    multi-spec sweep.  The base class is a full no-op (and doubles as
    the protocol documentation).
    """

    def on_run_start(self, spec_name: str, total_seeds: int,
                     resumed: int) -> None:
        """A spec's supervised run begins; ``resumed`` seeds came from
        the journal and will not be re-dispatched."""

    def on_dispatch(self, spec_name: str, seeds: Sequence[int]) -> None:
        """A wave of seeds was submitted to the pool (or, serially, one
        seed is about to run)."""

    def on_seed_done(self, spec_name: str, seed: int, record: Any) -> None:
        """A seed reached a terminal state: a ``RunRecord`` on success
        or a ``FailedRecord`` quarantine."""

    def on_strike(self, spec_name: str, seed: int, kind: str,
                  attempt: int, will_retry: bool) -> None:
        """One failed attempt (``kind`` in timeout/crash/raise)."""

    def on_pool_respawn(self, spec_name: str) -> None:
        """The process pool broke (or hung) and was recycled."""

    def on_journal_append(self, spec_name: str) -> None:
        """A completed trial was durably journaled."""

    def on_run_end(self, spec_name: str) -> None:
        """The spec's run finished (however it went)."""


class MultiObserver(ExecutorObserver):
    """Fan one event stream out to several observers, in order."""

    def __init__(self, observers: Sequence[ExecutorObserver]) -> None:
        self.observers = list(observers)

    def on_run_start(self, spec_name, total_seeds, resumed):
        for obs in self.observers:
            obs.on_run_start(spec_name, total_seeds, resumed)

    def on_dispatch(self, spec_name, seeds):
        for obs in self.observers:
            obs.on_dispatch(spec_name, seeds)

    def on_seed_done(self, spec_name, seed, record):
        for obs in self.observers:
            obs.on_seed_done(spec_name, seed, record)

    def on_strike(self, spec_name, seed, kind, attempt, will_retry):
        for obs in self.observers:
            obs.on_strike(spec_name, seed, kind, attempt, will_retry)

    def on_pool_respawn(self, spec_name):
        for obs in self.observers:
            obs.on_pool_respawn(spec_name)

    def on_journal_append(self, spec_name):
        for obs in self.observers:
            obs.on_journal_append(spec_name)

    def on_run_end(self, spec_name):
        for obs in self.observers:
            obs.on_run_end(spec_name)


# ---------------------------------------------------------------------------
# RunStats: the summary-line counters
# ---------------------------------------------------------------------------

class RunStats(ExecutorObserver):
    """Totals for the end-of-run summary line."""

    def __init__(self) -> None:
        self.ok = 0
        self.failed = 0
        self.retries: Dict[str, int] = {}
        self.quarantined = 0
        self.respawns = 0
        self.journal_appends = 0
        self.specs = 0

    @property
    def retries_total(self) -> int:
        return sum(self.retries.values())

    def on_run_start(self, spec_name, total_seeds, resumed):
        self.specs += 1

    def on_seed_done(self, spec_name, seed, record):
        if _is_failed(record):
            self.failed += 1
            self.quarantined += 1
        else:
            self.ok += 1

    def on_strike(self, spec_name, seed, kind, attempt, will_retry):
        if will_retry:
            self.retries[kind] = self.retries.get(kind, 0) + 1

    def on_pool_respawn(self, spec_name):
        self.respawns += 1

    def on_journal_append(self, spec_name):
        self.journal_appends += 1

    def summary_line(self, fault_hits: Optional[int] = None) -> str:
        """One line: trials, retries, quarantines, respawns, faults."""
        parts = [f"{self.ok} ok", f"{self.failed} failed"]
        if self.retries_total:
            by_kind = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.retries.items())
            )
            parts.append(f"retries: {self.retries_total} ({by_kind})")
        else:
            parts.append("retries: 0")
        parts.append(f"quarantined: {self.quarantined}")
        if self.respawns:
            parts.append(f"pool respawns: {self.respawns}")
        if self.journal_appends:
            parts.append(f"journal appends: {self.journal_appends}")
        if fault_hits is not None:
            parts.append(f"fault hits: {fault_hits}")
        return "summary: " + " | ".join(parts)


# ---------------------------------------------------------------------------
# MetricsObserver: events + record traces -> registry
# ---------------------------------------------------------------------------

class MetricsObserver(ExecutorObserver):
    """Feed executor events and per-record traces into a registry.

    Metric names and label schemas are part of the documented catalog
    (``docs/observability.md``); change them there first.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else get_registry()
        r = self.registry
        self._trials = r.counter(
            "repro_trials_total", "Terminal trial outcomes.", ("outcome",)
        )
        self._retries = r.counter(
            "repro_retries_total",
            "Failed attempts that earned a retry, by failure kind.",
            ("kind",),
        )
        self._quarantines = r.counter(
            "repro_quarantines_total",
            "Seeds given up and quarantined into FailedRecords.",
        )
        self._respawns = r.counter(
            "repro_pool_respawns_total",
            "Process-pool recycles after crashes or hangs.",
        )
        self._appends = r.counter(
            "repro_journal_appends_total",
            "Durable checkpoint-journal appends.",
        )
        self._specs = r.counter(
            "repro_specs_total", "Supervised spec runs started."
        )
        self._trial_seconds = r.histogram(
            "repro_trial_seconds",
            "Publish wall-clock per trial (RunRecord.seconds).",
            ("publisher",),
        )
        self._eval_seconds = r.histogram(
            "repro_eval_seconds",
            "Workload-evaluation wall-clock per trial.",
            ("publisher",),
        )
        self._stage_seconds = r.histogram(
            "repro_stage_seconds",
            "Per-stage latency from trace span trees (slash-joined "
            "span paths).",
            ("publisher", "stage"),
        )
        self._peak_bytes = r.gauge(
            "repro_trial_peak_bytes_max",
            "Largest tracemalloc peak observed across trials.",
            ("publisher",),
        )

    def on_run_start(self, spec_name, total_seeds, resumed):
        self._specs.inc()

    def on_seed_done(self, spec_name, seed, record):
        if _is_failed(record):
            self._trials.labels(outcome="failed").inc()
            return
        self._trials.labels(outcome="ok").inc()
        publisher = getattr(record, "publisher", "?")
        seconds = getattr(record, "seconds", None)
        if seconds is not None:
            self._trial_seconds.labels(publisher=publisher).observe(seconds)
        meta = getattr(record, "meta", {}) or {}
        eval_seconds = meta.get("t_eval_seconds", meta.get("eval_seconds"))
        if eval_seconds is not None:
            self._eval_seconds.labels(publisher=publisher).observe(
                eval_seconds
            )
        peak = meta.get("t_peak_bytes")
        if peak is not None:
            self._peak_bytes.labels(publisher=publisher).set_max(peak)
        tree = meta.get("trace")
        if isinstance(tree, dict):
            for path, (_calls, total) in stage_totals(tree).items():
                self._stage_seconds.labels(
                    publisher=publisher, stage=path
                ).observe(total)

    def on_strike(self, spec_name, seed, kind, attempt, will_retry):
        if will_retry:
            self._retries.labels(kind=kind).inc()
        else:
            self._quarantines.inc()

    def on_pool_respawn(self, spec_name):
        self._respawns.inc()

    def on_journal_append(self, spec_name):
        self._appends.inc()


# ---------------------------------------------------------------------------
# ProgressMonitor: the --progress reporter
# ---------------------------------------------------------------------------

class ProgressMonitor(ExecutorObserver):
    """TTY single-line / JSONL machine-mode progress reporter.

    Straggler detection is threshold-based: a seed in flight longer
    than :meth:`straggler_threshold` seconds is reported.  The
    threshold is ``straggler_after`` (a fixed floor) until trials
    complete; with ``straggler_factor`` set (``--straggler-factor`` /
    ``REPRO_STRAGGLER_FACTOR``) it becomes *adaptive* — ``factor ×``
    the mean completed-trial duration, never below the floor — so slow
    publishers don't spam alerts and fast sweeps still catch hangs.
    Every alert that fires is recorded in :attr:`alerts` (one entry per
    ``(spec, seed)``, age updated to the worst observation) so
    ``run --history`` can persist them into the history store.
    """

    MODES = ("tty", "jsonl")

    def __init__(
        self,
        mode: str = "tty",
        stream: Optional[TextIO] = None,
        total_trials: Optional[int] = None,
        straggler_after: float = 10.0,
        straggler_factor: Optional[float] = None,
        clock=time.monotonic,
        width: int = 100,
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(
                f"mode must be one of {self.MODES}, got {mode!r}"
            )
        if straggler_factor is None:
            straggler_factor = _env_straggler_factor()
        if straggler_factor is not None and straggler_factor <= 0:
            raise ValueError(
                f"straggler_factor must be > 0, got {straggler_factor}"
            )
        self.mode = mode
        self.stream = stream if stream is not None else sys.stderr
        self.total = total_trials
        self.straggler_after = straggler_after
        self.straggler_factor = straggler_factor
        self.clock = clock
        self.width = width
        self.done = 0
        self.failed = 0
        self.retries = 0
        self.spec_name = ""
        self.alerts: List[Dict[str, Any]] = []
        self._alerted: set = set()
        self._durations_sum = 0.0
        self._durations_n = 0
        self._start: Optional[float] = None
        self._in_flight: Dict[int, float] = {}
        self._line_open = False

    # -- derived state -------------------------------------------------
    def eta_seconds(self) -> Optional[float]:
        """Remaining-work estimate from the completed-trial rate."""
        if self.total is None or self._start is None or self.done == 0:
            return None
        remaining = max(self.total - self.done, 0)
        rate = (self.clock() - self._start) / self.done
        return remaining * rate

    def straggler_threshold(self) -> float:
        """Current straggler age threshold in seconds (see class docs)."""
        if self.straggler_factor is None or self._durations_n == 0:
            return self.straggler_after
        mean = self._durations_sum / self._durations_n
        return max(self.straggler_after, self.straggler_factor * mean)

    def stragglers(self) -> List[Dict[str, Any]]:
        """In-flight seeds older than :meth:`straggler_threshold`."""
        now = self.clock()
        threshold = self.straggler_threshold()
        out = [
            {"seed": seed, "age_seconds": round(now - t0, 3)}
            for seed, t0 in sorted(self._in_flight.items())
            if now - t0 >= threshold
        ]
        return out

    def _note_stragglers(
        self, stragglers: Sequence[Dict[str, Any]]
    ) -> None:
        """Record fired straggler alerts (once per spec/seed, worst age)."""
        threshold = self.straggler_threshold()
        for item in stragglers:
            key: Tuple[str, int] = (self.spec_name, int(item["seed"]))
            if key in self._alerted:
                for alert in self.alerts:
                    if (alert["spec"], alert["seed"]) == key:
                        alert["age_seconds"] = max(
                            alert["age_seconds"], item["age_seconds"]
                        )
                continue
            self._alerted.add(key)
            self.alerts.append({
                "kind": "straggler",
                "spec": self.spec_name,
                "seed": int(item["seed"]),
                "age_seconds": item["age_seconds"],
                "threshold": round(threshold, 3),
            })

    # -- events --------------------------------------------------------
    def on_run_start(self, spec_name, total_seeds, resumed):
        if self._start is None:
            self._start = self.clock()
        self.spec_name = spec_name
        self._in_flight.clear()
        self._emit("run_start", total_seeds=total_seeds, resumed=resumed)

    def on_dispatch(self, spec_name, seeds):
        now = self.clock()
        for seed in seeds:
            self._in_flight[int(seed)] = now
        self._emit("dispatch", seeds=[int(s) for s in seeds])

    def on_seed_done(self, spec_name, seed, record):
        started = self._in_flight.pop(int(seed), None)
        if started is not None:
            self._durations_sum += max(self.clock() - started, 0.0)
            self._durations_n += 1
        self.done += 1
        if _is_failed(record):
            self.failed += 1
        self._emit("seed_done", seed=int(seed),
                   ok=not _is_failed(record))

    def on_strike(self, spec_name, seed, kind, attempt, will_retry):
        self._in_flight.pop(int(seed), None)
        if will_retry:
            self.retries += 1
        self._emit("strike", seed=int(seed), kind=kind, attempt=attempt,
                   will_retry=will_retry)

    def on_pool_respawn(self, spec_name):
        self._emit("pool_respawn")

    def on_run_end(self, spec_name):
        self._emit("run_end")

    def close(self) -> None:
        """Finish the TTY line (call once after the sweep)."""
        if self.mode == "tty" and self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False

    # -- rendering -----------------------------------------------------
    def _snapshot(self) -> Dict[str, Any]:
        snap: Dict[str, Any] = {
            "spec": self.spec_name,
            "done": self.done,
            "failed": self.failed,
            "retries": self.retries,
        }
        if self.total is not None:
            snap["total"] = self.total
        eta = self.eta_seconds()
        if eta is not None:
            snap["eta_seconds"] = round(eta, 3)
        stragglers = self.stragglers()
        if stragglers:
            snap["stragglers"] = stragglers
            self._note_stragglers(stragglers)
        return snap

    def _emit(self, event: str, **fields: Any) -> None:
        if self.mode == "jsonl":
            payload = {"event": event, **fields, **self._snapshot()}
            self.stream.write(json.dumps(payload) + "\n")
            self.stream.flush()
            return
        self._render_tty()

    def _render_tty(self) -> None:
        total = "?" if self.total is None else str(self.total)
        parts = [
            f"[{self.spec_name}]" if self.spec_name else "[sweep]",
            f"{self.done}/{total} done",
            f"{self.failed} failed",
            f"{self.retries} retried",
        ]
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"ETA {eta:.0f}s")
        stragglers = self.stragglers()
        if stragglers:
            self._note_stragglers(stragglers)
            worst = stragglers[-1]
            parts.append(
                f"straggler seed {worst['seed']} "
                f"({worst['age_seconds']:.0f}s)"
            )
        line = " | ".join(parts)
        if len(line) > self.width:
            line = line[: self.width - 1] + "…"
        self.stream.write("\r" + line.ljust(self.width))
        self.stream.flush()
        self._line_open = True
