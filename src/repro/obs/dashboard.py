"""Trend dashboards from the run-history store: ``repro history dash``.

Renders the store's longitudinal trajectories as a deterministic
markdown (or HTML) document:

* **Accuracy trends** — one row per experiment cell with a unicode
  sparkline of the per-batch mean unit MSE, the latest observation,
  the oracle prediction, and the observed/oracle ratio;
* **Utility trends** — per scenario family (schema v3): unit-error
  trajectories with oracle-band verdict badges, plus
  NoiseFirst ↔ StructureFirst crossover-length badges per scenario;
* **Worst offenders** — cells ranked by how far their latest
  observation sits from the oracle anchor, and bench keys ranked by
  their latest-vs-reference slowdown;
* **Performance trends** — per bench key sparkline of
  calibration-normalized seconds with the latest delta;
* **Per-commit deltas** — mean accuracy/wall-clock movement between
  consecutive commits in the store;
* **Drift verdicts** — the current :mod:`repro.obs.drift` verdict per
  cell, plus straggler-alert and ingestion-batch summaries.

Determinism: the renderer never prints timestamps, batch ids are
monotonic by construction, floats are formatted with fixed precision,
and every table is sorted — the same store contents always render the
same bytes (snapshot-tested in ``tests/obs/test_dashboard.py``).
"""

from __future__ import annotations

import html as _html
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.drift import DriftVerdict, detect_drift
from repro.obs.history import HistoryStore

__all__ = [
    "render_dashboard",
    "sparkline",
    "write_dashboard",
]

#: Eight-level block characters; a constant series renders mid-level.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"

_STATUS_BADGE = {
    "ok": "✓ ok",
    "watch": "⚠ watch",
    "drift": "✗ drift",
    "no-data": "· no-data",
}


def sparkline(values: Sequence[float], width: int = 16) -> str:
    """Unicode sparkline of a numeric series (empty series -> ``""``).

    Series longer than ``width`` keep their most recent points; a
    constant series (single distinct value — zero range) renders flat
    at the middle level so "no movement" is visually distinct from
    "low".  ``None``/NaN/±inf entries are dropped rather than crashing
    the render; an all-degenerate series returns ``""``.
    """
    import math

    vals = [
        float(v) for v in values
        if v is not None and math.isfinite(float(v))
    ][-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _SPARK_LEVELS[3] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1) + 0.5)
        idx = min(max(idx, 0), len(_SPARK_LEVELS) - 1)
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def _fmt(value: Optional[float], digits: int = 4) -> str:
    if value is None:
        return "—"
    return f"{float(value):.{digits}g}"


def _md_table(headers: Sequence[str],
              rows: Sequence[Sequence[Any]]) -> List[str]:
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    sep = "|" + "|".join(" --- " for _ in headers) + "|"
    body = ["| " + " | ".join(str(c) for c in row) + " |" for row in rows]
    return [head, sep, *body]


def _short_commit(sha: str) -> str:
    return sha[:10] if len(sha) > 10 else sha


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------

def _accuracy_section(store: HistoryStore) -> List[str]:
    lines = ["## Accuracy trends", ""]
    cells = store.trial_cells()
    if not cells:
        lines.append("_No trial history ingested yet._")
        return lines
    rows = []
    for spec_name, publisher, epsilon in cells:
        series = store.trial_series(spec_name, publisher, epsilon)
        mses = [p["mean_mse"] for p in series if p["mean_mse"] is not None]
        latest = series[-1]
        oracle = latest["oracle_mse"]
        ratio = None
        if oracle and latest["mean_mse"] is not None and oracle > 0:
            ratio = float(latest["mean_mse"]) / float(oracle)
        rows.append((
            spec_name,
            f"{epsilon:g}",
            len(series),
            sparkline(mses) or "—",
            _fmt(latest["mean_mse"]),
            _fmt(oracle),
            _fmt(ratio, digits=3),
            int(latest["n_ok"] or 0),
            int(latest["n_failed"] or 0),
        ))
    lines.extend(_md_table(
        ["cell", "ε", "batches", "mean unit MSE trend", "latest",
         "oracle", "obs/oracle", "ok", "failed"],
        rows,
    ))
    lines.append("")
    lines.append(
        "_Sparklines plot per-batch mean unit MSE, oldest → newest; "
        "`oracle` is the closed-form expected MSE conditioned on the "
        "realized structure (`repro.verify.oracles`)._"
    )
    return lines


def _crossover_badges(store: HistoryStore, family: str) -> List[tuple]:
    """NoiseFirst-vs-StructureFirst crossover rows for one family.

    The paper's headline effect: StructureFirst loses on point queries
    but wins once ranges are long enough.  For every (scenario, ε) with
    both publishers present, compare their latest mean MSE at each
    fixed range length (``unit`` counts as length 1) and report the
    smallest length where StructureFirst is ahead.
    """
    by_cell: Dict[tuple, Dict[int, Dict[str, float]]] = {}
    for fam, scen, pub, eps, wl in store.utility_cells(family):
        if pub not in ("noisefirst", "structurefirst"):
            continue
        if wl == "unit":
            length = 1
        elif wl.startswith("len-"):
            try:
                length = int(wl[4:])
            except ValueError:
                continue
        else:
            continue
        series = store.utility_series(fam, scen, pub, eps, wl)
        points = [p for p in series if p["mean_mse"] is not None]
        if not points:
            continue
        by_cell.setdefault((scen, eps), {}) \
            .setdefault(length, {})[pub] = float(points[-1]["mean_mse"])
    rows = []
    for (scen, eps), lengths in sorted(by_cell.items()):
        pairs = sorted(
            (l, d) for l, d in lengths.items()
            if "noisefirst" in d and "structurefirst" in d
        )
        if not pairs:
            continue
        crossover = next(
            (l for l, d in pairs
             if d["structurefirst"] < d["noisefirst"]),
            None,
        )
        if crossover is None:
            badge = f"NoiseFirst ahead through len {pairs[-1][0]}"
        elif crossover == pairs[0][0]:
            badge = "StructureFirst ahead at every length"
        else:
            badge = f"crossover at len {crossover}"
        rows.append((
            scen,
            f"{eps:g}",
            ", ".join(str(l) for l, _ in pairs),
            "—" if crossover is None else str(crossover),
            badge,
        ))
    return rows


def _utility_section(store: HistoryStore,
                     verdicts: Sequence[DriftVerdict]) -> List[str]:
    """Per-family utility trends + crossover badges (v3 stores).

    Omitted entirely until utility rows are ingested, so pre-v3
    dashboards render byte-identically.
    """
    families = store.utility_families()
    if not families:
        return []
    status_by_cell = {
        v.cell: v.status for v in verdicts if v.kind == "utility"
    }
    lines = ["## Utility trends", ""]
    for family in families:
        lines.append(f"### {family}")
        lines.append("")
        rows = []
        for fam, scen, pub, eps, wl in store.utility_cells(family):
            if wl != "unit":
                continue
            series = store.utility_series(fam, scen, pub, eps, wl)
            mses = [p["mean_mse"] for p in series
                    if p["mean_mse"] is not None]
            latest = series[-1]
            oracle = latest["oracle_mse"]
            ratio = None
            if oracle and latest["mean_mse"] is not None and oracle > 0:
                ratio = float(latest["mean_mse"]) / float(oracle)
            cell = f"{fam}/{scen} [{pub}, eps={eps:g}, {wl}]"
            status = status_by_cell.get(cell, "no-data")
            rows.append((
                scen, pub, f"{eps:g}", len(series),
                sparkline(mses) or "—",
                _fmt(latest["mean_mse"]), _fmt(oracle),
                _fmt(ratio, digits=3),
                _STATUS_BADGE.get(status, status),
            ))
        if rows:
            lines.extend(_md_table(
                ["scenario", "publisher", "ε", "batches",
                 "unit MSE trend", "latest", "oracle", "obs/oracle",
                 "status"],
                rows,
            ))
            lines.append("")
        badges = _crossover_badges(store, family)
        if badges:
            lines.append(
                "NoiseFirst ↔ StructureFirst crossover by range length:"
            )
            lines.append("")
            lines.extend(_md_table(
                ["scenario", "ε", "lengths compared", "crossover",
                 "badge"],
                badges,
            ))
            lines.append("")
    lines.append(
        "_One row per unit-workload utility cell (schema v3); `status` "
        "is the oracle-band utility verdict — range workloads are "
        "gated too but summarized by the crossover badges, which mark "
        "the query length where StructureFirst first beats NoiseFirst "
        "(the paper's headline effect)._"
    )
    return lines


def _worst_offenders(store: HistoryStore,
                     verdicts: Sequence[DriftVerdict]) -> List[str]:
    lines = ["## Worst offenders", ""]
    acc = [
        v for v in verdicts
        if v.kind == "accuracy" and v.ratio is not None
    ]
    acc.sort(key=lambda v: (-abs(_log_ratio(v.ratio)), v.cell))
    perf = [
        v for v in verdicts
        if v.kind == "perf" and v.ratio is not None
    ]
    perf.sort(key=lambda v: (-(v.ratio or 0.0), v.cell))
    if not acc and not perf:
        lines.append("_Nothing ranked yet (no anchored trajectories)._")
        return lines
    if acc:
        lines.append("### Accuracy (distance from oracle)")
        lines.append("")
        lines.extend(_md_table(
            ["cell", "obs/oracle", "band", "status"],
            [
                (v.cell, _fmt(v.ratio, 3), f"±{_fmt(v.band, 2)}",
                 _STATUS_BADGE.get(v.status, v.status))
                for v in acc[:10]
            ],
        ))
        lines.append("")
    if perf:
        lines.append("### Performance (latest vs reference)")
        lines.append("")
        lines.extend(_md_table(
            ["bench key", "latest/ref", "CUSUM", "status"],
            [
                (v.cell, _fmt(v.ratio, 3), _fmt(v.cusum, 3),
                 _STATUS_BADGE.get(v.status, v.status))
                for v in perf[:10]
            ],
        ))
    return lines


def _log_ratio(ratio: Optional[float]) -> float:
    import math

    if ratio is None or ratio <= 0:
        return 0.0
    return math.log(ratio)


def _perf_section(store: HistoryStore) -> List[str]:
    lines = ["## Performance trends", ""]
    keys = store.bench_keys()
    if not keys:
        lines.append("_No bench history ingested yet._")
        return lines
    rows = []
    for key in keys:
        series = store.bench_series(key)
        values = [float(p["normalized"]) for p in series]
        latest = values[-1]
        prev = values[-2] if len(values) > 1 else None
        delta = None
        if prev is not None and prev > 0:
            delta = (latest / prev - 1.0) * 100.0
        rows.append((
            key,
            len(values),
            sparkline(values) or "—",
            f"{latest:.3f}",
            "—" if delta is None else f"{delta:+.1f}%",
        ))
    lines.extend(_md_table(
        ["bench key", "points", "normalized trend", "latest",
         "Δ vs previous"],
        rows,
    ))
    lines.append("")
    lines.append(
        "_Values are calibration-normalized seconds "
        "(`repro.perf.bench.machine_calibration`), so trajectories are "
        "comparable across machines._"
    )
    return lines


def _commit_deltas(store: HistoryStore) -> List[str]:
    lines = ["## Per-commit deltas", ""]
    rows = store._conn.execute(
        """
        SELECT MIN(batch_id) AS first_batch, commit_sha,
               AVG(CASE WHEN ok THEN unit_mse END) AS mean_mse,
               AVG(CASE WHEN ok THEN seconds END) AS mean_seconds,
               COUNT(*) AS n_trials
        FROM trials GROUP BY commit_sha ORDER BY first_batch
        """
    ).fetchall()
    if len(rows) < 1:
        lines.append("_No trial history ingested yet._")
        return lines
    table = []
    prev = None
    for row in rows:
        mse, secs = row["mean_mse"], row["mean_seconds"]
        d_mse = d_secs = "—"
        if prev is not None:
            if prev["mean_mse"] and mse is not None:
                d_mse = f"{(mse / prev['mean_mse'] - 1) * 100:+.1f}%"
            if prev["mean_seconds"] and secs is not None:
                d_secs = (
                    f"{(secs / prev['mean_seconds'] - 1) * 100:+.1f}%"
                )
        table.append((
            _short_commit(row["commit_sha"]), int(row["n_trials"]),
            _fmt(mse), d_mse, _fmt(secs), d_secs,
        ))
        prev = row
    lines.extend(_md_table(
        ["commit", "trials", "mean unit MSE", "Δ MSE", "mean publish s",
         "Δ s"],
        table,
    ))
    return lines


def _verdict_section(verdicts: Sequence[DriftVerdict]) -> List[str]:
    lines = ["## Drift verdicts", ""]
    if not verdicts:
        lines.append("_No verdicts (empty store)._")
        return lines
    rows = []
    for v in sorted(verdicts, key=lambda v: (v.kind, v.cell)):
        rows.append((
            v.kind,
            v.cell,
            _STATUS_BADGE.get(v.status, v.status),
            "; ".join(v.details) if v.details else "—",
        ))
    lines.extend(_md_table(["kind", "cell", "status", "details"], rows))
    lines.append("")
    counts: Dict[str, int] = {}
    for v in verdicts:
        counts[v.status] = counts.get(v.status, 0) + 1
    summary = ", ".join(
        f"{counts[s]} {s}" for s in sorted(counts)
    )
    lines.append(f"**{summary}** — only `drift` fails the radar lane; "
                 "see `docs/observability.md` for the semantics.")
    return lines


def _serving_section(store: HistoryStore) -> List[str]:
    """Replay latency/throughput trajectories (``repro replay --history``).

    Rows join the three replay gauges on ``(batch_id, labels)`` so one
    line shows a whole replay run; the section is omitted entirely when
    no replay was ever ingested.
    """
    import json as json_mod

    series = {
        name: store.metric_series(name)
        for name in (
            "repro_replay_latency_p50_seconds",
            "repro_replay_latency_p99_seconds",
            "repro_replay_throughput_qps",
        )
    }
    if not any(series.values()):
        return []
    joined: "dict[tuple[int, str], dict]" = {}
    for name, rows in series.items():
        for row in rows:
            key = (row["batch_id"], row["labels"])
            entry = joined.setdefault(
                key, {"commit": row["commit_sha"], "labels": row["labels"]}
            )
            entry[name] = row["value"]
    table_rows = []
    for (_batch, labels), entry in sorted(joined.items()):
        try:
            manifest = json_mod.loads(labels).get("manifest", labels)
        except (ValueError, AttributeError):
            manifest = labels
        table_rows.append((
            _short_commit(entry["commit"]),
            manifest,
            _fmt(entry.get("repro_replay_latency_p50_seconds"), 5),
            _fmt(entry.get("repro_replay_latency_p99_seconds"), 5),
            _fmt(entry.get("repro_replay_throughput_qps"), 5),
        ))
    p50s = [r["value"]
            for r in series["repro_replay_latency_p50_seconds"]]
    lines = [
        "## Serving replay",
        "",
        f"- p50 trend: `{sparkline(p50s)}`" if p50s else "- no data",
        "",
    ]
    lines.extend(_md_table(
        ["commit", "manifest", "p50 s", "p99 s", "q/s"],
        table_rows[-12:],
    ))
    return lines


#: Burn-rate badge thresholds (SRE convention): <= 1.0 spends the
#: error budget no faster than allowed; > 6.0 is page-worthy drift.
_SLO_WATCH_BURN = 1.0
_SLO_DRIFT_BURN = 6.0


def _serving_slo_section(store: HistoryStore) -> List[str]:
    """SLO burn rates scraped by ``repro replay --history``.

    One row per (replay run, objective) from the
    ``repro_serve_slo_burn_rate`` gauge; the verdict column applies
    the drift-radar thresholds (ok <= 1, watch <= 6, drift > 6).
    Omitted until a replay against an SLO-aware server is ingested.
    """
    import json as json_mod

    burns = store.metric_series("repro_serve_slo_burn_rate")
    if not burns:
        return []
    table_rows = []
    for row in burns[-18:]:
        try:
            labels = json_mod.loads(row["labels"])
        except (ValueError, TypeError):
            labels = {}
        burn = float(row["value"])
        if burn <= _SLO_WATCH_BURN:
            status = "ok"
        elif burn <= _SLO_DRIFT_BURN:
            status = "watch"
        else:
            status = "drift"
        table_rows.append((
            _short_commit(row["commit_sha"]),
            labels.get("manifest", row["labels"]),
            labels.get("objective", ""),
            _fmt(burn, 4),
            _STATUS_BADGE.get(status, status),
        ))
    lines = [
        "## Serving SLOs",
        "",
        f"- burn rate = bad fraction / (1 - target); "
        f"ok <= {_SLO_WATCH_BURN:g}, watch <= {_SLO_DRIFT_BURN:g}, "
        f"drift above that",
        "",
    ]
    lines.extend(_md_table(
        ["commit", "manifest", "objective", "burn", "verdict"],
        table_rows,
    ))
    return lines


def _operations_section(store: HistoryStore) -> List[str]:
    lines = ["## Operations", ""]
    counts = store.counts()
    lines.append(
        f"- store rows: {counts['trials']} trials, "
        f"{counts['utility']} utility, "
        f"{counts['bench_entries']} bench entries, "
        f"{counts['metric_totals']} metric totals, "
        f"{counts['alerts']} alerts, {counts['batches']} batches "
        f"(schema v{store.schema_version})"
    )
    alerts = store.alert_rows()
    if alerts:
        lines.append("")
        lines.append("### Straggler alerts")
        lines.append("")
        lines.extend(_md_table(
            ["commit", "spec", "seed", "age s", "threshold s"],
            [
                (_short_commit(a["commit_sha"]), a["spec_name"],
                 a["seed"], _fmt(a["age_seconds"], 3),
                 _fmt(a["threshold"], 3))
                for a in alerts
            ],
        ))
    totals = store.metric_series("repro_trials_total")
    if totals:
        lines.append("")
        lines.append("### Executor totals (latest batches)")
        lines.append("")
        lines.extend(_md_table(
            ["commit", "labels", "value"],
            [
                (_short_commit(t["commit_sha"]), t["labels"],
                 _fmt(t["value"], 6))
                for t in totals[-10:]
            ],
        ))
    lines.extend(_serving_resilience_rows(store))
    return lines


def _serving_resilience_rows(store: HistoryStore) -> List[str]:
    """Shed / degraded / restart-recovery counters per replay run.

    Fed by ``repro replay --history``: the replay driver scrapes the
    target server's final ``/v1/stats`` and lands the
    ``repro_serve_shed/degraded/recovered_total`` families as gauges.
    Empty (and omitted) until a replay against a resilient server is
    ingested.
    """
    import json as json_mod

    rows: List[tuple] = []
    for name, event in (
        ("repro_serve_shed_total", "shed"),
        ("repro_serve_degraded_total", "degraded"),
        ("repro_serve_recovered_total", "recovered"),
    ):
        for row in store.metric_series(name)[-12:]:
            try:
                labels = json_mod.loads(row["labels"])
            except (ValueError, TypeError):
                labels = {}
            rows.append((
                _short_commit(row["commit_sha"]),
                labels.get("manifest", row["labels"]),
                event,
                labels.get("key", ""),
                _fmt(row["value"], 6),
            ))
    if not rows:
        return []
    lines = [
        "",
        "### Serving resilience (sheds / degraded / recoveries)",
        "",
    ]
    lines.extend(_md_table(
        ["commit", "manifest", "event", "detail", "count"], rows,
    ))
    return lines


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

def render_dashboard(
    store: Union[HistoryStore, str, Path],
    fmt: str = "md",
    title: Optional[str] = None,
) -> str:
    """Render the trend dashboard (``fmt`` = ``"md"`` or ``"html"``)."""
    if fmt not in ("md", "html"):
        raise ValueError(f"fmt must be 'md' or 'html', got {fmt!r}")
    owned = not isinstance(store, HistoryStore)
    if owned:
        store = HistoryStore(store)
    try:
        verdicts = detect_drift(store)
        name = title if title is not None else store.path.name
        sections: List[str] = [f"# Regression radar — `{name}`", ""]
        sections.extend(_accuracy_section(store))
        sections.append("")
        utility = _utility_section(store, verdicts)
        if utility:
            sections.extend(utility)
            sections.append("")
        sections.extend(_worst_offenders(store, verdicts))
        sections.append("")
        sections.extend(_perf_section(store))
        sections.append("")
        sections.extend(_commit_deltas(store))
        sections.append("")
        sections.extend(_verdict_section(verdicts))
        sections.append("")
        serving = _serving_section(store)
        if serving:
            sections.extend(serving)
            sections.append("")
        slo = _serving_slo_section(store)
        if slo:
            sections.extend(slo)
            sections.append("")
        sections.extend(_operations_section(store))
        text = "\n".join(sections) + "\n"
    finally:
        if owned:
            store.close()
    if fmt == "html":
        return _markdown_to_html(text)
    return text


def write_dashboard(
    store: Union[HistoryStore, str, Path],
    out: Union[str, Path],
    fmt: Optional[str] = None,
) -> Path:
    """Render and atomically write the dashboard; returns the path.

    ``fmt`` defaults from the output suffix (``.html`` selects HTML).
    """
    from repro.robust.atomicio import atomic_write_text

    out = Path(out)
    if fmt is None:
        fmt = "html" if out.suffix.lower() in (".html", ".htm") else "md"
    atomic_write_text(out, render_dashboard(store, fmt=fmt))
    return out


# ---------------------------------------------------------------------------
# Minimal markdown -> HTML (headings, tables, paragraphs)
# ---------------------------------------------------------------------------

def _markdown_to_html(markdown: str) -> str:
    """Tiny, deterministic subset-converter for the dashboard's markdown.

    Handles exactly what the renderer emits — ``#``/``##``/``###``
    headings, pipe tables, and paragraphs — so the HTML artifact CI
    uploads is viewable without a markdown renderer.  Inline code
    backticks become ``<code>``; everything is HTML-escaped first.
    """
    def inline(text: str) -> str:
        escaped = _html.escape(text, quote=False)
        out = []
        parts = escaped.split("`")
        for i, part in enumerate(parts):
            if i % 2 == 1:
                out.append(f"<code>{part}</code>")
            else:
                out.append(part)
        return "".join(out)

    body: List[str] = []
    lines = markdown.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        if not line.strip():
            i += 1
            continue
        if line.startswith("#"):
            level = len(line) - len(line.lstrip("#"))
            level = min(level, 6)
            body.append(
                f"<h{level}>{inline(line[level:].strip())}</h{level}>"
            )
            i += 1
            continue
        if line.startswith("|"):
            table = []
            while i < len(lines) and lines[i].startswith("|"):
                table.append(lines[i])
                i += 1
            body.append("<table>")
            for j, row in enumerate(table):
                if j == 1 and set(row.replace("|", "").strip()) <= \
                        set("- :"):
                    continue
                cells = [c.strip() for c in row.strip("|").split("|")]
                tag = "th" if j == 0 else "td"
                body.append(
                    "<tr>" + "".join(
                        f"<{tag}>{inline(c)}</{tag}>" for c in cells
                    ) + "</tr>"
                )
            body.append("</table>")
            continue
        body.append(f"<p>{inline(line.strip())}</p>")
        i += 1
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        "<title>Regression radar</title>\n"
        "<style>body{font-family:monospace;margin:2em}"
        "table{border-collapse:collapse}"
        "td,th{border:1px solid #999;padding:2px 8px;text-align:left}"
        "</style></head>\n<body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )
