"""Counter / gauge / histogram registry with Prometheus + JSON export.

A zero-dependency metrics substrate for the experiment harness.  The
supervisor-side observers (:mod:`repro.obs.monitor`) feed it executor
events — retries, quarantines, pool respawns, journal appends — and the
trace bridge turns per-trial span trees into per-stage latency
histograms.  ``python -m repro run --metrics-out metrics.prom`` renders
the whole registry in the Prometheus *textfile-collector* format (drop
the file into ``node_exporter``'s textfile directory and the numbers
appear in Prometheus unchanged); a ``.json`` suffix selects the JSON
rendering instead.

Model
-----
A *family* owns a metric name, help text, and a fixed label-name tuple;
``family.labels(stage="publish")`` returns the child holding the actual
value.  Families with no labels proxy the child API directly
(``registry.counter("x").inc()``).

Naming follows the Prometheus conventions: ``repro_`` prefix,
``_total`` suffix on counters, base units (seconds, bytes).  The full
catalog lives in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricFamily",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): microbenchmark scale up through
#: multi-minute trials, log-ish spacing.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0
)


def _format_value(value: float) -> str:
    """Prometheus exposition float formatting (+Inf/-Inf/NaN aware)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labelnames: Sequence[str], labelvalues: Sequence[str],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{_escape_label(extra[1])}"')
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


# ---------------------------------------------------------------------------
# Children: the value holders
# ---------------------------------------------------------------------------

class Counter:
    """Monotonically increasing count.

    Updates are lock-guarded: ``value += amount`` is not atomic in
    CPython, and the serving layer increments counters from many
    handler threads at once — the concurrency tests assert the totals
    sum exactly.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (or track a running max)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def set_max(self, value: float) -> None:
        """Keep the largest value seen (peak-memory style gauges)."""
        with self._lock:
            self.value = max(self.value, float(value))


class HistogramMetric:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "counts", "sum", "count", "_lock")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    def cumulative(self) -> List[int]:
        """Cumulative counts per bucket bound, ending with +Inf."""
        out: List[int] = []
        running = 0
        with self._lock:
            counts = list(self.counts)
        for c in counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile by linear bucket interpolation.

        Prometheus ``histogram_quantile`` semantics: the rank is
        located in its cumulative bucket and interpolated between the
        bucket's bounds (the lowest bucket interpolates from 0; a rank
        in the +Inf bucket returns the highest finite bound).  NaN
        when nothing was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        cumulative = self.cumulative()
        total = cumulative[-1]
        if total == 0:
            return float("nan")
        rank = q * total
        previous = 0
        lower = 0.0
        for bound, count in zip(self.buckets, cumulative):
            if rank <= count:
                span_count = count - previous
                if span_count == 0:  # pragma: no cover - rank boundary
                    return bound
                fraction = (rank - previous) / span_count
                return lower + (bound - lower) * fraction
            previous = count
            lower = bound
        return self.buckets[-1]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": HistogramMetric}


# ---------------------------------------------------------------------------
# Families + registry
# ---------------------------------------------------------------------------

class MetricFamily:
    """One named metric with a fixed label schema and N children."""

    def __init__(self, kind: str, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets)
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    def labels(self, **labelvalues: Any):
        """The child for one label combination (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = HistogramMetric(self._buckets)
                else:
                    child = _KINDS[self.kind]()
                self._children[key] = child
            return child

    # Label-less convenience: proxy the single child's API.
    def _solo(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} has labels {self.labelnames}; use .labels()"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def set_max(self, value: float) -> None:
        self._solo().set_max(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    def children(self) -> Iterable[Tuple[Tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())

    def total(self) -> float:
        """Sum of all children (counters/gauges) — summary-line helper."""
        return sum(child.value for _, child in self.children()
                   if not isinstance(child, HistogramMetric))


class MetricsRegistry:
    """A process-local collection of metric families."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _register(self, kind: str, name: str, help: str,
                  labelnames: Sequence[str],
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != tuple(
                        labelnames):
                    raise ValueError(
                        f"metric {name!r} re-registered with a different "
                        f"schema ({family.kind}/{family.labelnames} vs "
                        f"{kind}/{tuple(labelnames)})"
                    )
                return family
            family = MetricFamily(kind, name, help, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register("counter", name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register("gauge", name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> MetricFamily:
        return self._register("histogram", name, help, labelnames, buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def reset(self) -> None:
        """Drop every family (test isolation)."""
        with self._lock:
            self._families.clear()

    # -- exporters -----------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus textfile-collector exposition format."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            children = list(family.children())
            if not children and family.kind != "histogram":
                # An empty registered family still exposes a zero sample
                # (so dashboards see the series exists).
                if not family.labelnames:
                    lines.append(f"{name} 0")
                continue
            for key, child in children:
                labels = _render_labels(family.labelnames, key)
                if isinstance(child, HistogramMetric):
                    cumulative = child.cumulative()
                    bounds = list(child.buckets) + [float("inf")]
                    for bound, count in zip(bounds, cumulative):
                        le = _render_labels(
                            family.labelnames, key,
                            extra=("le", _format_value(bound)),
                        )
                        lines.append(f"{name}_bucket{le} {count}")
                    lines.append(
                        f"{name}_sum{labels} {_format_value(child.sum)}"
                    )
                    lines.append(f"{name}_count{labels} {child.count}")
                else:
                    lines.append(
                        f"{name}{labels} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def render_json(self) -> Dict[str, Any]:
        """JSON rendering mirroring the Prometheus structure."""
        out: Dict[str, Any] = {}
        for name in sorted(self._families):
            family = self._families[name]
            samples: List[Dict[str, Any]] = []
            for key, child in family.children():
                labels = dict(zip(family.labelnames, key))
                if isinstance(child, HistogramMetric):
                    samples.append({
                        "labels": labels,
                        "buckets": {
                            _format_value(b): c
                            for b, c in zip(
                                list(child.buckets) + [float("inf")],
                                child.cumulative(),
                            )
                        },
                        "sum": child.sum,
                        "count": child.count,
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[name] = {
                "kind": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    def render_json_text(self) -> str:
        return json.dumps(self.render_json(), indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# Global default registry
# ---------------------------------------------------------------------------

_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (CLI runs export this one)."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one (tests)."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
