"""Per-trial resource probes: ``tracemalloc`` peak and ``getrusage``.

Opt-in (``REPRO_TRACE_RESOURCE=1`` or ``--trace-resources``), because
``tracemalloc`` instruments every allocation and costs real time — the
probe is for memory-attribution runs, not the default path.  Results
land in the reserved timing-exempt meta namespace
(``meta["t_peak_bytes"]``, ``meta["t_ru_utime"]``, ...) so they ride the
existing worker pickle channel and journal without touching the
bit-identity contract.

``resource`` is POSIX-only; on platforms without it the rusage fields
are simply omitted (the probe degrades, never raises).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

__all__ = ["ENV_VAR", "ResourceProbe", "enabled", "sample", "set_enabled"]

#: Environment variable enabling the probe (inherited by pool workers).
ENV_VAR = "REPRO_TRACE_RESOURCE"

_ENABLED: Optional[bool] = None


def set_enabled(value: Optional[bool]) -> Optional[bool]:
    """Process-local override; ``None`` defers to the environment."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = value
    return previous


def enabled() -> bool:
    if _ENABLED is not None:
        return _ENABLED
    return bool(os.environ.get(ENV_VAR))


class ResourceProbe:
    """Context manager capturing allocation peak + rusage deltas."""

    def __init__(self) -> None:
        self.meta: Dict[str, Any] = {}
        self._started_tracemalloc = False
        self._ru0 = None

    def __enter__(self) -> "ResourceProbe":
        try:
            import resource

            self._ru0 = resource.getrusage(resource.RUSAGE_SELF)
        except ImportError:  # pragma: no cover - non-POSIX
            self._ru0 = None
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        tracemalloc.reset_peak()
        return self

    def __exit__(self, *exc: Any) -> bool:
        import tracemalloc

        if tracemalloc.is_tracing():
            _current, peak = tracemalloc.get_traced_memory()
            self.meta["t_peak_bytes"] = int(peak)
            if self._started_tracemalloc:
                tracemalloc.stop()
        if self._ru0 is not None:
            import resource

            ru1 = resource.getrusage(resource.RUSAGE_SELF)
            self.meta["t_ru_utime"] = ru1.ru_utime - self._ru0.ru_utime
            self.meta["t_ru_stime"] = ru1.ru_stime - self._ru0.ru_stime
            # ru_maxrss is a high-water mark, not a delta (kilobytes on
            # Linux); report the end-of-trial value.
            self.meta["t_ru_maxrss_kb"] = int(ru1.ru_maxrss)
        return False


class _NullProbe:
    __slots__ = ()
    meta: Dict[str, Any] = {}

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL = _NullProbe()


def sample():
    """A :class:`ResourceProbe` when enabled, else a shared no-op."""
    if not enabled():
        return _NULL
    return ResourceProbe()
