"""Persistent run-history store: the regression radar's memory.

Every sweep, bench refresh, and metrics export the harness produces is
a point-in-time artifact — a journal that piles up, a ``BENCH_*.json``
snapshot, a ``--metrics-out`` dump.  :class:`HistoryStore` turns them
into a *trajectory*: an append-only, schema-versioned SQLite database
(keyed by commit, spec SHA-256 fingerprint, publisher, dataset, ε, k,
n) that the drift engine (:mod:`repro.obs.drift`) and trend dashboard
(:mod:`repro.obs.dashboard`) read longitudinally.

Ingestion sources (``python -m repro history ingest <path> --db …``):

* **checkpoint journals** (:mod:`repro.robust.journal`) — one row per
  journaled trial, annotated with the *oracle-anchored* expected unit
  MSE from :mod:`repro.verify.oracles` whenever the publisher's
  conditional oracle can be rebuilt from the journaled metadata;
* **bench snapshots** (``BENCH_*.json``) — one row per benchmark key
  with raw and calibration-normalized seconds;
* **metrics exports** (``--metrics-out *.json``) — executor counter /
  gauge totals and histogram sums;
* **straggler alerts** fired by the progress monitor during a
  ``run --history`` sweep.

Idempotency
-----------
Every row carries a ``dedup_key`` — a SHA-256 over the commit, the spec
fingerprint, and the *timing-stripped* canonical payload — with a
UNIQUE index; ingestion uses ``INSERT OR IGNORE``, so re-ingesting the
same journal (or the same bench snapshot) changes **no** rows.  A new
commit with bit-identical results is a *new* trajectory point: the
whole point of the radar is noticing when those deterministic outputs
move.

Schema versioning
-----------------
``meta.schema_version`` records the store's schema; :class:`HistoryStore`
migrates forward automatically through :data:`_MIGRATIONS` on open
(v1 → v2 added the ``alerts`` table and ``trials.oracle_kind``;
v2 → v3 added the per-workload ``utility`` table) and refuses databases
written by a *newer* schema.

Utility rows
------------
v3 adds the **utility table**: one row per (trial × workload), derived
from the full per-workload error dict every journal payload already
carries.  Scenario specs (``scenario/<family>/<label>/…``, see
:mod:`repro.scenarios`) are self-describing, so offline ingestion
rebuilds the exact dataset *and* workload battery from the registry and
anchors every row with the publisher's conditional oracle
(``workload_mse``); sweep specs contribute their unit workload under the
pseudo-family ``sweep``.  ``ingest_journal_utility`` re-derives these
rows from a journal without touching the trials table — the engine
behind ``history ingest --rebuild``, which upgrades pre-v3 stores
without re-running any experiments.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import sqlite3
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exceptions import HistoryError

__all__ = [
    "HISTORY_SCHEMA",
    "HistoryStore",
    "IngestResult",
    "TrialRow",
    "UtilityRow",
    "default_commit",
    "oracle_prediction",
    "parse_sweep_spec_name",
    "sniff_source",
    "trial_content_sha",
    "trial_row_from_record",
    "utility_rows_from_record",
]

#: Current schema version (see the module docstring for the changelog).
HISTORY_SCHEMA = 3

#: ``sweep/<dataset>/<publisher>/eps=<eps>`` — the naming convention
#: :func:`repro.robust.sweep.build_sweep_specs` guarantees.
_SWEEP_NAME_RE = re.compile(
    r"^sweep/(?P<dataset>[^/]+)/(?P<publisher>[^/]+)/eps=(?P<eps>[^/]+)$"
)


# ---------------------------------------------------------------------------
# Commit stamping
# ---------------------------------------------------------------------------

def default_commit(root: Union[str, Path, None] = None) -> str:
    """The commit stamp for new history rows.

    ``REPRO_COMMIT`` wins (CI and tests pin it for determinism), then
    ``git rev-parse HEAD`` of ``root`` (default: the current
    directory), then the literal ``"unknown"``.
    """
    env = os.environ.get("REPRO_COMMIT")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def parse_sweep_spec_name(spec_name: str) -> Optional[Dict[str, str]]:
    """Split a ``sweep/<dataset>/<publisher>/eps=<eps>`` spec name.

    Returns ``None`` for spec names that do not follow the sweep
    convention (figure specs, ad-hoc tests); history rows then keep a
    ``NULL`` dataset.
    """
    match = _SWEEP_NAME_RE.match(spec_name)
    if match is None:
        return None
    return match.groupdict()


# ---------------------------------------------------------------------------
# Oracle anchoring
# ---------------------------------------------------------------------------

def _radar_oracle(publisher: str, histogram: Any, epsilon: float,
                  record: Any) -> Any:
    """The oracle the *radar* anchors to for one realized trial.

    Mostly :func:`repro.verify.oracles.oracle_from_result` — exact (or
    an honest bound) conditional on the structure journaled in
    ``record.meta``.  The one exception is a NoiseFirst publish that
    actually merged: its partition was chosen from the *same* noisy
    draw it then averages, so the partition-conditional formula is
    selection-biased low (on merge-friendly data like step histograms
    the empirical MSE sits ~3x above it) and would confirm drift on
    honest runs.  What is unconditionally valid is the paper's
    Section 4 claim — adaptive NoiseFirst never does worse than the
    unmerged identity release — so those rows anchor to the identity
    oracle as an ``upper_bound`` (flags from above only; the
    calibration suite power-tests the bound).
    """
    from repro.verify.oracles import dwork_oracle, oracle_from_result

    oracle = oracle_from_result(publisher, histogram, epsilon, record)
    meta = getattr(record, "meta", {}) or {}
    if str(publisher) == "noisefirst" and meta.get("partition") is not None:
        import dataclasses

        return dataclasses.replace(
            dwork_oracle(histogram.size, epsilon),
            publisher="noisefirst",
            kind="upper_bound",
            notes="Section-4 bound: merged NoiseFirst never worse than "
                  "the unmerged identity (partition-conditional oracle "
                  "is selection-biased low)",
        )
    return oracle


def oracle_prediction(
    record: Any, histogram: Any, epsilon: float
) -> Tuple[Optional[float], Optional[str]]:
    """``(expected unit MSE, oracle kind)`` for one realized trial.

    Builds the publisher's radar anchor (:func:`_radar_oracle`) from
    the trial's journaled metadata — conditional on the realized
    partition / cluster / coefficient choice riding in ``record.meta``.
    Returns ``(None, None)`` when no oracle can be built (unknown
    publisher, missing metadata): the drift engine then falls back to
    purely longitudinal detection for that cell.
    """
    try:
        oracle = _radar_oracle(
            record.publisher, histogram, epsilon, record
        )
        return float(oracle.unit_mse()), oracle.kind
    except Exception:
        return None, None


def _parse_scenario(spec_name: str) -> Optional[Any]:
    """Registry lookup for ``scenario/<family>/<label>/…`` spec names.

    Returns the :class:`repro.scenarios.Scenario` or ``None`` (wrong
    convention, unknown scenario, or the registry failed to import).
    """
    if not spec_name.startswith("scenario/"):
        return None
    try:
        from repro.scenarios import parse_scenario_spec_name

        parsed = parse_scenario_spec_name(spec_name)
    except Exception:
        return None
    return parsed[0] if parsed else None


def _reconstruct_histogram(
    spec_name: str, n_bins: int, total: int
) -> Optional[Any]:
    """Rebuild a sweep or scenario dataset from its spec name.

    ``build_sweep_specs`` derives datasets deterministically from
    ``(dataset, n_bins, total)``, so the reconstruction is exact when
    the ingest flags match the sweep flags (they share defaults).
    Scenario specs are self-describing: the registry pins their own
    ``n_bins``/``total``, so the ingest flags are ignored for them.
    """
    scenario = _parse_scenario(spec_name)
    if scenario is not None:
        try:
            return scenario.build_histogram()
        except Exception:
            return None
    parsed = parse_sweep_spec_name(spec_name)
    if parsed is None:
        return None
    try:
        from repro.datasets import standard

        builder = getattr(standard, parsed["dataset"], None)
        if builder is None:
            return None
        return builder(n_bins=n_bins, total=total)
    except Exception:
        return None


def _utility_context(
    spec_name: str, n_bins: int, total: int
) -> Tuple[Optional[Any], Optional[Dict[str, Any]]]:
    """``(histogram, workloads-by-name)`` for utility derivation.

    Scenario specs rebuild both from the registry; sweep specs rebuild
    the dataset only (their single workload is ``unit``, which the
    oracle handles without a Workload object).
    """
    scenario = _parse_scenario(spec_name)
    if scenario is not None:
        try:
            workloads = {w.name: w for w in scenario.build_workloads()}
            return scenario.build_histogram(), workloads
        except Exception:
            return None, None
    return _reconstruct_histogram(spec_name, n_bins, total), None


# ---------------------------------------------------------------------------
# Row shapes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TrialRow:
    """One trial observation, ready for :meth:`HistoryStore.add_trials`."""

    commit: str
    fingerprint: str
    spec_name: str
    publisher: str
    epsilon: float
    seed: int
    ok: bool
    dataset: Optional[str] = None
    k: Optional[int] = None
    n: Optional[int] = None
    seconds: Optional[float] = None
    kl: Optional[float] = None
    ks: Optional[float] = None
    unit_mse: Optional[float] = None
    unit_mae: Optional[float] = None
    oracle_mse: Optional[float] = None
    oracle_kind: Optional[str] = None
    content_sha: str = ""

    @property
    def dedup_key(self) -> str:
        digest = hashlib.sha256()
        digest.update(self.commit.encode())
        digest.update(b"|")
        digest.update(self.fingerprint.encode())
        digest.update(b"|")
        digest.update(self.content_sha.encode())
        return digest.hexdigest()


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one ingestion call."""

    kind: str
    new_rows: int
    duplicate_rows: int
    batch_id: Optional[int]

    def describe(self) -> str:
        return (
            f"{self.kind}: {self.new_rows} new row(s), "
            f"{self.duplicate_rows} duplicate(s) skipped"
        )


def _content_sha(payload: Dict[str, Any]) -> str:
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _stripped_payload(record: Any) -> Dict[str, Any]:
    """Canonical timing-stripped payload of a run/failed record.

    Timing-exempt meta (wall-clock, traces, resource probes) is removed
    before hashing, so a re-run that produced *bit-identical statistics*
    at the same commit deduplicates even though its wall-clock differs.
    """
    from repro.experiments.runner import RunRecord, strip_timing
    from repro.robust.journal import record_to_payload

    if isinstance(record, RunRecord):
        return record_to_payload(strip_timing(record))
    payload = record_to_payload(record)
    payload.pop("meta", None)
    return payload


def trial_content_sha(record: Any) -> str:
    """SHA-256 of a record's timing-stripped canonical payload.

    The identity used for deduplication and for the run report's
    "exclude this journal's own rows" logic.
    """
    return _content_sha(_stripped_payload(record))


def trial_row_from_record(
    record: Any,
    fingerprint: str,
    commit: str,
    histogram: Any = None,
    n_bins: Optional[int] = None,
    total: Optional[int] = None,
) -> TrialRow:
    """Build a :class:`TrialRow` from a run/failed record.

    ``histogram`` supplies the exact dataset for oracle anchoring (the
    ``run --history`` path has it in memory); offline journal ingestion
    reconstructs it from the sweep naming convention and the
    ``n_bins``/``total`` flags instead.
    """
    from repro.robust.records import is_failed

    failed = is_failed(record)
    meta = getattr(record, "meta", {}) or {}
    parsed = parse_sweep_spec_name(record.spec_name)
    dataset = parsed["dataset"] if parsed else None
    partition = meta.get("partition")
    k = None
    if partition is not None and hasattr(partition, "boundaries"):
        k = len(partition.boundaries) + 1
    n = None
    if histogram is not None:
        n = int(histogram.size)
    elif partition is not None and hasattr(partition, "n"):
        n = int(partition.n)
    elif n_bins is not None:
        n = int(n_bins)

    oracle_mse = oracle_kind = None
    unit_mse = unit_mae = kl = ks = seconds = None
    if not failed:
        seconds = float(record.seconds)
        kl = float(record.kl)
        ks = float(record.ks)
        errors = record.workload_errors.get("unit")
        if errors is not None:
            unit_mse = float(errors.mse)
            unit_mae = float(errors.mae)
        epsilon = float(meta.get("spec_epsilon", record.epsilon))
        if histogram is None and n_bins is not None and total is not None:
            histogram = _reconstruct_histogram(
                record.spec_name, n_bins, total
            )
        if histogram is not None:
            oracle_mse, oracle_kind = oracle_prediction(
                record, histogram, epsilon
            )

    return TrialRow(
        commit=commit,
        fingerprint=fingerprint,
        spec_name=record.spec_name,
        publisher=record.publisher,
        epsilon=float(record.epsilon),
        seed=int(record.seed),
        ok=not failed,
        dataset=dataset,
        k=k,
        n=n,
        seconds=seconds,
        kl=kl,
        ks=ks,
        unit_mse=unit_mse,
        unit_mae=unit_mae,
        oracle_mse=oracle_mse,
        oracle_kind=oracle_kind,
        content_sha=trial_content_sha(record),
    )


@dataclass(frozen=True)
class UtilityRow:
    """One (trial × workload) utility observation (schema v3)."""

    commit: str
    fingerprint: str
    spec_name: str
    family: str
    scenario: str
    publisher: str
    epsilon: float
    seed: int
    workload: str
    n: Optional[int] = None
    total: Optional[int] = None
    n_queries: Optional[int] = None
    eff_queries: Optional[int] = None
    mse: Optional[float] = None
    mae: Optional[float] = None
    scaled: Optional[float] = None
    max_abs: Optional[float] = None
    oracle_mse: Optional[float] = None
    oracle_kind: Optional[str] = None
    content_sha: str = ""

    @property
    def dedup_key(self) -> str:
        digest = hashlib.sha256()
        for part in (self.commit, self.fingerprint, self.content_sha,
                     self.workload):
            digest.update(part.encode())
            digest.update(b"|")
        return digest.hexdigest()


def _effective_queries(
    workload: Optional[Any], workload_name: str,
    n_queries: int, n: Optional[int],
) -> int:
    """Independent-information count backing the drift band for a row.

    A workload of ``q`` queries of mean length ``L`` touching ``c``
    distinct bins carries at most ``c / L`` independent per-bin
    observations — long ranges average noise away, and clustered or
    duplicated queries re-read the same bins, so both deflate the
    information behind a per-seed mean.  The band uses ``seeds × eff``
    as its sample count; clamping keeps concentrated workloads from
    claiming unearned precision.
    """
    if n is None or n < 1:
        return max(1, n_queries)
    if workload is not None:
        lengths = [q.length for q in workload.queries]
        mean_len = sum(lengths) / len(lengths) if lengths else 1.0
        covered: set = set()
        for q in workload.queries:
            covered.update(range(q.lo, q.hi + 1))
        span = min(n, len(covered)) or n
        return min(n_queries, max(1, int(round(span / max(mean_len, 1.0)))))
    if workload_name == "unit":
        return min(n_queries, n)
    return max(1, min(n_queries, n))


def utility_rows_from_record(
    record: Any,
    fingerprint: str,
    commit: str,
    histogram: Any = None,
    workloads: "Optional[Dict[str, Any]]" = None,
    total: Optional[int] = None,
) -> "List[UtilityRow]":
    """Per-workload utility rows for one run record.

    One row per entry in ``record.workload_errors``, each anchored with
    the publisher's conditional oracle prediction for *that* workload
    when an oracle can be built (``workloads`` maps workload names to
    reconstructed Workload objects; ``unit`` needs no object).  Failed
    records and spec names outside the sweep/scenario conventions yield
    no rows — utility trending only makes sense for reconstructible
    cells.
    """
    from repro.robust.records import is_failed

    if is_failed(record):
        return []
    spec_name = record.spec_name
    scenario = _parse_scenario(spec_name)
    if scenario is not None:
        family, label = scenario.family, scenario.label
        total = scenario.total if total is None else total
    else:
        parsed = parse_sweep_spec_name(spec_name)
        if parsed is None:
            return []
        family, label = "sweep", parsed["dataset"]

    meta = getattr(record, "meta", {}) or {}
    epsilon = float(meta.get("spec_epsilon", record.epsilon))
    n = int(histogram.size) if histogram is not None else None
    oracle = None
    if histogram is not None:
        try:
            oracle = _radar_oracle(
                record.publisher, histogram, epsilon, record
            )
        except Exception:
            oracle = None
    content = trial_content_sha(record)
    rows: List[UtilityRow] = []
    for wname in sorted(record.workload_errors):
        werr = record.workload_errors[wname]
        wobj = workloads.get(wname) if workloads else None
        oracle_mse = oracle_kind = None
        if oracle is not None:
            try:
                if wobj is not None:
                    oracle_mse = float(oracle.workload_mse(wobj))
                    oracle_kind = oracle.kind
                elif wname == "unit":
                    oracle_mse = float(oracle.unit_mse())
                    oracle_kind = oracle.kind
            except Exception:
                oracle_mse = oracle_kind = None
        n_queries = int(werr.n_queries)
        rows.append(UtilityRow(
            commit=commit,
            fingerprint=fingerprint,
            spec_name=spec_name,
            family=family,
            scenario=label,
            publisher=record.publisher,
            epsilon=float(record.epsilon),
            seed=int(record.seed),
            workload=wname,
            n=n,
            total=total,
            n_queries=n_queries,
            eff_queries=_effective_queries(wobj, wname, n_queries, n),
            mse=float(werr.mse),
            mae=float(werr.mae),
            scaled=float(werr.scaled),
            max_abs=float(werr.max_abs),
            oracle_mse=oracle_mse,
            oracle_kind=oracle_kind,
            content_sha=content,
        ))
    return rows


# ---------------------------------------------------------------------------
# Source sniffing
# ---------------------------------------------------------------------------

def sniff_source(path: Union[str, Path]) -> str:
    """Classify an ingest source: ``journal`` | ``bench`` | ``metrics``.

    Journals are JSONL files whose entries carry ``fingerprint`` +
    ``payload``; bench snapshots are JSON objects with ``entries`` and
    ``calibration_seconds``; metrics exports are JSON objects whose
    values carry ``kind`` + ``samples``.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    first = text.lstrip()[:1]
    if first == "{":
        try:
            doc = json.loads(text.splitlines()[0])
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict) and "fingerprint" in doc \
                and "payload" in doc:
            return "journal"
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict):
            if "entries" in doc and "calibration_seconds" in doc:
                return "bench"
            samples = [
                v for v in doc.values()
                if isinstance(v, dict) and "samples" in v and "kind" in v
            ]
            if samples:
                return "metrics"
    raise HistoryError(
        f"cannot classify {path} as a journal, bench snapshot, or "
        f"metrics export"
    )


# ---------------------------------------------------------------------------
# Schema migrations
# ---------------------------------------------------------------------------

def _migrate_0_to_1(conn: sqlite3.Connection) -> None:
    """v0 (empty database) -> v1: the core tables."""
    conn.executescript(
        """
        CREATE TABLE IF NOT EXISTS meta (
            key TEXT PRIMARY KEY,
            value TEXT NOT NULL
        );
        CREATE TABLE IF NOT EXISTS batches (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            kind TEXT NOT NULL,
            source TEXT NOT NULL,
            commit_sha TEXT NOT NULL,
            ingested_at REAL NOT NULL
        );
        CREATE TABLE IF NOT EXISTS trials (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            batch_id INTEGER NOT NULL REFERENCES batches(id),
            commit_sha TEXT NOT NULL,
            fingerprint TEXT NOT NULL,
            spec_name TEXT NOT NULL,
            publisher TEXT NOT NULL,
            dataset TEXT,
            epsilon REAL NOT NULL,
            k INTEGER,
            n INTEGER,
            seed INTEGER NOT NULL,
            ok INTEGER NOT NULL,
            seconds REAL,
            kl REAL,
            ks REAL,
            unit_mse REAL,
            unit_mae REAL,
            oracle_mse REAL,
            content_sha TEXT NOT NULL,
            dedup_key TEXT NOT NULL UNIQUE
        );
        CREATE INDEX IF NOT EXISTS trials_cell
            ON trials (spec_name, publisher, epsilon, batch_id);
        CREATE TABLE IF NOT EXISTS bench_entries (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            batch_id INTEGER NOT NULL REFERENCES batches(id),
            commit_sha TEXT NOT NULL,
            bench_file TEXT NOT NULL,
            profile TEXT NOT NULL,
            key TEXT NOT NULL,
            seconds REAL NOT NULL,
            normalized REAL NOT NULL,
            calibration REAL NOT NULL,
            dedup_key TEXT NOT NULL UNIQUE
        );
        CREATE INDEX IF NOT EXISTS bench_key
            ON bench_entries (key, batch_id);
        CREATE TABLE IF NOT EXISTS metric_totals (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            batch_id INTEGER NOT NULL REFERENCES batches(id),
            commit_sha TEXT NOT NULL,
            name TEXT NOT NULL,
            labels TEXT NOT NULL,
            value REAL NOT NULL,
            dedup_key TEXT NOT NULL UNIQUE
        );
        """
    )


def _migrate_1_to_2(conn: sqlite3.Connection) -> None:
    """v1 -> v2: straggler alerts + the oracle-kind annotation."""
    cols = [row[1] for row in conn.execute("PRAGMA table_info(trials)")]
    if "oracle_kind" not in cols:
        conn.execute("ALTER TABLE trials ADD COLUMN oracle_kind TEXT")
    conn.executescript(
        """
        CREATE TABLE IF NOT EXISTS alerts (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            batch_id INTEGER NOT NULL REFERENCES batches(id),
            commit_sha TEXT NOT NULL,
            kind TEXT NOT NULL,
            spec_name TEXT NOT NULL,
            seed INTEGER NOT NULL,
            age_seconds REAL NOT NULL,
            threshold REAL NOT NULL,
            dedup_key TEXT NOT NULL UNIQUE
        );
        """
    )


def _migrate_2_to_3(conn: sqlite3.Connection) -> None:
    """v2 -> v3: the per-workload utility table (see module docstring)."""
    conn.executescript(
        """
        CREATE TABLE IF NOT EXISTS utility (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            batch_id INTEGER NOT NULL REFERENCES batches(id),
            commit_sha TEXT NOT NULL,
            fingerprint TEXT NOT NULL,
            spec_name TEXT NOT NULL,
            family TEXT NOT NULL,
            scenario TEXT NOT NULL,
            publisher TEXT NOT NULL,
            epsilon REAL NOT NULL,
            seed INTEGER NOT NULL,
            workload TEXT NOT NULL,
            n INTEGER,
            total INTEGER,
            n_queries INTEGER,
            eff_queries INTEGER,
            mse REAL,
            mae REAL,
            scaled REAL,
            max_abs REAL,
            oracle_mse REAL,
            oracle_kind TEXT,
            content_sha TEXT NOT NULL,
            dedup_key TEXT NOT NULL UNIQUE
        );
        CREATE INDEX IF NOT EXISTS utility_cell
            ON utility (family, scenario, publisher, epsilon, workload,
                        batch_id);
        """
    )


#: Ordered ``(from_version, migration)`` steps; applied transactionally
#: on open until the store reaches :data:`HISTORY_SCHEMA`.
_MIGRATIONS: Tuple[Tuple[int, Any], ...] = (
    (0, _migrate_0_to_1),
    (1, _migrate_1_to_2),
    (2, _migrate_2_to_3),
)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class HistoryStore:
    """Append-only SQLite run-history store (see the module docstring)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.row_factory = sqlite3.Row
        self._migrate()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HistoryStore({str(self.path)!r})"

    # -- schema --------------------------------------------------------
    @property
    def schema_version(self) -> int:
        try:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.OperationalError:
            return 0
        return int(row["value"]) if row is not None else 0

    def _migrate(self) -> None:
        version = self.schema_version
        if version > HISTORY_SCHEMA:
            raise HistoryError(
                f"history store {self.path} has schema v{version}; this "
                f"build understands up to v{HISTORY_SCHEMA} — refusing "
                f"to touch a newer database"
            )
        with self._conn:
            for from_version, step in _MIGRATIONS:
                if version == from_version:
                    step(self._conn)
                    version = from_version + 1
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) "
                "VALUES ('schema_version', ?)",
                (str(HISTORY_SCHEMA),),
            )

    # -- low-level append ----------------------------------------------
    def _new_batch(self, kind: str, source: str, commit: str) -> int:
        cur = self._conn.execute(
            "INSERT INTO batches (kind, source, commit_sha, ingested_at) "
            "VALUES (?, ?, ?, ?)",
            (kind, source, commit, time.time()),
        )
        return int(cur.lastrowid)

    def _insert_unique(
        self,
        table: str,
        columns: Sequence[str],
        rows: Sequence[Sequence[Any]],
        kind: str,
        source: str,
        commit: str,
    ) -> IngestResult:
        """Batch-insert rows whose last column is ``dedup_key``.

        A batch row is only created when at least one row is genuinely
        new, so a full-duplicate ingest leaves the database byte-stable
        (the idempotency contract).
        """
        fresh: List[Sequence[Any]] = []
        duplicates = 0
        for row in rows:
            dedup = row[-1]
            hit = self._conn.execute(
                f"SELECT 1 FROM {table} WHERE dedup_key = ?", (dedup,)
            ).fetchone()
            if hit is None:
                fresh.append(row)
            else:
                duplicates += 1
        if not fresh:
            return IngestResult(kind, 0, duplicates, None)
        with self._conn:
            batch_id = self._new_batch(kind, source, commit)
            placeholders = ", ".join("?" for _ in range(len(columns) + 1))
            cols = ", ".join(["batch_id", *columns])
            inserted = 0
            for row in fresh:
                cur = self._conn.execute(
                    f"INSERT OR IGNORE INTO {table} ({cols}) "
                    f"VALUES ({placeholders})",
                    (batch_id, *row),
                )
                inserted += cur.rowcount
        return IngestResult(
            kind, inserted, duplicates + len(fresh) - inserted, batch_id
        )

    # -- trial ingestion -----------------------------------------------
    _TRIAL_COLUMNS = (
        "commit_sha", "fingerprint", "spec_name", "publisher", "dataset",
        "epsilon", "k", "n", "seed", "ok", "seconds", "kl", "ks",
        "unit_mse", "unit_mae", "oracle_mse", "oracle_kind",
        "content_sha", "dedup_key",
    )

    def add_trials(
        self, rows: Iterable[TrialRow], source: str = "records"
    ) -> IngestResult:
        """Append trial observations (deduplicated; see module docs)."""
        rows = list(rows)
        commit = rows[0].commit if rows else "unknown"
        packed = [
            (
                r.commit, r.fingerprint, r.spec_name, r.publisher,
                r.dataset, r.epsilon, r.k, r.n, r.seed, int(r.ok),
                r.seconds, r.kl, r.ks, r.unit_mse, r.unit_mae,
                r.oracle_mse, r.oracle_kind, r.content_sha, r.dedup_key,
            )
            for r in rows
        ]
        return self._insert_unique(
            "trials", self._TRIAL_COLUMNS, packed, "journal", source,
            commit,
        )

    @staticmethod
    def _journal_latest(
        path: Union[str, Path]
    ) -> "List[Tuple[str, Any]]":
        """Latest ``(fingerprint, record)`` per journal cell."""
        from repro.robust.journal import CheckpointJournal, \
            record_from_payload

        journal = CheckpointJournal(path)
        latest: Dict[Tuple[str, str, str, int, float], Any] = {}
        for entry in journal.entries():
            key = entry["key"]
            cell = (
                entry.get("fingerprint", ""),
                key["spec_name"],
                key["publisher"],
                int(key["seed"]),
                float(key["epsilon"]),
            )
            latest[cell] = (
                entry.get("fingerprint", ""),
                record_from_payload(entry["payload"]),
            )
        return list(latest.values())

    def ingest_journal(
        self,
        path: Union[str, Path],
        commit: Optional[str] = None,
        n_bins: int = 64,
        total: int = 50_000,
    ) -> IngestResult:
        """Ingest a checkpoint journal (later entries win per cell).

        ``n_bins``/``total`` drive offline dataset reconstruction for
        oracle anchoring; they default to the ``run`` CLI defaults and
        must match the flags of the sweep that wrote the journal for
        the oracle column to be exact (mismatches degrade to ``NULL``,
        never to a wrong anchor).  Trial rows only — see
        :meth:`ingest_journal_utility` for the per-workload table.
        """
        commit = commit if commit is not None else default_commit()
        histograms: Dict[str, Any] = {}
        rows: List[TrialRow] = []
        for fingerprint, record in self._journal_latest(path):
            spec = record.spec_name
            if spec not in histograms:
                histograms[spec] = _reconstruct_histogram(
                    spec, n_bins, total
                )
            rows.append(trial_row_from_record(
                record, fingerprint, commit,
                histogram=histograms[spec],
            ))
        return self.add_trials(rows, source=str(path))

    def ingest_journal_utility(
        self,
        path: Union[str, Path],
        commit: Optional[str] = None,
        n_bins: int = 64,
        total: int = 50_000,
    ) -> IngestResult:
        """Derive per-workload utility rows from a journal (schema v3).

        Touches only the ``utility`` table, so it can re-process
        journals whose trial rows are already ingested — the engine
        behind ``history ingest --rebuild``.  Idempotent like every
        other ingest path.
        """
        commit = commit if commit is not None else default_commit()
        contexts: Dict[str, Tuple[Any, Any]] = {}
        rows: List[UtilityRow] = []
        for fingerprint, record in self._journal_latest(path):
            spec = record.spec_name
            if spec not in contexts:
                contexts[spec] = _utility_context(spec, n_bins, total)
            histogram, workloads = contexts[spec]
            rows.extend(utility_rows_from_record(
                record, fingerprint, commit,
                histogram=histogram, workloads=workloads,
            ))
        return self.add_utility(rows, source=str(path))

    # -- utility ingestion ---------------------------------------------
    _UTILITY_COLUMNS = (
        "commit_sha", "fingerprint", "spec_name", "family", "scenario",
        "publisher", "epsilon", "seed", "workload", "n", "total",
        "n_queries", "eff_queries", "mse", "mae", "scaled", "max_abs",
        "oracle_mse", "oracle_kind", "content_sha", "dedup_key",
    )

    def add_utility(
        self, rows: Iterable[UtilityRow], source: str = "records"
    ) -> IngestResult:
        """Append per-workload utility observations (deduplicated)."""
        rows = list(rows)
        commit = rows[0].commit if rows else "unknown"
        packed = [
            (
                r.commit, r.fingerprint, r.spec_name, r.family,
                r.scenario, r.publisher, r.epsilon, r.seed, r.workload,
                r.n, r.total, r.n_queries, r.eff_queries, r.mse, r.mae,
                r.scaled, r.max_abs, r.oracle_mse, r.oracle_kind,
                r.content_sha, r.dedup_key,
            )
            for r in rows
        ]
        return self._insert_unique(
            "utility", self._UTILITY_COLUMNS, packed, "utility", source,
            commit,
        )

    # -- bench ingestion -----------------------------------------------
    def ingest_bench_payload(
        self,
        payload: Dict[str, Any],
        bench_file: str,
        commit: Optional[str] = None,
    ) -> IngestResult:
        """Append one ``BENCH_*.json`` payload (see ``repro.perf.bench``)."""
        commit = commit if commit is not None else default_commit()
        profile = str(payload.get("profile", "unknown"))
        calibration = float(payload.get("calibration_seconds", 0.0))
        rows = []
        for key, entry in sorted(payload.get("entries", {}).items()):
            seconds = float(entry["seconds"])
            normalized = float(entry["normalized"])
            dedup = _content_sha({
                "commit": commit, "file": bench_file, "key": key,
                "seconds": seconds, "normalized": normalized,
                "calibration": calibration,
            })
            rows.append((
                commit, bench_file, profile, key, seconds, normalized,
                calibration, dedup,
            ))
        return self._insert_unique(
            "bench_entries",
            ("commit_sha", "bench_file", "profile", "key", "seconds",
             "normalized", "calibration", "dedup_key"),
            rows, "bench", bench_file, commit,
        )

    def ingest_bench(
        self, path: Union[str, Path], commit: Optional[str] = None
    ) -> IngestResult:
        path = Path(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        return self.ingest_bench_payload(payload, path.name, commit)

    # -- metrics ingestion ---------------------------------------------
    def ingest_metrics_payload(
        self,
        payload: Dict[str, Any],
        source: str,
        commit: Optional[str] = None,
    ) -> IngestResult:
        """Append the totals of one metrics-registry JSON rendering.

        Counters and gauges store their value; histograms store their
        ``_sum`` and ``_count`` (the buckets stay in the export file).
        """
        commit = commit if commit is not None else default_commit()
        rows = []

        def add(name: str, labels: Dict[str, Any], value: float) -> None:
            labels_text = json.dumps(labels, sort_keys=True)
            dedup = _content_sha({
                "commit": commit, "name": name, "labels": labels_text,
                "value": value,
            })
            rows.append((commit, name, labels_text, float(value), dedup))

        for name in sorted(payload):
            family = payload[name]
            if not isinstance(family, dict):
                continue
            for sample in family.get("samples", []):
                labels = sample.get("labels", {})
                if "value" in sample:
                    add(name, labels, sample["value"])
                else:
                    add(f"{name}_sum", labels, sample.get("sum", 0.0))
                    add(f"{name}_count", labels, sample.get("count", 0))
        return self._insert_unique(
            "metric_totals",
            ("commit_sha", "name", "labels", "value", "dedup_key"),
            rows, "metrics", source, commit,
        )

    def ingest_metrics(
        self, path: Union[str, Path], commit: Optional[str] = None
    ) -> IngestResult:
        path = Path(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        return self.ingest_metrics_payload(payload, path.name, commit)

    def ingest_registry(
        self, registry: Any, source: str = "registry",
        commit: Optional[str] = None,
    ) -> IngestResult:
        """Append a live :class:`repro.obs.metrics.MetricsRegistry`."""
        return self.ingest_metrics_payload(
            registry.render_json(), source, commit
        )

    # -- alerts --------------------------------------------------------
    def add_alerts(
        self,
        alerts: Sequence[Dict[str, Any]],
        source: str = "monitor",
        commit: Optional[str] = None,
    ) -> IngestResult:
        """Record fired straggler alerts (``ProgressMonitor.alerts``)."""
        commit = commit if commit is not None else default_commit()
        rows = []
        for alert in alerts:
            kind = str(alert.get("kind", "straggler"))
            spec = str(alert.get("spec", ""))
            seed = int(alert.get("seed", -1))
            age = float(alert.get("age_seconds", 0.0))
            threshold = float(alert.get("threshold", 0.0))
            dedup = _content_sha({
                "commit": commit, "kind": kind, "spec": spec,
                "seed": seed, "age": age, "threshold": threshold,
            })
            rows.append((commit, kind, spec, seed, age, threshold, dedup))
        return self._insert_unique(
            "alerts",
            ("commit_sha", "kind", "spec_name", "seed", "age_seconds",
             "threshold", "dedup_key"),
            rows, "alerts", source, commit,
        )

    # -- dispatch ------------------------------------------------------
    def ingest(
        self,
        path: Union[str, Path],
        commit: Optional[str] = None,
        n_bins: int = 64,
        total: int = 50_000,
    ) -> IngestResult:
        """Sniff ``path``'s type and ingest it (journal/bench/metrics)."""
        kind = sniff_source(path)
        if kind == "journal":
            return self.ingest_journal(
                path, commit=commit, n_bins=n_bins, total=total
            )
        if kind == "bench":
            return self.ingest_bench(path, commit=commit)
        return self.ingest_metrics(path, commit=commit)

    # -- queries -------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Row counts per table (dashboards, idempotency tests)."""
        out: Dict[str, int] = {}
        for table in ("batches", "trials", "bench_entries",
                      "metric_totals", "alerts", "utility"):
            row = self._conn.execute(
                f"SELECT COUNT(*) AS c FROM {table}"
            ).fetchone()
            out[table] = int(row["c"])
        return out

    def trial_cells(self) -> List[Tuple[str, str, float]]:
        """Distinct ``(spec_name, publisher, epsilon)`` cells, sorted."""
        rows = self._conn.execute(
            "SELECT DISTINCT spec_name, publisher, epsilon FROM trials "
            "ORDER BY spec_name, publisher, epsilon"
        ).fetchall()
        return [(r["spec_name"], r["publisher"], float(r["epsilon"]))
                for r in rows]

    def trial_series(
        self, spec_name: str, publisher: str, epsilon: float
    ) -> List[Dict[str, Any]]:
        """Per-batch aggregates for one cell, oldest batch first.

        Each point: batch/commit identity, seed counts, mean observed
        unit MSE/MAE, mean publish seconds, and the mean oracle
        prediction (``None`` when un-anchored), plus ``n``/``k`` hints.
        """
        rows = self._conn.execute(
            """
            SELECT batch_id, MIN(commit_sha) AS commit_sha,
                   SUM(ok) AS n_ok, COUNT(*) - SUM(ok) AS n_failed,
                   AVG(CASE WHEN ok THEN unit_mse END) AS mean_mse,
                   AVG(CASE WHEN ok THEN unit_mae END) AS mean_mae,
                   AVG(CASE WHEN ok THEN seconds END) AS mean_seconds,
                   AVG(CASE WHEN ok THEN oracle_mse END) AS oracle_mse,
                   MIN(oracle_kind) AS oracle_kind,
                   MAX(n) AS n, MAX(k) AS k
            FROM trials
            WHERE spec_name = ? AND publisher = ? AND epsilon = ?
            GROUP BY batch_id ORDER BY batch_id
            """,
            (spec_name, publisher, float(epsilon)),
        ).fetchall()
        return [dict(r) for r in rows]

    def utility_families(self) -> List[str]:
        """Distinct scenario families with utility rows, sorted."""
        rows = self._conn.execute(
            "SELECT DISTINCT family FROM utility ORDER BY family"
        ).fetchall()
        return [r["family"] for r in rows]

    def utility_cells(
        self, family: Optional[str] = None
    ) -> List[Tuple[str, str, str, float, str]]:
        """Distinct ``(family, scenario, publisher, ε, workload)`` cells."""
        sql = (
            "SELECT DISTINCT family, scenario, publisher, epsilon, "
            "workload FROM utility"
        )
        params: Tuple[Any, ...] = ()
        if family is not None:
            sql += " WHERE family = ?"
            params = (family,)
        sql += " ORDER BY family, scenario, publisher, epsilon, workload"
        rows = self._conn.execute(sql, params).fetchall()
        return [
            (r["family"], r["scenario"], r["publisher"],
             float(r["epsilon"]), r["workload"])
            for r in rows
        ]

    def utility_series(
        self,
        family: str,
        scenario: str,
        publisher: str,
        epsilon: float,
        workload: str,
    ) -> List[Dict[str, Any]]:
        """Per-batch aggregates for one utility cell, oldest first.

        Each point: batch/commit identity, seed count, mean observed
        MSE/MAE/scaled error, the mean oracle prediction (``None`` when
        un-anchored) and its kind, plus ``n``/``eff_queries`` hints for
        band sizing.
        """
        rows = self._conn.execute(
            """
            SELECT batch_id, MIN(commit_sha) AS commit_sha,
                   COUNT(*) AS n_ok,
                   AVG(mse) AS mean_mse, AVG(mae) AS mean_mae,
                   AVG(scaled) AS mean_scaled,
                   AVG(oracle_mse) AS oracle_mse,
                   MIN(oracle_kind) AS oracle_kind,
                   MAX(n) AS n, MAX(eff_queries) AS eff_queries
            FROM utility
            WHERE family = ? AND scenario = ? AND publisher = ?
              AND epsilon = ? AND workload = ?
            GROUP BY batch_id ORDER BY batch_id
            """,
            (family, scenario, publisher, float(epsilon), workload),
        ).fetchall()
        return [dict(r) for r in rows]

    def bench_keys(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT DISTINCT key FROM bench_entries ORDER BY key"
        ).fetchall()
        return [r["key"] for r in rows]

    def bench_series(self, key: str) -> List[Dict[str, Any]]:
        """Trajectory of one benchmark key, oldest batch first."""
        rows = self._conn.execute(
            """
            SELECT batch_id, commit_sha, bench_file, profile, seconds,
                   normalized, calibration
            FROM bench_entries WHERE key = ? ORDER BY batch_id, id
            """,
            (key,),
        ).fetchall()
        return [dict(r) for r in rows]

    def metric_series(self, name: str) -> List[Dict[str, Any]]:
        rows = self._conn.execute(
            """
            SELECT batch_id, commit_sha, labels, value
            FROM metric_totals WHERE name = ? ORDER BY batch_id, id
            """,
            (name,),
        ).fetchall()
        return [dict(r) for r in rows]

    def alert_rows(self) -> List[Dict[str, Any]]:
        rows = self._conn.execute(
            """
            SELECT batch_id, commit_sha, kind, spec_name, seed,
                   age_seconds, threshold
            FROM alerts ORDER BY batch_id, id
            """
        ).fetchall()
        return [dict(r) for r in rows]

    def prior_cell_stats(
        self,
        spec_name: str,
        publisher: str,
        epsilon: float,
        exclude_shas: Sequence[str] = (),
    ) -> Optional[Dict[str, Any]]:
        """Mean observed stats for a cell, excluding given content SHAs.

        Backs the run report's "vs. previous runs of this spec" section:
        the report excludes the journal's own rows by content hash, so
        the deltas compare against genuinely *prior* observations.
        """
        exclude = set(exclude_shas)
        rows = self._conn.execute(
            """
            SELECT content_sha, unit_mse, seconds FROM trials
            WHERE spec_name = ? AND publisher = ? AND epsilon = ?
              AND ok = 1
            """,
            (spec_name, publisher, float(epsilon)),
        ).fetchall()
        mses = [r["unit_mse"] for r in rows
                if r["content_sha"] not in exclude
                and r["unit_mse"] is not None]
        secs = [r["seconds"] for r in rows
                if r["content_sha"] not in exclude
                and r["seconds"] is not None]
        if not mses and not secs:
            return None
        return {
            "n_trials": max(len(mses), len(secs)),
            "mean_mse": sum(mses) / len(mses) if mses else None,
            "mean_seconds": sum(secs) / len(secs) if secs else None,
        }
