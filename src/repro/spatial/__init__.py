"""Two-dimensional (spatial) histogram publication — extension.

The target paper is one-dimensional; its follow-on literature (DPCube,
UG/AG grids, PrivTree quadtrees) moved to spatial data.  This subpackage
provides the 2-D substrate and three classic publishers so the library
covers that adjacent space:

* :class:`Identity2D` — Laplace noise per cell (the 2-D Dwork baseline).
* :class:`UniformGrid` — coarse ``m x m`` grid sized by the
  Qardaji et al. (ICDE 2013) rule, uniform within cells.
* :class:`AdaptiveGrid` — two-level grid: a coarse pass sizes a finer
  per-cell second-level grid from the noisy first-level counts.
* :class:`QuadTree` — fixed-depth quadtree with per-level budget and
  leaf publication.
"""

from repro.spatial.histogram2d import Histogram2D, RectQuery
from repro.spatial.hilbert import HilbertPublisher2D, hilbert_order
from repro.spatial.publishers import (
    AdaptiveGrid,
    Identity2D,
    QuadTree,
    UniformGrid,
)
from repro.spatial.workloads import random_rectangles

__all__ = [
    "Histogram2D",
    "RectQuery",
    "Identity2D",
    "UniformGrid",
    "AdaptiveGrid",
    "QuadTree",
    "HilbertPublisher2D",
    "hilbert_order",
    "random_rectangles",
]
