"""The 2-D histogram substrate: a count matrix plus rectangle queries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro._validation import check_integer

__all__ = ["Histogram2D", "RectQuery"]


@dataclass(frozen=True, order=True)
class RectQuery:
    """Inclusive cell rectangle ``[row_lo..row_hi] x [col_lo..col_hi]``."""

    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int

    def __post_init__(self) -> None:
        for name in ("row_lo", "row_hi", "col_lo", "col_hi"):
            check_integer(getattr(self, name), name, minimum=0)
        if self.row_lo > self.row_hi or self.col_lo > self.col_hi:
            raise ValueError(f"inverted rectangle: {self}")

    @property
    def area(self) -> int:
        """Number of cells covered."""
        return (self.row_hi - self.row_lo + 1) * (self.col_hi - self.col_lo + 1)

    def validate_for(self, shape: Tuple[int, int]) -> None:
        """Raise if the rectangle exceeds a grid of the given shape."""
        rows, cols = shape
        if self.row_hi >= rows or self.col_hi >= cols:
            raise ValueError(f"rectangle {self} exceeds grid {shape}")


@dataclass(frozen=True)
class Histogram2D:
    """An immutable 2-D histogram over a ``rows x cols`` cell grid."""

    counts: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        arr = np.asarray(self.counts, dtype=np.float64)
        if arr.ndim != 2 or arr.size == 0:
            raise ValueError(f"counts must be a non-empty 2-D array, "
                             f"got shape {arr.shape}")
        if not np.all(np.isfinite(arr)):
            raise ValueError("counts must be finite")
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "counts", arr)

    @classmethod
    def from_points(
        cls,
        xs: Sequence[float],
        ys: Sequence[float],
        shape: Tuple[int, int],
        bounds: Tuple[float, float, float, float],
        name: str = "",
    ) -> "Histogram2D":
        """Grid raw 2-D points.  ``bounds = (x_lo, x_hi, y_lo, y_hi)``."""
        rows, cols = shape
        check_integer(rows, "rows", minimum=1)
        check_integer(cols, "cols", minimum=1)
        x_lo, x_hi, y_lo, y_hi = (float(b) for b in bounds)
        if not (x_lo < x_hi and y_lo < y_hi):
            raise ValueError(f"invalid bounds {bounds}")
        counts, _, _ = np.histogram2d(
            np.asarray(xs, dtype=float),
            np.asarray(ys, dtype=float),
            bins=(rows, cols),
            range=((x_lo, x_hi), (y_lo, y_hi)),
        )
        return cls(counts=counts, name=name)

    @property
    def shape(self) -> Tuple[int, int]:
        """(rows, cols) of the cell grid."""
        return self.counts.shape  # type: ignore[return-value]

    @property
    def total(self) -> float:
        """Sum of all cells."""
        return float(self.counts.sum())

    def rect_sum(self, query: RectQuery) -> float:
        """Count inside an inclusive cell rectangle."""
        query.validate_for(self.shape)
        block = self.counts[
            query.row_lo : query.row_hi + 1, query.col_lo : query.col_hi + 1
        ]
        return float(block.sum())

    def evaluate(self, queries: Sequence[RectQuery]) -> np.ndarray:
        """Answer a batch of rectangle queries via a 2-D prefix table."""
        rows, cols = self.shape
        prefix = np.zeros((rows + 1, cols + 1), dtype=np.float64)
        prefix[1:, 1:] = self.counts.cumsum(axis=0).cumsum(axis=1)
        out = np.empty(len(queries), dtype=np.float64)
        for i, q in enumerate(queries):
            q.validate_for(self.shape)
            out[i] = (
                prefix[q.row_hi + 1, q.col_hi + 1]
                - prefix[q.row_lo, q.col_hi + 1]
                - prefix[q.row_hi + 1, q.col_lo]
                + prefix[q.row_lo, q.col_lo]
            )
        return out

    def with_counts(self, counts: np.ndarray) -> "Histogram2D":
        """New histogram with the same name and replaced counts."""
        return Histogram2D(counts=np.asarray(counts, dtype=float),
                           name=self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram2D):
            return NotImplemented
        return self.name == other.name and np.array_equal(
            self.counts, other.counts
        )

    def __hash__(self) -> int:
        return hash((self.name, self.counts.tobytes(), self.shape))
