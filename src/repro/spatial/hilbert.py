"""Hilbert-curve flattening: run 1-D publishers on 2-D data.

The locality-preserving Hilbert space-filling curve maps a ``2^p x 2^p``
grid to a line such that curve-adjacent cells are grid-adjacent.
Flattening a 2-D histogram along the curve lets the paper's 1-D
algorithms (NoiseFirst, StructureFirst, ...) exploit 2-D locality: a
dense 2-D cluster becomes a contiguous 1-D run that bucket merging
captures.  This is the technique behind the multi-dimensional
extensions of the NF/SF line (e.g. mIHP) and the DP-Hilbert literature.

:class:`HilbertPublisher2D` wraps any 1-D :class:`~repro.core.Publisher`
into a :class:`~repro.spatial.publishers.Publisher2D`.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro._validation import check_integer
from repro.accounting.accountant import Accountant
from repro.core.publisher import Publisher
from repro.hist.domain import Domain
from repro.hist.histogram import Histogram
from repro.spatial.histogram2d import Histogram2D
from repro.spatial.publishers import Publisher2D

__all__ = ["hilbert_order", "HilbertPublisher2D"]


def _rotate(s: int, x: int, y: int, rx: int, ry: int) -> Tuple[int, int]:
    """Quadrant rotation of the classic iterative d2xy construction."""
    if ry == 0:
        if rx == 1:
            x = s - 1 - x
            y = s - 1 - y
        x, y = y, x
    return x, y


def _d_to_xy(order: int, d: int) -> Tuple[int, int]:
    """Curve position ``d`` -> (x, y) on a ``2^order`` grid (Wikipedia
    iterative construction)."""
    x = y = 0
    t = d
    s = 1
    side = 1 << order
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def hilbert_order(order: int) -> np.ndarray:
    """Row-major cell indices of a ``2^order`` grid in curve order.

    ``hilbert_order(p)[d]`` is the flat (row-major) index of the ``d``-th
    cell along the Hilbert curve; it is a permutation of
    ``range(4**p)``.
    """
    check_integer(order, "order", minimum=0)
    side = 1 << order
    out = np.empty(side * side, dtype=np.int64)
    for d in range(side * side):
        x, y = _d_to_xy(order, d)
        out[d] = x * side + y
    return out


class HilbertPublisher2D(Publisher2D):
    """Run a 1-D publisher along the Hilbert curve of a square grid.

    The grid must be square with power-of-two side (that is where the
    curve is defined); :class:`~repro.spatial.Histogram2D` inputs of
    other shapes are rejected with a clear error rather than silently
    padded (padding would change the curve's locality).
    """

    def __init__(self, inner: Publisher) -> None:
        if not isinstance(inner, Publisher):
            raise TypeError(
                f"inner must be a 1-D Publisher, got {type(inner).__name__}"
            )
        self.inner = inner
        self.name = f"hilbert-{inner.name}"

    def _publish(
        self,
        histogram: Histogram2D,
        accountant: Accountant,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, Dict[str, Any]]:
        rows, cols = histogram.shape
        if rows != cols or rows & (rows - 1):
            raise ValueError(
                f"Hilbert flattening needs a square power-of-two grid, "
                f"got {histogram.shape}"
            )
        order = int(rows).bit_length() - 1
        curve = hilbert_order(order)

        flat = histogram.counts.reshape(-1)[curve]
        line = Histogram(
            domain=Domain(size=len(flat), name="hilbert"), counts=flat
        )
        # Delegate the whole budget to the inner 1-D publisher; its own
        # accountant audits the composition, and we mirror the spend in
        # ours so the 2-D ledger is complete.
        result = self.inner.publish(line, accountant.remaining, rng=rng)
        accountant.spend(result.accountant.spent, purpose=f"inner:{self.inner.name}")

        unflattened = np.empty(rows * cols, dtype=np.float64)
        unflattened[curve] = result.histogram.counts
        meta: Dict[str, Any] = {"order": order, "inner": dict(result.meta)}
        return unflattened.reshape(rows, cols), meta
