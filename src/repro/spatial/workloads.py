"""Rectangle-query workloads for 2-D experiments."""

from __future__ import annotations

from typing import List, Tuple

from repro._validation import as_rng, check_integer
from repro.spatial.histogram2d import RectQuery

__all__ = ["random_rectangles"]


def random_rectangles(
    shape: Tuple[int, int],
    count: int,
    rng: "object | int | None" = 0,
) -> List[RectQuery]:
    """``count`` rectangles with corners uniform over the grid."""
    rows, cols = shape
    check_integer(rows, "rows", minimum=1)
    check_integer(cols, "cols", minimum=1)
    check_integer(count, "count", minimum=1)
    generator = as_rng(rng)
    queries = []
    for _ in range(count):
        r1, r2 = sorted(generator.integers(0, rows, size=2))
        c1, c2 = sorted(generator.integers(0, cols, size=2))
        queries.append(RectQuery(int(r1), int(r2), int(c1), int(c2)))
    return queries
