"""Spatial publishers: identity, uniform grid, adaptive grid, quadtree.

All follow the 1-D :class:`~repro.core.Publisher` discipline — budgets
drawn through an :class:`~repro.accounting.Accountant`, seeded rngs,
``PublishResult2D`` carrying the ledger — but operate on
:class:`~repro.spatial.Histogram2D`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro._validation import as_rng, check_integer
from repro.accounting.accountant import Accountant
from repro.accounting.budget import EPS_TOL, PrivacyBudget
from repro.exceptions import ReproError
from repro.mechanisms.laplace import laplace_noise
from repro.spatial.histogram2d import Histogram2D

__all__ = [
    "PublishResult2D",
    "Publisher2D",
    "Identity2D",
    "UniformGrid",
    "AdaptiveGrid",
    "QuadTree",
]


@dataclass(frozen=True)
class PublishResult2D:
    """Outcome of one 2-D publication (mirrors the 1-D PublishResult)."""

    histogram: Histogram2D
    accountant: Accountant
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def epsilon_spent(self) -> float:
        """Composed epsilon actually spent, from the ledger."""
        return self.accountant.spent.epsilon


class Publisher2D(abc.ABC):
    """Base class for differentially private 2-D histogram publishers."""

    name: str = "publisher2d"

    def publish(
        self,
        histogram: Histogram2D,
        budget: "PrivacyBudget | float",
        rng: "np.random.Generator | int | None" = None,
    ) -> PublishResult2D:
        """Publish a sanitized version of ``histogram`` under ``budget``."""
        if not isinstance(histogram, Histogram2D):
            raise TypeError(
                f"histogram must be a Histogram2D, got {type(histogram).__name__}"
            )
        if isinstance(budget, (int, float)) and not isinstance(budget, bool):
            budget = PrivacyBudget(float(budget))
        if budget.epsilon <= 0:
            raise ValueError(f"budget epsilon must be > 0, got {budget.epsilon}")
        accountant = Accountant(budget)
        generator = as_rng(rng)
        counts, meta = self._publish(histogram, accountant, generator)
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape != histogram.counts.shape:
            raise ReproError(
                f"{self.name}: published shape {counts.shape} for a "
                f"{histogram.counts.shape} histogram"
            )
        if accountant.spent.epsilon > budget.epsilon + EPS_TOL:
            raise ReproError(f"{self.name}: ledger shows overspend")
        return PublishResult2D(
            histogram=histogram.with_counts(counts),
            accountant=accountant,
            meta=meta,
        )

    @abc.abstractmethod
    def _publish(
        self,
        histogram: Histogram2D,
        accountant: Accountant,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, Dict[str, Any]]:
        """Algorithm body: return (sanitized counts, metadata)."""


class Identity2D(Publisher2D):
    """Laplace noise on every cell — the 2-D Dwork baseline."""

    name = "identity2d"

    def _publish(self, histogram, accountant, rng):
        epsilon = accountant.total.epsilon
        accountant.spend(accountant.total, purpose="laplace-noise-per-cell")
        noise = laplace_noise(epsilon, size=histogram.shape, rng=rng)
        return histogram.counts + noise, {}


def _grid_side(total: float, epsilon: float, c: float) -> int:
    """Qardaji et al.'s UG sizing rule: ``m = sqrt(N eps / c)``."""
    return max(1, int(round(math.sqrt(max(total, 1.0) * epsilon / c))))


def _block_edges(size: int, blocks: int) -> np.ndarray:
    """``blocks + 1`` integer edges splitting ``size`` cells evenly."""
    return np.linspace(0, size, blocks + 1).round().astype(int)


class UniformGrid(Publisher2D):
    """One coarse ``m x m`` grid; noisy block counts spread uniformly.

    ``m`` defaults to the Qardaji et al. (ICDE 2013) rule
    ``sqrt(N eps / c)`` with ``c = 10``, clamped to the data resolution.
    """

    name = "uniformgrid"

    def __init__(self, m: Optional[int] = None, c: float = 10.0) -> None:
        if m is not None:
            check_integer(m, "m", minimum=1)
        if c <= 0:
            raise ValueError(f"c must be > 0, got {c}")
        self.m = m
        self.c = c

    def _publish(self, histogram, accountant, rng):
        rows, cols = histogram.shape
        epsilon = accountant.total.epsilon
        m = self.m if self.m is not None else _grid_side(
            histogram.total, epsilon, self.c
        )
        m_rows, m_cols = min(m, rows), min(m, cols)
        accountant.spend(accountant.total, purpose="laplace-noise-blocks")

        row_edges = _block_edges(rows, m_rows)
        col_edges = _block_edges(cols, m_cols)
        out = np.empty((rows, cols), dtype=np.float64)
        noise = laplace_noise(epsilon, size=(m_rows, m_cols), rng=rng)
        for i in range(m_rows):
            for j in range(m_cols):
                r0, r1 = row_edges[i], row_edges[i + 1]
                c0, c1 = col_edges[j], col_edges[j + 1]
                if r0 == r1 or c0 == c1:
                    continue
                block = histogram.counts[r0:r1, c0:c1]
                noisy = block.sum() + noise[i, j]
                out[r0:r1, c0:c1] = noisy / block.size
        return out, {"m_rows": m_rows, "m_cols": m_cols}


class AdaptiveGrid(Publisher2D):
    """Two-level adaptive grid (Qardaji et al.'s AG).

    Level 1: a coarse grid measured with ``alpha * eps``.  Level 2: each
    level-1 block is re-partitioned into ``m2 x m2`` sub-blocks with
    ``m2 = sqrt(max(noisy_count, 0) * (1-alpha) * eps / c2)``, measured
    with the remaining budget (parallel across blocks — they are
    disjoint).  Dense regions get finer resolution; empty regions are
    left coarse.
    """

    name = "adaptivegrid"

    def __init__(self, alpha: float = 0.5, c1: float = 10.0, c2: float = 5.0) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if c1 <= 0 or c2 <= 0:
            raise ValueError("c1 and c2 must be > 0")
        self.alpha = alpha
        self.c1 = c1
        self.c2 = c2

    def _publish(self, histogram, accountant, rng):
        rows, cols = histogram.shape
        eps_total = accountant.total.epsilon
        eps1 = eps_total * self.alpha
        eps2 = eps_total - eps1

        m1 = min(_grid_side(histogram.total, eps1, self.c1), rows, cols)
        accountant.spend(eps1, purpose="level1-blocks")
        row_edges = _block_edges(rows, m1)
        col_edges = _block_edges(cols, m1)
        level1_noise = laplace_noise(eps1, size=(m1, m1), rng=rng)

        accountant.spend(eps2, purpose="level2-blocks",
                         parallel_group="level2")
        out = np.empty((rows, cols), dtype=np.float64)
        sub_blocks = 0
        for i in range(m1):
            for j in range(m1):
                r0, r1 = row_edges[i], row_edges[i + 1]
                c0, c1 = col_edges[j], col_edges[j + 1]
                if r0 == r1 or c0 == c1:
                    continue
                block = histogram.counts[r0:r1, c0:c1]
                noisy1 = float(block.sum() + level1_noise[i, j])
                m2 = max(
                    1,
                    int(round(math.sqrt(max(noisy1, 0.0) * eps2 / self.c2))),
                )
                m2 = min(m2, r1 - r0, c1 - c0)
                sub_rows = _block_edges(r1 - r0, m2)
                sub_cols = _block_edges(c1 - c0, m2)
                noise2 = laplace_noise(eps2, size=(m2, m2), rng=rng)
                for a in range(m2):
                    for b in range(m2):
                        sr0, sr1 = r0 + sub_rows[a], r0 + sub_rows[a + 1]
                        sc0, sc1 = c0 + sub_cols[b], c0 + sub_cols[b + 1]
                        if sr0 == sr1 or sc0 == sc1:
                            continue
                        sub = histogram.counts[sr0:sr1, sc0:sc1]
                        noisy2 = sub.sum() + noise2[a, b]
                        out[sr0:sr1, sc0:sc1] = noisy2 / sub.size
                        sub_blocks += 1
        return out, {"m1": m1, "sub_blocks": sub_blocks,
                     "eps1": eps1, "eps2": eps2}


class QuadTree(Publisher2D):
    """Fixed-depth quadtree: each level measured with ``eps / depth``.

    The grid is recursively split in four; every node's count is
    measured (levels compose sequentially, nodes within a level in
    parallel) and the leaves are published, each leaf's noisy count
    spread uniformly over its cells.  Internal measurements refine the
    leaves with a simple top-down proportional correction.
    """

    name = "quadtree"

    def __init__(self, depth: int = 4) -> None:
        check_integer(depth, "depth", minimum=1)
        self.depth = depth

    def _publish(self, histogram, accountant, rng):
        rows, cols = histogram.shape
        eps_level = accountant.total.epsilon / self.depth
        out = np.zeros((rows, cols), dtype=np.float64)

        # Iterative breadth-first split; regions as (r0, r1, c0, c1, est).
        accountant.spend(eps_level, purpose="level-0", parallel_group="l0")
        root_sum = histogram.counts.sum() + float(
            laplace_noise(eps_level, rng=rng)[0]
        )
        regions = [(0, rows, 0, cols, root_sum)]
        for level in range(1, self.depth):
            accountant.spend(eps_level, purpose=f"level-{level}",
                             parallel_group=f"l{level}")
            next_regions = []
            for r0, r1, c0, c1, parent_est in regions:
                if (r1 - r0) <= 1 and (c1 - c0) <= 1:
                    next_regions.append((r0, r1, c0, c1, parent_est))
                    continue
                rm = (r0 + r1) // 2 if r1 - r0 > 1 else r1
                cm = (c0 + c1) // 2 if c1 - c0 > 1 else c1
                quads = [
                    (r0, rm, c0, cm), (r0, rm, cm, c1),
                    (rm, r1, c0, cm), (rm, r1, cm, c1),
                ]
                quads = [q for q in quads if q[0] < q[1] and q[2] < q[3]]
                noisy = []
                for (qr0, qr1, qc0, qc1) in quads:
                    true_sum = histogram.counts[qr0:qr1, qc0:qc1].sum()
                    noisy.append(
                        true_sum + float(laplace_noise(eps_level, rng=rng)[0])
                    )
                # Proportional consistency: clamp the children at zero
                # (free post-processing) and rescale them to the parent's
                # estimate.  When the clamped children carry no mass the
                # rescale is ill-conditioned, so fall back to splitting
                # the parent by area.
                clamped = [max(v, 0.0) for v in noisy]
                parent_est = max(parent_est, 0.0)
                child_total = sum(clamped)
                if child_total > 1e-9:
                    for (quad, est) in zip(quads, clamped):
                        next_regions.append(
                            (*quad, est * parent_est / child_total)
                        )
                else:
                    total_area = sum(
                        (q[1] - q[0]) * (q[3] - q[2]) for q in quads
                    )
                    for quad in quads:
                        area = (quad[1] - quad[0]) * (quad[3] - quad[2])
                        next_regions.append(
                            (*quad, parent_est * area / total_area)
                        )
            regions = next_regions

        for r0, r1, c0, c1, est in regions:
            out[r0:r1, c0:c1] = est / ((r1 - r0) * (c1 - c0))
        return out, {"depth": self.depth, "leaves": len(regions)}
