"""Error metrics used in the evaluation (Table 3 of the survey lineage:
MAE, MSE, KL divergence, KS distance, scaled average per-query error)."""

from repro.metrics.errors import (
    mean_absolute_error,
    mean_squared_error,
    root_mean_squared_error,
    scaled_average_error,
)
from repro.metrics.divergences import kl_divergence, ks_distance
from repro.metrics.evaluate import WorkloadErrors, evaluate_workload_error

__all__ = [
    "mean_absolute_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "scaled_average_error",
    "kl_divergence",
    "ks_distance",
    "WorkloadErrors",
    "evaluate_workload_error",
]
