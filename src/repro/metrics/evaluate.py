"""Workload-level error evaluation.

Bundles the per-query error of a published histogram against the truth
under a given workload into one :class:`WorkloadErrors` record with all
the metrics the benches report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.hist.histogram import Histogram
from repro.metrics.errors import (
    mean_absolute_error,
    mean_squared_error,
    scaled_average_error,
)
from repro.workloads.workload import Workload

__all__ = ["WorkloadErrors", "evaluate_workload_error"]


@dataclass(frozen=True)
class WorkloadErrors:
    """Error summary of one published histogram under one workload."""

    workload: str
    n_queries: int
    mae: float
    mse: float
    scaled: float
    max_abs: float

    def as_dict(self) -> Dict[str, float]:
        """Metrics as a plain dict (for aggregation and table rendering)."""
        return {
            "mae": self.mae,
            "mse": self.mse,
            "scaled": self.scaled,
            "max_abs": self.max_abs,
        }


def evaluate_workload_error(
    truth: Histogram,
    published: Histogram,
    workload: Workload,
) -> WorkloadErrors:
    """Evaluate ``published`` against ``truth`` on every workload query."""
    truth.domain.require_same(published.domain)
    true_answers = workload.evaluate(truth)
    est_answers = workload.evaluate(published)
    return WorkloadErrors(
        workload=workload.name,
        n_queries=len(workload),
        mae=mean_absolute_error(true_answers, est_answers),
        mse=mean_squared_error(true_answers, est_answers),
        scaled=scaled_average_error(true_answers, est_answers),
        max_abs=float(np.max(np.abs(true_answers - est_answers))),
    )
