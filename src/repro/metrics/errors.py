"""Elementwise error metrics between true and published answers."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._validation import check_counts, check_positive

__all__ = [
    "mean_absolute_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "scaled_average_error",
]


def _paired(truth: Sequence[float], estimate: Sequence[float]):
    t = check_counts(truth, "truth")
    e = check_counts(estimate, "estimate")
    if len(t) != len(e):
        raise ValueError(
            f"truth has {len(t)} entries but estimate has {len(e)}"
        )
    return t, e


def mean_absolute_error(truth: Sequence[float], estimate: Sequence[float]) -> float:
    """MAE: mean of |truth - estimate|."""
    t, e = _paired(truth, estimate)
    return float(np.abs(t - e).mean())


def mean_squared_error(truth: Sequence[float], estimate: Sequence[float]) -> float:
    """MSE: mean of (truth - estimate)**2."""
    t, e = _paired(truth, estimate)
    diff = t - e
    return float((diff * diff).mean())


def root_mean_squared_error(
    truth: Sequence[float], estimate: Sequence[float]
) -> float:
    """RMSE: sqrt of the MSE."""
    return float(np.sqrt(mean_squared_error(truth, estimate)))


def scaled_average_error(
    truth: Sequence[float],
    estimate: Sequence[float],
    scale: "float | None" = None,
) -> float:
    """Average absolute error scaled by the data magnitude.

    ``scale`` defaults to the mean true answer (floored at 1 to avoid
    division blow-ups on empty workloads), giving a unit-free error
    comparable across datasets of different volume.
    """
    t, e = _paired(truth, estimate)
    if scale is None:
        scale = max(float(np.abs(t).mean()), 1.0)
    else:
        check_positive(scale, "scale")
    return mean_absolute_error(t, e) / float(scale)
