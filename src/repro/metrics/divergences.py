"""Distribution-level divergences between true and published histograms."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._validation import check_counts

__all__ = ["kl_divergence", "ks_distance"]


def _as_distribution(counts: Sequence[float], name: str) -> np.ndarray:
    """Clamp negatives, normalize to a probability vector.

    A histogram that is all-zero (or all-negative after noising) maps to
    the uniform distribution, matching :meth:`Histogram.normalized`.
    """
    arr = check_counts(counts, name)
    clamped = np.clip(arr, 0.0, None)
    total = clamped.sum()
    if total <= 0:
        return np.full(len(arr), 1.0 / len(arr))
    return clamped / total


def kl_divergence(
    truth: Sequence[float],
    estimate: Sequence[float],
    smoothing: float = 1e-9,
) -> float:
    """KL(P_truth || P_estimate) with additive smoothing.

    Both inputs are count vectors; they are clamped and normalized first.
    ``smoothing`` mass is mixed into both distributions so bins where the
    estimate is zero but the truth is not stay finite (this matches how
    the empirical DP-histogram literature reports KL on noisy outputs).
    """
    p = _as_distribution(truth, "truth")
    q = _as_distribution(estimate, "estimate")
    if len(p) != len(q):
        raise ValueError(f"truth has {len(p)} bins but estimate has {len(q)}")
    if smoothing < 0:
        raise ValueError(f"smoothing must be >= 0, got {smoothing}")
    if smoothing > 0:
        n = len(p)
        p = (p + smoothing) / (1.0 + n * smoothing)
        q = (q + smoothing) / (1.0 + n * smoothing)
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def ks_distance(truth: Sequence[float], estimate: Sequence[float]) -> float:
    """Kolmogorov–Smirnov distance between the two normalized CDFs."""
    p = _as_distribution(truth, "truth")
    q = _as_distribution(estimate, "estimate")
    if len(p) != len(q):
        raise ValueError(f"truth has {len(p)} bins but estimate has {len(q)}")
    return float(np.max(np.abs(np.cumsum(p) - np.cumsum(q))))
