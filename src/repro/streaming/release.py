"""Streaming histogram publication under w-event privacy.

w-event privacy (Kellaris et al., VLDB 2014) requires that any window of
``w`` consecutive timesteps composes to at most ``eps``:
``sum_{t in window} eps_t <= eps``.  :class:`WEventAccountant` enforces
exactly that sliding-window constraint; the two publishers implement the
uniform and threshold-release strategies on top of it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

import numpy as np

from repro._validation import as_rng, check_integer, check_positive
from repro.exceptions import BudgetExceededError
from repro.hist.histogram import Histogram
from repro.mechanisms.laplace import laplace_noise

__all__ = [
    "WEventAccountant",
    "StreamRelease",
    "UniformStream",
    "ThresholdStream",
]


class WEventAccountant:
    """Sliding-window budget enforcement for w-event privacy.

    ``spend(eps_t)`` is called once per timestep (0 for a free
    republication); the accountant raises when any ``w``-window would
    exceed the total.
    """

    def __init__(self, epsilon: float, w: int) -> None:
        check_positive(epsilon, "epsilon")
        check_integer(w, "w", minimum=1)
        self.epsilon = float(epsilon)
        self.w = w
        self._window: Deque[float] = deque(maxlen=w)
        self._history: List[float] = []

    @property
    def window_spent(self) -> float:
        """Budget spent over the last ``w`` timesteps (inclusive)."""
        return float(sum(self._window))

    @property
    def window_remaining(self) -> float:
        """Budget spendable *this* timestep without violating w-event.

        The new spend shares a window with only the previous ``w - 1``
        timesteps — the oldest entry of the deque falls out of every
        window containing the new timestep.
        """
        if self.w == 1:
            return self.epsilon
        recent = list(self._window)[-(self.w - 1):]
        return max(self.epsilon - float(sum(recent)), 0.0)

    def spend(self, eps_t: float) -> None:
        """Record this timestep's spend; raise on a window violation."""
        if eps_t < 0:
            raise ValueError(f"eps_t must be >= 0, got {eps_t}")
        if eps_t > self.window_remaining + 1e-9:
            raise BudgetExceededError(
                requested=eps_t, remaining=self.window_remaining
            )
        self._window.append(float(eps_t))
        self._history.append(float(eps_t))

    def history(self) -> List[float]:
        """Per-timestep spends, in order."""
        return list(self._history)

    def max_window_total(self) -> float:
        """Largest composed spend over any w-window seen so far."""
        h = self._history
        if not h:
            return 0.0
        return max(
            sum(h[max(0, i - self.w + 1) : i + 1]) for i in range(len(h))
        )


@dataclass(frozen=True)
class StreamRelease:
    """One timestep's output: the released histogram plus diagnostics."""

    t: int
    histogram: Histogram
    fresh: bool
    eps_spent: float
    meta: Dict[str, Any] = field(default_factory=dict)


class UniformStream:
    """Spend ``eps / w`` at every timestep (the budget-uniform baseline)."""

    name = "uniform-stream"

    def __init__(self, epsilon: float, w: int) -> None:
        self.accountant = WEventAccountant(epsilon, w)
        self._eps_step = epsilon / w

    def release(
        self,
        histogram: Histogram,
        rng: "np.random.Generator | int | None" = None,
    ) -> StreamRelease:
        """Publish this timestep's histogram with the fixed per-step share."""
        generator = as_rng(rng)
        self.accountant.spend(self._eps_step)
        noise = laplace_noise(self._eps_step, size=histogram.size,
                              rng=generator)
        t = len(self.accountant.history()) - 1
        return StreamRelease(
            t=t,
            histogram=histogram.with_counts(histogram.counts + noise),
            fresh=True,
            eps_spent=self._eps_step,
        )


class ThresholdStream:
    """DSFT-style threshold release.

    Each timestep spends a small *test* budget measuring the L1 distance
    per bin between the current data and the last release.  If the noisy
    distance clears ``threshold`` the remaining per-step budget buys a
    fresh release; otherwise the previous release is republished (free
    under DP — no new data touched beyond the test).

    Parameters
    ----------
    epsilon, w:
        w-event budget.
    threshold:
        Mean-per-bin L1 distance that triggers a fresh release.
    test_fraction:
        Share of the per-step budget spent on the distance test.
    """

    name = "threshold-stream"

    def __init__(
        self,
        epsilon: float,
        w: int,
        threshold: float,
        test_fraction: float = 0.2,
    ) -> None:
        check_positive(threshold, "threshold")
        if not 0.0 < test_fraction < 1.0:
            raise ValueError(
                f"test_fraction must be in (0, 1), got {test_fraction}"
            )
        self.accountant = WEventAccountant(epsilon, w)
        self.threshold = float(threshold)
        self._eps_step = epsilon / w
        self._eps_test = self._eps_step * test_fraction
        self._eps_publish = self._eps_step - self._eps_test
        self._last: Optional[Histogram] = None

    def release(
        self,
        histogram: Histogram,
        rng: "np.random.Generator | int | None" = None,
    ) -> StreamRelease:
        """Publish or republish this timestep's histogram."""
        generator = as_rng(rng)

        if self._last is None:
            # First timestep: always a fresh release with the full share.
            self.accountant.spend(self._eps_step)
            noise = laplace_noise(self._eps_step, size=histogram.size,
                                  rng=generator)
            self._last = histogram.with_counts(histogram.counts + noise)
            return StreamRelease(
                t=0, histogram=self._last, fresh=True,
                eps_spent=self._eps_step,
                meta={"distance": None},
            )

        # Distance test: mean per-bin L1 between data and last release.
        # Sensitivity of the mean-L1 distance is 1/n (one record moves
        # one count by 1), so the test noise is Lap(1/(n * eps_test)).
        n = histogram.size
        true_distance = float(
            np.abs(histogram.counts - self._last.counts).mean()
        )
        test_noise = float(
            laplace_noise(self._eps_test, sensitivity=1.0 / n,
                          rng=generator)[0]
        )
        noisy_distance = true_distance + test_noise
        t = len(self.accountant.history())

        if noisy_distance <= self.threshold:
            # Republish: only the test budget is consumed.
            self.accountant.spend(self._eps_test)
            return StreamRelease(
                t=t, histogram=self._last, fresh=False,
                eps_spent=self._eps_test,
                meta={"distance": noisy_distance},
            )

        self.accountant.spend(self._eps_step)
        noise = laplace_noise(self._eps_publish, size=n, rng=generator)
        self._last = histogram.with_counts(histogram.counts + noise)
        return StreamRelease(
            t=t, histogram=self._last, fresh=True,
            eps_spent=self._eps_step,
            meta={"distance": noisy_distance},
        )
