"""Streaming histogram release under w-event privacy — extension.

The target paper is one-shot; its dynamic-data successors (DSAT/DSFT,
RG, GGA) publish a histogram *sequence*.  This subpackage provides the
two canonical strategies over the library's substrate:

* :class:`UniformStream` — every timestep gets ``eps / w`` (budget
  uniform over the sliding window).
* :class:`ThresholdStream` — DSFT-style distance thresholding: a small
  test budget decides whether the data moved enough to warrant a fresh
  release; otherwise the previous release is republished for free.
"""

from repro.streaming.release import (
    StreamRelease,
    ThresholdStream,
    UniformStream,
    WEventAccountant,
)

__all__ = [
    "StreamRelease",
    "UniformStream",
    "ThresholdStream",
    "WEventAccountant",
]
