"""Experiment harness: specs, runner, aggregation, table rendering.

The benches in ``benchmarks/`` and the CLI both drive experiments through
:func:`repro.experiments.registry.run_experiment`, so a figure is
regenerated identically whether you run ``pytest benchmarks/`` or
``python -m repro fig_point_vs_eps``.
"""

from repro.experiments.spec import ExperimentSpec
from repro.experiments.runner import (
    RunRecord,
    records_equal,
    run_matrix,
    run_once,
    strip_timing,
)
from repro.experiments.aggregate import Aggregate, aggregate_records
from repro.experiments.tables import Table, render_table
from repro.experiments.registry import EXPERIMENTS, list_experiments, run_experiment
from repro.robust.records import FailedRecord, is_failed

__all__ = [
    "ExperimentSpec",
    "RunRecord",
    "FailedRecord",
    "is_failed",
    "records_equal",
    "strip_timing",
    "run_once",
    "run_matrix",
    "Aggregate",
    "aggregate_records",
    "Table",
    "render_table",
    "EXPERIMENTS",
    "list_experiments",
    "run_experiment",
]
