"""Extension experiments: beyond the paper's 1-D one-shot setting.

``ext_spatial`` compares the 2-D publishers on rectangle workloads;
``ext_streaming`` compares uniform vs threshold release under w-event
privacy.  Neither corresponds to a figure in the target paper — they
exercise the follow-on problem settings the library also covers.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.experiments.tables import Table
from repro.hist.histogram import Histogram
from repro.spatial.histogram2d import Histogram2D
from repro.spatial.publishers import (
    AdaptiveGrid,
    Identity2D,
    QuadTree,
    UniformGrid,
)
from repro.spatial.workloads import random_rectangles
from repro.streaming.release import ThresholdStream, UniformStream

__all__ = ["ext_spatial", "ext_streaming", "ext_successors", "abl_error_model"]


def ext_successors(quick: bool = False) -> List[Table]:
    """NF / SF / AHP / DAWA-lite head-to-head (the successor comparison)."""
    from repro.baselines.ahp import Ahp
    from repro.baselines.dawa import DawaLite
    from repro.core import NoiseFirst, StructureFirst
    from repro.datasets.standard import nettrace, searchlogs
    from repro.metrics.evaluate import evaluate_workload_error
    from repro.workloads.builders import fixed_length_ranges, unit_queries

    datasets = {
        "searchlogs": searchlogs(n_bins=256 if quick else 512,
                                 total=100_000),
        "nettrace": nettrace(n_bins=256 if quick else 512, total=100_000),
    }
    seeds = range(3 if quick else 10)
    publishers = {"noisefirst": NoiseFirst, "structurefirst": StructureFirst,
                  "ahp": Ahp, "dawa-lite": DawaLite}
    table = Table(
        title="ext_successors: NoiseFirst vs StructureFirst vs AHP vs DAWA-lite",
        headers=["dataset", "epsilon", "publisher", "unit MSE", "range MSE"],
        notes="AHP clusters by value (non-contiguous), the others by "
              "position; sparse data favours AHP's thresholding",
    )
    for ds_name, hist in datasets.items():
        unit = unit_queries(hist.size)
        long_w = fixed_length_ranges(hist.size, hist.size // 2)
        for eps in [0.02, 0.1]:
            for pub_name, factory in publishers.items():
                unit_vals, range_vals = [], []
                for seed in seeds:
                    result = factory().publish(hist, budget=eps, rng=seed)
                    unit_vals.append(evaluate_workload_error(
                        hist, result.histogram, unit).mse)
                    range_vals.append(evaluate_workload_error(
                        hist, result.histogram, long_w).mse)
                table.add_row(ds_name, eps, pub_name,
                              float(np.mean(unit_vals)),
                              float(np.mean(range_vals)))
    return [table]


def abl_error_model(quick: bool = False) -> List[Table]:
    """Closed-form noise-variance predictions vs Monte Carlo measurement.

    Validates :mod:`repro.analysis.variance` on the real publishers with
    frozen structures; the 'ratio' column should hover around 1.
    """
    from repro.analysis.variance import (
        dwork_unit_variance,
        privelet_unit_variance,
        structurefirst_range_variance,
        structurefirst_unit_variance,
    )
    from repro.baselines.dwork import DworkIdentity
    from repro.baselines.privelet import Privelet
    from repro.core import StructureFirst

    n, eps = 128, 0.5
    zero = Histogram.from_counts(np.zeros(n))
    reps = 300 if quick else 2000
    table = Table(
        title=f"abl_error_model [n={n}, eps={eps}]: predicted vs measured "
              "noise variance",
        headers=["quantity", "predicted", "measured", "ratio"],
    )

    measured = np.var(
        [DworkIdentity().publish(zero, budget=eps, rng=s).histogram.counts
         for s in range(reps)],
        axis=0,
    ).mean()
    predicted = dwork_unit_variance(eps)
    table.add_row("dwork unit", predicted, float(measured),
                  float(measured / predicted))

    measured = np.var(
        [Privelet().publish(zero, budget=eps, rng=s).histogram.counts
         for s in range(reps)],
        axis=0,
    ).mean()
    predicted = privelet_unit_variance(n, eps)
    table.add_row("privelet unit", predicted, float(measured),
                  float(measured / predicted))

    # SF with a pinned uniform structure so the partition is frozen.
    sf = StructureFirst(k=16, structure_mode="uniform")
    outputs = [sf.publish(zero, budget=eps, rng=s) for s in range(reps)]
    partition = outputs[0].meta["partition"]
    eps_noise = outputs[0].meta["eps_noise"]
    counts = np.array([o.histogram.counts for o in outputs])
    measured_unit = float(counts.var(axis=0).mean())
    predicted_unit = float(
        structurefirst_unit_variance(partition, eps_noise).mean()
    )
    table.add_row("structurefirst unit", predicted_unit, measured_unit,
                  measured_unit / predicted_unit)

    lo, hi = 10, n // 2
    range_sums = counts[:, lo : hi + 1].sum(axis=1)
    measured_range = float(np.var(range_sums))
    predicted_range = structurefirst_range_variance(partition, eps_noise,
                                                    lo, hi)
    table.add_row("structurefirst range", predicted_range, measured_range,
                  measured_range / predicted_range)
    return [table]


def _cluster_grid(side: int, total: int) -> Histogram2D:
    rng = np.random.default_rng(42)
    n1 = int(total * 0.6)
    n2 = total - n1
    xs = np.concatenate([rng.normal(0.3, 0.05, n1), rng.normal(0.7, 0.12, n2)])
    ys = np.concatenate([rng.normal(0.5, 0.08, n1), rng.normal(0.25, 0.1, n2)])
    return Histogram2D.from_points(xs, ys, shape=(side, side),
                                   bounds=(0, 1, 0, 1), name="clusters")


def ext_spatial(quick: bool = False) -> List[Table]:
    """Rectangle-query MSE of the 2-D publishers across epsilon.

    Includes a Hilbert-flattened NoiseFirst arm — the paper's 1-D
    algorithm lifted to 2-D via the locality-preserving curve (the mIHP
    recipe).  NoiseFirst is the 1-D publisher here because its
    vectorized DP stays fast at the flattened n = side^2 domain.
    """
    from repro.core import NoiseFirst
    from repro.spatial.hilbert import HilbertPublisher2D

    side = 32 if quick else 64
    truth = _cluster_grid(side, total=100_000)
    queries = random_rectangles(truth.shape, count=200, rng=1)
    true_answers = truth.evaluate(queries)
    seeds = range(3 if quick else 5)
    publishers = [Identity2D(), UniformGrid(), AdaptiveGrid(),
                  QuadTree(depth=5),
                  HilbertPublisher2D(NoiseFirst(max_k=96))]
    table = Table(
        title=f"ext_spatial [{side}x{side} clusters]: rectangle MSE vs epsilon",
        headers=["epsilon"] + [p.name for p in publishers],
        notes="grids should beat per-cell noise once cells outnumber data",
    )
    for eps in [0.01, 0.1, 1.0]:
        row: List[object] = [eps]
        for publisher in publishers:
            errs = []
            for seed in seeds:
                result = publisher.publish(truth, budget=eps, rng=seed)
                est = result.histogram.evaluate(queries)
                errs.append(float(np.mean((est - true_answers) ** 2)))
            row.append(float(np.mean(errs)))
        table.add_row(*row)
    return [table]


def ext_streaming(quick: bool = False) -> List[Table]:
    """Uniform vs threshold streaming release across drift regimes."""
    n_bins, n_steps, w, eps = 32, 40, 10, 1.0
    seeds = range(3 if quick else 10)
    table = Table(
        title=f"ext_streaming [n={n_bins}, T={n_steps}, w={w}, eps={eps}]",
        headers=["drift", "strategy", "mean MSE", "eps total",
                 "max window"],
        notes="threshold release should spend far less on static streams "
              "and react at the drift point",
    )
    for drift_at in [None, 20]:
        for strategy_name in ("uniform", "threshold"):
            mses, totals, windows = [], [], []
            for seed in seeds:
                rng = np.random.default_rng(seed)
                base = rng.uniform(100, 400, size=n_bins)
                shifted = base * 1.6
                if strategy_name == "uniform":
                    stream = UniformStream(epsilon=eps, w=w)
                else:
                    stream = ThresholdStream(epsilon=eps, w=w, threshold=40.0)
                errs = []
                for t in range(n_steps):
                    level = shifted if (drift_at is not None
                                        and t >= drift_at) else base
                    frame = Histogram.from_counts(
                        np.round(level * (1 + 0.02 * rng.standard_normal(n_bins)))
                    )
                    release = stream.release(frame, rng=seed * 1000 + t)
                    errs.append(float(np.mean(
                        (release.histogram.counts - frame.counts) ** 2
                    )))
                mses.append(float(np.mean(errs)))
                totals.append(sum(stream.accountant.history()))
                windows.append(stream.accountant.max_window_total())
            table.add_row(
                "static" if drift_at is None else f"t={drift_at}",
                strategy_name,
                float(np.mean(mses)),
                float(np.mean(totals)),
                float(np.mean(windows)),
            )
    return [table]
