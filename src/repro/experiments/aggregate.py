"""Aggregation of raw run records across seeds.

Graceful degradation: a record stream coming out of a non-strict
supervised run may contain :class:`~repro.robust.records.FailedRecord`
entries for quarantined cells.  :func:`aggregate_records` *skips and
reports* them — the aggregate is computed over the successful records
and carries ``n_failed`` so tables and figures can annotate partial
cells instead of crashing (or, with ``strict=True``, refuse to
aggregate a partial cell at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Union

import numpy as np

from repro.exceptions import TrialQuarantinedError
from repro.experiments.runner import RunRecord
from repro.robust.records import FailedRecord, is_failed

__all__ = ["Aggregate", "aggregate_records"]


@dataclass(frozen=True)
class Aggregate:
    """Mean / spread summary of one metric over repeated seeds.

    ``n_failed`` counts quarantined seeds that were skipped (zero for
    fully healthy cells); ``n`` counts only the successful records the
    statistics are computed from.
    """

    mean: float
    std: float
    n: int
    n_failed: int = 0

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.n <= 1:
            return 0.0
        return self.std / np.sqrt(self.n)

    def __str__(self) -> str:
        if self.n <= 1:
            text = f"{self.mean:.4g}"
        else:
            text = f"{self.mean:.4g} ± {self.sem:.2g}"
        if self.n_failed:
            text += f" [{self.n_failed} failed]"
        return text


def aggregate_records(
    records: Sequence[Union[RunRecord, FailedRecord]],
    extract: Callable[[RunRecord], float],
    strict: bool = False,
) -> Aggregate:
    """Aggregate ``extract(record)`` over records (ddof=1 spread).

    :class:`FailedRecord` entries are skipped and counted in
    ``Aggregate.n_failed`` (skip-and-report).  With ``strict=True`` any
    failed record raises :class:`~repro.exceptions.TrialQuarantinedError`
    instead — use this to restore fail-fast aggregation.  A cell whose
    records *all* failed raises regardless: there is no mean to report.
    """
    if not records:
        raise ValueError("records must be non-empty")
    failed = [r for r in records if is_failed(r)]
    healthy = [r for r in records if not is_failed(r)]
    if failed and strict:
        raise TrialQuarantinedError(
            spec_name=failed[0].spec_name,
            publisher=failed[0].publisher,
            seed=failed[0].seed,
            epsilon=failed[0].epsilon,
            cause=failed[0].cause,
            message=(
                f"strict aggregation: {len(failed)} failed record(s) "
                f"present, first: {failed[0].describe()}"
            ),
        )
    if not healthy:
        raise ValueError(
            f"all {len(failed)} records failed; nothing to aggregate "
            f"(first: {failed[0].describe()})"
        )
    values: List[float] = [float(extract(r)) for r in healthy]
    arr = np.asarray(values, dtype=np.float64)
    std = float(arr.std(ddof=1)) if len(arr) > 1 else 0.0
    return Aggregate(
        mean=float(arr.mean()), std=std, n=len(arr), n_failed=len(failed)
    )
