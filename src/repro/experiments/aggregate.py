"""Aggregation of raw run records across seeds."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.experiments.runner import RunRecord

__all__ = ["Aggregate", "aggregate_records"]


@dataclass(frozen=True)
class Aggregate:
    """Mean / spread summary of one metric over repeated seeds."""

    mean: float
    std: float
    n: int

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.n <= 1:
            return 0.0
        return self.std / np.sqrt(self.n)

    def __str__(self) -> str:
        if self.n <= 1:
            return f"{self.mean:.4g}"
        return f"{self.mean:.4g} ± {self.sem:.2g}"


def aggregate_records(
    records: Sequence[RunRecord],
    extract: Callable[[RunRecord], float],
) -> Aggregate:
    """Aggregate ``extract(record)`` over records (ddof=1 spread)."""
    if not records:
        raise ValueError("records must be non-empty")
    values: List[float] = [float(extract(r)) for r in records]
    arr = np.asarray(values, dtype=np.float64)
    std = float(arr.std(ddof=1)) if len(arr) > 1 else 0.0
    return Aggregate(mean=float(arr.mean()), std=std, n=len(arr))
