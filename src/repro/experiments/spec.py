"""Experiment specification objects.

An :class:`ExperimentSpec` pins down everything a run needs — dataset,
publisher factory, budget, workloads, seeds — so experiments are
reproducible from their spec alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence, Tuple

from repro._validation import check_positive
from repro.core.publisher import Publisher
from repro.hist.histogram import Histogram
from repro.workloads.workload import Workload

__all__ = ["ExperimentSpec"]

PublisherFactory = Callable[[], Publisher]


@dataclass(frozen=True)
class ExperimentSpec:
    """One experimental cell: a publisher on a dataset at a budget.

    ``publisher_factory`` is a zero-argument callable so every repetition
    gets a fresh publisher (publishers are cheap and some carry
    per-publish defaults we do not want reused).
    """

    name: str
    histogram: Histogram
    publisher_factory: PublisherFactory
    epsilon: float
    workloads: Tuple[Workload, ...] = field(default_factory=tuple)
    seeds: Tuple[int, ...] = (0, 1, 2)
    n_jobs: int = 1

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        if not isinstance(self.n_jobs, int) or isinstance(self.n_jobs, bool):
            raise TypeError("n_jobs must be an int")
        if self.n_jobs != -1 and self.n_jobs < 1:
            raise ValueError(
                f"n_jobs must be >= 1 or -1, got {self.n_jobs}"
            )
        if not isinstance(self.histogram, Histogram):
            raise TypeError("histogram must be a Histogram")
        if not callable(self.publisher_factory):
            raise TypeError("publisher_factory must be callable")
        workloads = tuple(self.workloads)
        for w in workloads:
            if not isinstance(w, Workload):
                raise TypeError(f"expected Workload, got {type(w).__name__}")
            if w.n != self.histogram.size:
                raise ValueError(
                    f"workload {w.name!r} built for {w.n} bins, "
                    f"dataset has {self.histogram.size}"
                )
        object.__setattr__(self, "workloads", workloads)
        seeds = tuple(int(s) for s in self.seeds)
        if not seeds:
            raise ValueError("seeds must be non-empty")
        object.__setattr__(self, "seeds", seeds)

    def fingerprint(self) -> str:
        """SHA-256 identity of everything that determines this spec's output.

        Used by the checkpoint journal to guarantee that ``--resume``
        only ever reuses records produced by an identical configuration
        (same dataset bytes, publisher, budget, seeds and workloads).
        ``n_jobs`` is excluded: parallelism does not change results.
        """
        from repro.robust.journal import spec_fingerprint

        return spec_fingerprint(self)
