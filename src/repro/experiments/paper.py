"""``repro paper``: a repro-paper publication pipeline over the radar.

Renders everything a write-up needs — markdown + LaTeX tables and
SVG crossover figures — straight from the run-history SQLite store
(:mod:`repro.obs.history`), so the numbers in the paper are exactly the
numbers the regression radar gates on.  The pipeline is:

* **deterministic** — same store, same bytes.  No timestamps, sorted
  iteration everywhere, fixed float formatting (shared with
  :mod:`repro.experiments.tables`), hand-rolled SVG (no plotting
  dependency);
* **error-isolated** — each table/figure generator runs inside its own
  firewall; one malformed cell degrades that artifact to a listed
  failure instead of killing the build (the ProjectScylla
  ``generate_tables.py`` shape);
* **self-describing** — ``paper.md`` assembles the tables inline with
  figure links and a failure appendix, so the output directory is a
  reviewable artifact on its own.

Layout under ``--out``::

    paper.md                      the assembled document
    tables/<name>.md              one markdown file per table
    tables/<name>.tex             the same table as a booktabs float
    figures/crossover-<family>.svg

See ``docs/evaluation.md`` for how scenario runs populate the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Tuple, Union

from repro.experiments.tables import (
    Table,
    render_latex,
    render_markdown,
)
from repro.obs.history import HistoryStore

__all__ = [
    "PaperResult",
    "crossover_curves",
    "crossover_figure_svg",
    "generate_paper",
    "paper_tables",
]


# ---------------------------------------------------------------------------
# Data extraction
# ---------------------------------------------------------------------------

def _latest_mse(store: HistoryStore, cell: Tuple) -> "float | None":
    series = store.utility_series(*cell)
    points = [p for p in series if p["mean_mse"] is not None]
    return float(points[-1]["mean_mse"]) if points else None


def crossover_curves(
    store: HistoryStore, family: str
) -> "Dict[Tuple[str, float], List[Tuple[int, float, float]]]":
    """NoiseFirst/StructureFirst error per range length, one curve pair
    per (scenario, ε) with both publishers present.

    Returns ``{(scenario, eps): [(length, nf_mse, sf_mse), ...]}`` with
    lengths ascending; ``unit`` counts as length 1.  This is the data
    behind both the crossover table and the per-family figure — the
    paper's headline effect (NoiseFirst wins short queries,
    StructureFirst wins long ones) read directly off the store.
    """
    by_cell: Dict[Tuple[str, float], Dict[int, Dict[str, float]]] = {}
    for fam, scen, pub, eps, wl in store.utility_cells(family):
        if pub not in ("noisefirst", "structurefirst"):
            continue
        if wl == "unit":
            length = 1
        elif wl.startswith("len-"):
            try:
                length = int(wl[4:])
            except ValueError:
                continue
        else:
            continue
        mse = _latest_mse(store, (fam, scen, pub, eps, wl))
        if mse is None:
            continue
        by_cell.setdefault((scen, eps), {}) \
            .setdefault(length, {})[pub] = mse
    curves: Dict[Tuple[str, float], List[Tuple[int, float, float]]] = {}
    for key, lengths in sorted(by_cell.items()):
        pairs = [
            (l, d["noisefirst"], d["structurefirst"])
            for l, d in sorted(lengths.items())
            if "noisefirst" in d and "structurefirst" in d
        ]
        if pairs:
            curves[key] = pairs
    return curves


def _crossover_length(
    pairs: "List[Tuple[int, float, float]]"
) -> "int | None":
    """Smallest compared length where StructureFirst is ahead."""
    for length, nf, sf in pairs:
        if sf < nf:
            return length
    return None


# ---------------------------------------------------------------------------
# Table builders (each: store -> Table; registered for error isolation)
# ---------------------------------------------------------------------------

def _scenario_utility_table(store: HistoryStore) -> Table:
    table = Table(
        title="Scenario utility (unit workload)",
        headers=["family", "scenario", "publisher", "eps", "batches",
                 "mean MSE", "oracle", "obs/oracle"],
        notes="latest batch per cell; oracle is the closed-form "
              "expected MSE of the publisher configuration",
    )
    for family in store.utility_families():
        for fam, scen, pub, eps, wl in store.utility_cells(family):
            if wl != "unit":
                continue
            series = store.utility_series(fam, scen, pub, eps, wl)
            points = [p for p in series if p["mean_mse"] is not None]
            if not points:
                continue
            latest = points[-1]
            mse = float(latest["mean_mse"])
            oracle = latest["oracle_mse"]
            ratio = mse / float(oracle) if oracle else None
            table.add_row(
                fam, scen, pub, f"{eps:g}", len(series), mse,
                float(oracle) if oracle else "—",
                ratio if ratio is not None else "—",
            )
    return table


def _workload_regime_table(store: HistoryStore) -> Table:
    table = Table(
        title="Utility by workload regime",
        headers=["family", "scenario", "publisher", "eps", "workload",
                 "mean MSE", "oracle", "obs/oracle"],
        notes="every (scenario, publisher, eps, workload) cell in the "
              "store — the appendix-grade dump behind the summaries",
    )
    for fam, scen, pub, eps, wl in store.utility_cells():
        series = store.utility_series(fam, scen, pub, eps, wl)
        points = [p for p in series if p["mean_mse"] is not None]
        if not points:
            continue
        latest = points[-1]
        mse = float(latest["mean_mse"])
        oracle = latest["oracle_mse"]
        ratio = mse / float(oracle) if oracle else None
        table.add_row(
            fam, scen, pub, f"{eps:g}", wl, mse,
            float(oracle) if oracle else "—",
            ratio if ratio is not None else "—",
        )
    return table


def _crossover_table(store: HistoryStore) -> Table:
    table = Table(
        title="NoiseFirst ↔ StructureFirst crossover by range length",
        headers=["family", "scenario", "eps", "lengths compared",
                 "crossover", "verdict"],
        notes="smallest compared range length where StructureFirst's "
              "mean MSE beats NoiseFirst's (unit queries count as "
              "length 1) — the paper's headline effect",
    )
    for family in store.utility_families():
        for (scen, eps), pairs in crossover_curves(store, family).items():
            crossover = _crossover_length(pairs)
            if crossover is None:
                verdict = f"NoiseFirst ahead through len {pairs[-1][0]}"
            elif crossover == pairs[0][0]:
                verdict = "StructureFirst ahead at every length"
            else:
                verdict = f"crossover at len {crossover}"
            table.add_row(
                family, scen, f"{eps:g}",
                ", ".join(str(l) for l, _, _ in pairs),
                "—" if crossover is None else crossover,
                verdict,
            )
    return table


def _sweep_accuracy_table(store: HistoryStore) -> Table:
    table = Table(
        title="Sweep accuracy trajectories",
        headers=["cell", "publisher", "eps", "batches", "mean MSE",
                 "oracle", "obs/oracle"],
        notes="latest batch per sweep trial cell, oracle-anchored "
              "where a closed form exists",
    )
    for spec_name, publisher, epsilon in store.trial_cells():
        series = store.trial_series(spec_name, publisher, epsilon)
        points = [p for p in series if p["mean_mse"] is not None]
        if not points:
            continue
        latest = points[-1]
        mse = float(latest["mean_mse"])
        oracle = latest["oracle_mse"]
        ratio = mse / float(oracle) if oracle else None
        table.add_row(
            spec_name, publisher, f"{epsilon:g}", len(series), mse,
            float(oracle) if oracle else "—",
            ratio if ratio is not None else "—",
        )
    return table


def _bench_table(store: HistoryStore) -> Table:
    table = Table(
        title="Performance benchmarks (calibration-normalized)",
        headers=["key", "points", "latest", "median"],
        notes="seconds normalized by the per-host calibration loop; "
              "trajectories feed the perf CUSUM",
    )
    for key in store.bench_keys():
        values = [float(p["normalized"]) for p in store.bench_series(key)]
        ordered = sorted(values)
        mid = len(ordered) // 2
        median = ordered[mid] if len(ordered) % 2 else \
            0.5 * (ordered[mid - 1] + ordered[mid])
        table.add_row(key, len(values), values[-1], median)
    return table


#: Registered table builders, rendered in this order.  Each runs inside
#: its own error firewall in :func:`generate_paper`.
_TABLE_BUILDERS: "Dict[str, Callable[[HistoryStore], Table]]" = {
    "scenario_utility": _scenario_utility_table,
    "crossover": _crossover_table,
    "workload_regimes": _workload_regime_table,
    "sweep_accuracy": _sweep_accuracy_table,
    "bench": _bench_table,
}


def paper_tables(store: HistoryStore) -> "Dict[str, Table]":
    """All registered tables, built without the file-writing pipeline."""
    return {name: build(store) for name, build in _TABLE_BUILDERS.items()}


# ---------------------------------------------------------------------------
# Figures: hand-rolled deterministic SVG
# ---------------------------------------------------------------------------

_SVG_W, _SVG_H = 640, 400
_ML, _MR, _MT, _MB = 64, 160, 36, 48  # margins: left right top bottom
_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#8c564b",
           "#e377c2")


def _log2(x: float) -> float:
    import math

    return math.log2(x)


def _log10(x: float) -> float:
    import math

    return math.log10(max(x, 1e-300))


def crossover_figure_svg(
    family: str,
    curves: "Dict[Tuple[str, float], List[Tuple[int, float, float]]]",
) -> str:
    """One log-log SVG: mean MSE vs range length, NF solid / SF dashed.

    Each (scenario, ε) pair contributes two polylines in a shared
    color; the crossover point (first length where StructureFirst is
    ahead) is marked with a circle.  Pure string assembly with fixed
    precision, so the figure is byte-deterministic.
    """
    lengths = sorted({l for pairs in curves.values()
                      for l, _, _ in pairs})
    values = [v for pairs in curves.values()
              for _, nf, sf in pairs for v in (nf, sf) if v > 0]
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{_SVG_W}" height="{_SVG_H}" '
        f'viewBox="0 0 {_SVG_W} {_SVG_H}">',
        f'<title>NoiseFirst vs StructureFirst — {family}</title>',
        f'<rect width="{_SVG_W}" height="{_SVG_H}" fill="white"/>',
        f'<text x="{_ML}" y="22" font-family="monospace" '
        f'font-size="14">{family}: mean MSE vs range length</text>',
    ]
    plot_w = _SVG_W - _ML - _MR
    plot_h = _SVG_H - _MT - _MB
    if not lengths or not values:
        parts.append(
            f'<text x="{_ML}" y="{_SVG_H // 2}" font-family="monospace" '
            f'font-size="12">no crossover data ingested</text></svg>'
        )
        return "\n".join(parts) + "\n"

    x_lo, x_hi = _log2(lengths[0]), _log2(lengths[-1])
    y_lo, y_hi = _log10(min(values)), _log10(max(values))
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    pad = 0.05 * (y_hi - y_lo)
    y_lo, y_hi = y_lo - pad, y_hi + pad

    def sx(length: float) -> float:
        return _ML + (_log2(length) - x_lo) / (x_hi - x_lo) * plot_w

    def sy(value: float) -> float:
        return _MT + (y_hi - _log10(value)) / (y_hi - y_lo) * plot_h

    # Axes + tick labels.
    parts.append(
        f'<line x1="{_ML}" y1="{_MT + plot_h}" x2="{_ML + plot_w}" '
        f'y2="{_MT + plot_h}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{_ML}" y1="{_MT}" x2="{_ML}" y2="{_MT + plot_h}" '
        f'stroke="black"/>'
    )
    for length in lengths:
        x = sx(length)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_MT + plot_h}" x2="{x:.1f}" '
            f'y2="{_MT + plot_h + 4}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{_MT + plot_h + 18}" '
            f'font-family="monospace" font-size="10" '
            f'text-anchor="middle">{length}</text>'
        )
    decade = int(_log10(min(values)) // 1)
    while decade <= y_hi:
        if y_lo <= decade:
            y = sy(10.0 ** decade)
            parts.append(
                f'<line x1="{_ML - 4}" y1="{y:.1f}" x2="{_ML}" '
                f'y2="{y:.1f}" stroke="black"/>'
            )
            parts.append(
                f'<text x="{_ML - 8}" y="{y + 3:.1f}" '
                f'font-family="monospace" font-size="10" '
                f'text-anchor="end">1e{decade}</text>'
            )
        decade += 1
    parts.append(
        f'<text x="{_ML + plot_w // 2}" y="{_SVG_H - 8}" '
        f'font-family="monospace" font-size="11" '
        f'text-anchor="middle">range length (log2)</text>'
    )

    # Curves: NF solid, SF dashed, one color per (scenario, eps).
    legend_y = _MT + 8
    for i, ((scen, eps), pairs) in enumerate(sorted(curves.items())):
        color = _COLORS[i % len(_COLORS)]
        nf_pts = " ".join(
            f"{sx(l):.1f},{sy(nf):.1f}" for l, nf, _ in pairs
        )
        sf_pts = " ".join(
            f"{sx(l):.1f},{sy(sf):.1f}" for l, _, sf in pairs
        )
        parts.append(
            f'<polyline points="{nf_pts}" fill="none" '
            f'stroke="{color}" stroke-width="1.5"/>'
        )
        parts.append(
            f'<polyline points="{sf_pts}" fill="none" '
            f'stroke="{color}" stroke-width="1.5" '
            f'stroke-dasharray="5,3"/>'
        )
        crossover = _crossover_length(pairs)
        if crossover is not None:
            sf_at = next(sf for l, _, sf in pairs if l == crossover)
            parts.append(
                f'<circle cx="{sx(crossover):.1f}" '
                f'cy="{sy(sf_at):.1f}" r="4" fill="none" '
                f'stroke="{color}" stroke-width="1.5"/>'
            )
        label = f"{scen} eps={eps:g}"
        if crossover is not None:
            label += f" (x@{crossover})"
        parts.append(
            f'<line x1="{_ML + plot_w + 8}" y1="{legend_y - 4}" '
            f'x2="{_ML + plot_w + 28}" y2="{legend_y - 4}" '
            f'stroke="{color}" stroke-width="1.5"/>'
        )
        parts.append(
            f'<text x="{_ML + plot_w + 32}" y="{legend_y}" '
            f'font-family="monospace" font-size="10">{label}</text>'
        )
        legend_y += 14
    parts.append(
        f'<text x="{_ML + plot_w + 8}" y="{legend_y + 4}" '
        f'font-family="monospace" font-size="10">solid=NF '
        f'dashed=SF o=crossover</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------

@dataclass
class PaperResult:
    """Outcome of one ``repro paper`` build."""

    out_dir: Path
    written: List[Path] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    failures: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _write(path: Path, text: str, result: PaperResult) -> None:
    from repro.robust.atomicio import atomic_write_text

    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(path, text)
    result.written.append(path)


def generate_paper(
    db: Union[str, Path, HistoryStore],
    out_dir: Union[str, Path],
) -> PaperResult:
    """Render every registered table and figure from the history store.

    Error-isolated: a builder that raises contributes a
    ``(artifact, error)`` entry to ``result.failures`` and the build
    continues; a builder with no rows lands in ``result.skipped`` and
    writes nothing, keeping the output directory free of empty shells.
    """
    out = Path(out_dir)
    result = PaperResult(out_dir=out)
    own_store = not isinstance(db, HistoryStore)
    store = HistoryStore(db) if own_store else db
    try:
        sections: List[str] = [
            "# Reproduction report — DP histogram publication",
            "",
            "Rendered by `repro paper` from the run-history store; "
            "every number below is radar-gated (see "
            "docs/evaluation.md).",
            "",
        ]
        for name, build in _TABLE_BUILDERS.items():
            try:
                table = build(store)
                if not table.rows:
                    result.skipped.append(name)
                    continue
                _write(out / "tables" / f"{name}.md",
                       render_markdown(table), result)
                _write(out / "tables" / f"{name}.tex",
                       render_latex(table), result)
                sections.append(render_markdown(table))
            except Exception as exc:
                result.failures.append((f"table:{name}", repr(exc)))

        figure_lines: List[str] = []
        try:
            families = store.utility_families()
        except Exception as exc:
            families = []
            result.failures.append(("figures", repr(exc)))
        for family in families:
            try:
                curves = crossover_curves(store, family)
                if not curves:
                    result.skipped.append(f"figure:{family}")
                    continue
                rel = Path("figures") / f"crossover-{family}.svg"
                _write(out / rel, crossover_figure_svg(family, curves),
                       result)
                figure_lines.append(
                    f"![crossover {family}]({rel.as_posix()})"
                )
            except Exception as exc:
                result.failures.append((f"figure:{family}", repr(exc)))
        if figure_lines:
            sections.append("## Crossover figures")
            sections.append("")
            sections.extend(figure_lines)
            sections.append("")
        if result.skipped:
            sections.append(
                "_No data for: " + ", ".join(sorted(result.skipped))
                + "._"
            )
            sections.append("")
        if result.failures:
            sections.append("## Generation failures")
            sections.append("")
            for artifact, error in result.failures:
                sections.append(f"- `{artifact}`: {error}")
            sections.append("")
        _write(out / "paper.md", "\n".join(sections), result)
    finally:
        if own_store:
            store.close()
    return result
