"""Experiment registry: stable ids -> table-producing functions.

The ids are the ones DESIGN.md's per-experiment index uses; benches and
the CLI resolve through here so there is exactly one definition of each
experiment.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List

from repro.experiments import ablations, extensions, figures
from repro.experiments.tables import Table

__all__ = ["EXPERIMENTS", "list_experiments", "run_experiment"]

ExperimentFn = Callable[[bool], List[Table]]

EXPERIMENTS: Dict[str, ExperimentFn] = {
    "table1": figures.table1_datasets,
    "fig_point_vs_eps": figures.fig_point_vs_eps,
    "fig_range_vs_len": figures.fig_range_vs_len,
    "fig_kl_vs_eps": figures.fig_kl_vs_eps,
    "fig_k_sensitivity": figures.fig_k_sensitivity,
    "fig_budget_split": figures.fig_budget_split,
    "fig_scalability": figures.fig_scalability,
    "table_crossover": figures.table_crossover,
    "fig_smoothness": figures.fig_smoothness,
    "fig_data_scale": figures.fig_data_scale,
    "abl_nf_kstar": ablations.abl_nf_kstar,
    "abl_sf_sampling": ablations.abl_sf_sampling,
    "abl_consistency": ablations.abl_consistency,
    "abl_postprocess": ablations.abl_postprocess,
    "abl_shape_prior": ablations.abl_shape_prior,
    "abl_error_model": extensions.abl_error_model,
    "ext_spatial": extensions.ext_spatial,
    "ext_streaming": extensions.ext_streaming,
    "ext_successors": extensions.ext_successors,
}


def list_experiments() -> List[str]:
    """All experiment ids, figures first then ablations, stable order."""
    return list(EXPERIMENTS)


def run_experiment(
    name: str, quick: bool = False, n_jobs: int = 1
) -> List[Table]:
    """Run one experiment by id and return its tables.

    ``n_jobs`` forwards to experiments whose seed loops run through
    :func:`~repro.experiments.runner.run_matrix` (currently the
    ``*_vs_eps`` figures); experiments without a parallel path ignore it.
    Raises KeyError (listing valid ids) on an unknown name.
    """
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(list_experiments())}"
        ) from None
    if "n_jobs" in inspect.signature(fn).parameters:
        return fn(quick=quick, n_jobs=n_jobs)
    return fn(quick=quick)
