"""The paper's figures and tables, as table-producing functions.

Each function regenerates one experiment of the (reconstructed)
evaluation — see the per-experiment index in DESIGN.md — and returns a
list of :class:`~repro.experiments.tables.Table` carrying the same
rows/series the paper reports.  ``quick=True`` shrinks domains, seed
counts and grids so a bench finishes in seconds; ``quick=False`` runs the
full configuration recorded in EXPERIMENTS.md.

All randomness is seeded: re-running an experiment reproduces its tables
bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.baselines import Boost, DworkIdentity, Privelet
from repro.core import NoiseFirst, StructureFirst
from repro.core.kselect import smoothness_profile
from repro.core.publisher import Publisher
from repro.datasets import registry as dataset_registry
from repro.datasets.generators import step_histogram
from repro.datasets.standard import age, nettrace, searchlogs, socialnetwork
from repro.experiments.aggregate import aggregate_records
from repro.experiments.runner import run_matrix, run_once
from repro.experiments.spec import ExperimentSpec
from repro.experiments.tables import Table
from repro.hist.histogram import Histogram
from repro.metrics.evaluate import evaluate_workload_error
from repro.workloads.builders import fixed_length_ranges, unit_queries

__all__ = [
    "table1_datasets",
    "fig_point_vs_eps",
    "fig_range_vs_len",
    "fig_kl_vs_eps",
    "fig_k_sensitivity",
    "fig_budget_split",
    "fig_scalability",
    "table_crossover",
    "fig_smoothness",
    "fig_data_scale",
]

PublisherFactory = Callable[[], Publisher]

#: The paper's comparison roster: its two algorithms plus the three
#: published baselines it was evaluated against.
ROSTER: Dict[str, PublisherFactory] = {
    "dwork": DworkIdentity,
    "noisefirst": NoiseFirst,
    "structurefirst": StructureFirst,
    "boost": Boost,
    "privelet": Privelet,
}


def _datasets(quick: bool) -> Dict[str, Histogram]:
    """Evaluation datasets, shrunk in quick mode for bench runtimes."""
    if quick:
        return {
            "age": age(n_bins=100, total=100_000),
            "searchlogs": searchlogs(n_bins=256, total=100_000),
        }
    return {name: dataset_registry.get_dataset(name)
            for name in dataset_registry.list_datasets()}


def _eps_grid(quick: bool) -> List[float]:
    if quick:
        return [0.01, 0.1]
    return [0.01, 0.02, 0.05, 0.1, 0.5, 1.0]


def _seeds(quick: bool) -> List[int]:
    return list(range(3 if quick else 10))


# ---------------------------------------------------------------------------
# table1: dataset statistics
# ---------------------------------------------------------------------------

def table1_datasets(quick: bool = False) -> List[Table]:
    """Dataset summary statistics (paper's dataset table)."""
    table = Table(
        title="table1: evaluation datasets",
        headers=["dataset", "bins", "total", "nonzero", "max count",
                 "smoothness"],
        notes="smoothness = total variation of adjacent bins / total count "
              "(lower = smoother)",
    )
    for name, hist in _datasets(quick=False).items():
        table.add_row(
            name,
            hist.size,
            int(hist.total),
            int(np.count_nonzero(hist.counts)),
            int(hist.counts.max()),
            round(smoothness_profile(hist.counts), 4),
        )
    return [table]


# ---------------------------------------------------------------------------
# fig_point_vs_eps: unit-query MSE vs epsilon
# ---------------------------------------------------------------------------

def fig_point_vs_eps(quick: bool = False, n_jobs: int = 1) -> List[Table]:
    """MSE of unit-length (point) queries vs epsilon, per dataset.

    Expected shape: NoiseFirst tracks or beats Dwork everywhere and wins
    clearly once noise dominates (small epsilon); the tree/wavelet/
    structure publishers pay their overhead and lose on points.

    ``n_jobs`` fans the seed repetitions of each cell out over a process
    pool via :func:`~repro.experiments.runner.run_matrix`; results are
    bit-identical to the serial run.
    """
    tables = []
    seeds = tuple(_seeds(quick))
    for ds_name, hist in _datasets(quick).items():
        unit = unit_queries(hist.size)
        table = Table(
            title=f"fig_point_vs_eps [{ds_name}]: unit-query MSE vs epsilon",
            headers=["epsilon"] + list(ROSTER),
        )
        for eps in _eps_grid(quick):
            row: List[object] = [eps]
            for pub_name, factory in ROSTER.items():
                spec = ExperimentSpec(
                    name=f"point_vs_eps/{ds_name}/{pub_name}/{eps:g}",
                    histogram=hist,
                    publisher_factory=factory,
                    epsilon=eps,
                    workloads=(unit,),
                    seeds=seeds,
                    n_jobs=n_jobs,
                )
                records = run_matrix(spec)
                agg = aggregate_records(records, lambda r: r.metric("unit", "mse"))
                row.append(agg.mean)
            table.add_row(*row)
        tables.append(table)
    return tables


# ---------------------------------------------------------------------------
# fig_range_vs_len: range-query MSE vs query length (the crossover figure)
# ---------------------------------------------------------------------------

def _range_sweep(
    hist: Histogram, eps: float, lengths: Sequence[int], seeds: Sequence[int]
) -> Dict[str, Dict[int, float]]:
    """mean range-MSE per publisher per length; one publish per seed."""
    workloads = [fixed_length_ranges(hist.size, length) for length in lengths]
    out: Dict[str, Dict[int, float]] = {}
    for name, factory in ROSTER.items():
        per_len: Dict[int, List[float]] = {length: [] for length in lengths}
        for seed in seeds:
            result = factory().publish(hist, budget=eps, rng=seed)
            for length, workload in zip(lengths, workloads):
                errors = evaluate_workload_error(hist, result.histogram, workload)
                per_len[length].append(errors.mse)
        out[name] = {length: float(np.mean(v)) for length, v in per_len.items()}
    return out


def _sweep_lengths(n: int) -> List[int]:
    lengths = []
    length = 1
    while length <= n // 2:
        lengths.append(length)
        length *= 4
    if lengths[-1] != n // 2:
        lengths.append(n // 2)
    return lengths


def fig_range_vs_len(quick: bool = False) -> List[Table]:
    """MSE of fixed-length range queries vs length at fixed epsilon.

    Expected shape: Dwork/NoiseFirst grow linearly in the length;
    StructureFirst/Privelet/Boost stay flat-ish, so the curves cross.
    """
    hist = searchlogs(n_bins=512 if quick else 1024, total=100_000)
    eps = 0.01
    lengths = _sweep_lengths(hist.size)
    sweep = _range_sweep(hist, eps, lengths, _seeds(quick))
    table = Table(
        title=f"fig_range_vs_len [searchlogs, eps={eps}]: range MSE vs length",
        headers=["length"] + list(ROSTER),
        notes="expected crossover: dwork/noisefirst win short ranges, "
              "structurefirst/privelet/boost win long ranges",
    )
    for length in lengths:
        table.add_row(length, *[sweep[name][length] for name in ROSTER])
    return [table]


# ---------------------------------------------------------------------------
# fig_kl_vs_eps: distribution-level KL divergence vs epsilon
# ---------------------------------------------------------------------------

def fig_kl_vs_eps(quick: bool = False, n_jobs: int = 1) -> List[Table]:
    """KL(truth || published) vs epsilon per dataset.

    Seed repetitions run through :func:`run_matrix`, so ``n_jobs > 1``
    parallelizes each cell without changing any reported number.
    """
    tables = []
    seeds = tuple(_seeds(quick))
    for ds_name, hist in _datasets(quick).items():
        table = Table(
            title=f"fig_kl_vs_eps [{ds_name}]: KL divergence vs epsilon",
            headers=["epsilon"] + list(ROSTER),
        )
        for eps in _eps_grid(quick):
            row: List[object] = [eps]
            for pub_name, factory in ROSTER.items():
                spec = ExperimentSpec(
                    name=f"kl_vs_eps/{ds_name}/{pub_name}/{eps:g}",
                    histogram=hist,
                    publisher_factory=factory,
                    epsilon=eps,
                    seeds=seeds,
                    n_jobs=n_jobs,
                )
                records = run_matrix(spec)
                row.append(float(np.mean([r.kl for r in records])))
            table.add_row(*row)
        tables.append(table)
    return tables


# ---------------------------------------------------------------------------
# fig_k_sensitivity: error vs bucket count k
# ---------------------------------------------------------------------------

def fig_k_sensitivity(quick: bool = False) -> List[Table]:
    """StructureFirst/NoiseFirst error as a function of the bucket count.

    Sweeps k for both algorithms at fixed epsilon and reports unit and
    long-range MSE; the last row is NoiseFirst's adaptive k* for
    reference.
    """
    hist = searchlogs(n_bins=256, total=100_000)
    eps = 0.05
    n = hist.size
    unit = unit_queries(n)
    long_w = fixed_length_ranges(n, n // 4)
    ks = [2, 4, 8, 16, 32, 64, 128]
    seeds = _seeds(quick)
    table = Table(
        title=f"fig_k_sensitivity [searchlogs, eps={eps}]: error vs bucket count",
        headers=["k", "SF unit MSE", "SF range MSE", "NF unit MSE",
                 "NF range MSE"],
    )
    for k in ks:
        sf_unit, sf_rng, nf_unit, nf_rng = [], [], [], []
        for seed in seeds:
            sf = StructureFirst(k=k).publish(hist, budget=eps, rng=seed)
            nf = NoiseFirst(k=k).publish(hist, budget=eps, rng=seed)
            sf_unit.append(evaluate_workload_error(hist, sf.histogram, unit).mse)
            sf_rng.append(evaluate_workload_error(hist, sf.histogram, long_w).mse)
            nf_unit.append(evaluate_workload_error(hist, nf.histogram, unit).mse)
            nf_rng.append(evaluate_workload_error(hist, nf.histogram, long_w).mse)
        table.add_row(k, float(np.mean(sf_unit)), float(np.mean(sf_rng)),
                      float(np.mean(nf_unit)), float(np.mean(nf_rng)))
    # Adaptive NoiseFirst reference row.
    nf_unit, nf_rng, k_star = [], [], []
    for seed in seeds:
        nf = NoiseFirst().publish(hist, budget=eps, rng=seed)
        nf_unit.append(evaluate_workload_error(hist, nf.histogram, unit).mse)
        nf_rng.append(evaluate_workload_error(hist, nf.histogram, long_w).mse)
        k_star.append(nf.meta["k"])
    table.add_row(f"NF k*={int(np.median(k_star))}", float("nan"), float("nan"),
                  float(np.mean(nf_unit)), float(np.mean(nf_rng)))
    return [table]


# ---------------------------------------------------------------------------
# fig_budget_split: StructureFirst structure/noise budget split
# ---------------------------------------------------------------------------

def fig_budget_split(quick: bool = False) -> List[Table]:
    """StructureFirst error vs the fraction of budget spent on structure."""
    hist = searchlogs(n_bins=256, total=100_000)
    eps = 0.1
    n = hist.size
    unit = unit_queries(n)
    long_w = fixed_length_ranges(n, n // 4)
    fractions = [0.1, 0.25, 0.5, 0.75, 0.9]
    seeds = _seeds(quick)
    table = Table(
        title=f"fig_budget_split [searchlogs, eps={eps}]: SF error vs "
              "structure fraction",
        headers=["structure fraction", "unit MSE", "range MSE"],
    )
    for fraction in fractions:
        unit_vals, range_vals = [], []
        for seed in seeds:
            result = StructureFirst(structure_fraction=fraction).publish(
                hist, budget=eps, rng=seed
            )
            unit_vals.append(
                evaluate_workload_error(hist, result.histogram, unit).mse
            )
            range_vals.append(
                evaluate_workload_error(hist, result.histogram, long_w).mse
            )
        table.add_row(fraction, float(np.mean(unit_vals)),
                      float(np.mean(range_vals)))
    return [table]


# ---------------------------------------------------------------------------
# fig_scalability: wall-clock runtime vs domain size
# ---------------------------------------------------------------------------

def fig_scalability(quick: bool = False) -> List[Table]:
    """Publish-time (seconds) vs domain size n for every publisher."""
    sizes = [128, 256, 512] if quick else [128, 256, 512, 1024, 2048]
    eps = 0.1
    table = Table(
        title="fig_scalability: publish seconds vs domain size",
        headers=["n"] + list(ROSTER),
        notes="NoiseFirst's adaptive search runs the exact blocked "
              "O(n^2 k) DP (noisy counts are unsorted, so the Monge "
              "divide-and-conquer kernel cannot engage; see "
              "docs/performance.md) and remains the scaling outlier; "
              "AHP's sorted clustering rides the O(n k log n) kernel "
              "and the others are O(n log n) or better",
    )
    for n in sizes:
        hist = searchlogs(n_bins=n, total=100_000)
        row: List[object] = [n]
        for factory in ROSTER.values():
            record = run_once(hist, factory(), eps, [], seed=0)
            row.append(round(record.seconds, 4))
        table.add_row(*row)
    return [table]


# ---------------------------------------------------------------------------
# table_crossover: winner per (dataset, range length) regime
# ---------------------------------------------------------------------------

def table_crossover(quick: bool = False) -> List[Table]:
    """Which publisher wins at each query length, per dataset."""
    eps = 0.01
    seeds = _seeds(quick)
    table = Table(
        title=f"table_crossover [eps={eps}]: winning publisher by range length",
        headers=["dataset", "length", "winner", "winner MSE", "dwork MSE"],
        notes="the paper's qualitative claim: noise-dominated short ranges "
              "go to noisefirst/dwork, long ranges to the structured trio",
    )
    for ds_name, hist in _datasets(quick).items():
        lengths = _sweep_lengths(hist.size)
        sweep = _range_sweep(hist, eps, lengths, seeds)
        for length in lengths:
            scores = {name: sweep[name][length] for name in ROSTER}
            winner = min(scores, key=scores.get)
            table.add_row(ds_name, length, winner, scores[winner],
                          scores["dwork"])
    return [table]


# ---------------------------------------------------------------------------
# fig_smoothness: error vs ground-truth smoothness
# ---------------------------------------------------------------------------

def fig_data_scale(quick: bool = False) -> List[Table]:
    """Relative error vs dataset cardinality at fixed epsilon.

    Noise is data-independent, so scaling the data total down makes the
    privacy/utility trade harder: the *scaled* (relative) error of every
    publisher grows as the total shrinks, and the structured methods'
    advantage widens (their per-bin noise shrinks with bucket width, not
    with data volume).
    """
    eps = 0.05
    n = 256
    totals = [10_000, 100_000] if quick else [3_000, 10_000, 30_000,
                                              100_000, 300_000, 1_000_000]
    seeds = _seeds(quick)
    table = Table(
        title=f"fig_data_scale [searchlogs shape, n={n}, eps={eps}]: "
              "scaled unit error vs total count",
        headers=["total"] + list(ROSTER),
        notes="scaled error = MAE / mean true count (unit-free); smaller "
              "totals make the same noise relatively larger",
    )
    for total in totals:
        hist = searchlogs(n_bins=n, total=total)
        unit = unit_queries(n)
        row: List[object] = [total]
        for factory in ROSTER.values():
            values = []
            for seed in seeds:
                result = factory().publish(hist, budget=eps, rng=seed)
                values.append(
                    evaluate_workload_error(hist, result.histogram,
                                            unit).scaled
                )
            row.append(float(np.mean(values)))
        table.add_row(*row)
    return [table]


def fig_smoothness(quick: bool = False) -> List[Table]:
    """Error vs number of true steps in piecewise-constant data.

    Structure-based publishers shine when the data really is bucketed
    (few steps) and degrade toward Dwork as the data loses structure.
    """
    n = 256
    eps = 0.05
    unit = unit_queries(n)
    steps = [2, 8, 32, 128]
    seeds = _seeds(quick)
    table = Table(
        title=f"fig_smoothness [step data, n={n}, eps={eps}]: unit MSE vs "
              "true step count",
        headers=["steps"] + list(ROSTER),
    )
    for n_steps in steps:
        hist = step_histogram(n, n_steps, total=100_000, rng=7)
        row: List[object] = [n_steps]
        for factory in ROSTER.values():
            values = []
            for seed in seeds:
                result = factory().publish(hist, budget=eps, rng=seed)
                values.append(
                    evaluate_workload_error(hist, result.histogram, unit).mse
                )
            row.append(float(np.mean(values)))
        table.add_row(*row)
    return [table]
