"""Table rendering for experiment results: text, markdown, and LaTeX.

Every experiment emits one or more :class:`Table` objects — the same
rows/series the paper's figures and tables report.  Three renderers
share the cell-formatting rules so a value prints identically in a
terminal (:func:`render_table`), a markdown document
(:func:`render_markdown`, used by ``repro paper`` and the dashboards),
and a LaTeX table body (:func:`render_latex`, ready for ``\\input`` in
a paper build).  All three are deterministic: same table, same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

__all__ = ["Table", "render_table", "render_markdown", "render_latex"]


@dataclass
class Table:
    """A titled grid of results."""

    title: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *cells: Any) -> None:
        """Append one row; must match the header width."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """Aligned monospace rendering (see :func:`render_table`)."""
        return render_table(self)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(table: Table) -> str:
    """Render a :class:`Table` with aligned columns and a rule line."""
    formatted: List[Sequence[str]] = [table.headers] + [
        [_format_cell(c) for c in row] for row in table.rows
    ]
    widths = [
        max(len(row[col]) for row in formatted)
        for col in range(len(table.headers))
    ]
    lines = [table.title, "=" * max(len(table.title), 1)]
    header = "  ".join(h.ljust(w) for h, w in zip(formatted[0], widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in formatted[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if table.notes:
        lines.append("")
        lines.append(f"note: {table.notes}")
    return "\n".join(lines)


def _md_escape(text: str) -> str:
    return text.replace("|", "\\|")


def render_markdown(table: Table) -> str:
    """GitHub-flavored markdown rendering of a :class:`Table`."""
    lines = [f"### {table.title}", ""]
    lines.append(
        "| " + " | ".join(_md_escape(h) for h in table.headers) + " |"
    )
    lines.append("| " + " | ".join("---" for _ in table.headers) + " |")
    for row in table.rows:
        cells = (_md_escape(_format_cell(c)) for c in row)
        lines.append("| " + " | ".join(cells) + " |")
    if table.notes:
        lines.append("")
        lines.append(f"_{table.notes}_")
    return "\n".join(lines) + "\n"


#: LaTeX specials in cell text (backslash handled via sentinel).
_LATEX_SPECIALS = (
    ("&", r"\&"), ("%", r"\%"), ("$", r"\$"), ("#", r"\#"),
    ("_", r"\_"), ("{", r"\{"), ("}", r"\}"),
    ("~", r"\textasciitilde{}"), ("^", r"\textasciicircum{}"),
    ("ε", r"$\varepsilon$"), ("↔", r"$\leftrightarrow$"),
    ("—", "--"),
)


def _latex_escape(text: str) -> str:
    # Input backslashes go through a sentinel so the braces of their
    # replacement (and the backslashes of every other replacement)
    # survive the remaining passes untouched.
    text = text.replace("\\", "\x00")
    for char, replacement in _LATEX_SPECIALS:
        text = text.replace(char, replacement)
    return text.replace("\x00", r"\textbackslash{}")


def render_latex(table: Table) -> str:
    """Booktabs-style LaTeX rendering of a :class:`Table`.

    Emits a complete ``table`` float (caption from the title, notes as
    a tablenotes line) so a paper build can ``\\input`` the file
    verbatim.  Requires ``\\usepackage{booktabs}``.
    """
    n_cols = len(table.headers)
    lines = [
        r"\begin{table}[ht]",
        r"\centering",
        rf"\caption{{{_latex_escape(table.title)}}}",
        rf"\begin{{tabular}}{{{'l' * n_cols}}}",
        r"\toprule",
        " & ".join(_latex_escape(h) for h in table.headers) + r" \\",
        r"\midrule",
    ]
    for row in table.rows:
        cells = (_latex_escape(_format_cell(c)) for c in row)
        lines.append(" & ".join(cells) + r" \\")
    lines.append(r"\bottomrule")
    lines.append(r"\end{tabular}")
    if table.notes:
        lines.append(
            rf"\par\smallskip\footnotesize {_latex_escape(table.notes)}"
        )
    lines.append(r"\end{table}")
    return "\n".join(lines) + "\n"
