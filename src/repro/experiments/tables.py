"""Plain-text table rendering for experiment results.

Every experiment emits one or more :class:`Table` objects — the same
rows/series the paper's figures and tables report — rendered as aligned
monospace text so results read cleanly from a terminal, a CI log, or
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

__all__ = ["Table", "render_table"]


@dataclass
class Table:
    """A titled grid of results."""

    title: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *cells: Any) -> None:
        """Append one row; must match the header width."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """Aligned monospace rendering (see :func:`render_table`)."""
        return render_table(self)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(table: Table) -> str:
    """Render a :class:`Table` with aligned columns and a rule line."""
    formatted: List[Sequence[str]] = [table.headers] + [
        [_format_cell(c) for c in row] for row in table.rows
    ]
    widths = [
        max(len(row[col]) for row in formatted)
        for col in range(len(table.headers))
    ]
    lines = [table.title, "=" * max(len(table.title), 1)]
    header = "  ".join(h.ljust(w) for h, w in zip(formatted[0], widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in formatted[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if table.notes:
        lines.append("")
        lines.append(f"note: {table.notes}")
    return "\n".join(lines)
