"""Ablation experiments probing the design choices DESIGN.md calls out.

These go beyond the paper: each isolates one ingredient of NoiseFirst /
StructureFirst / Boost and quantifies what it buys.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines import Boost, DworkIdentity
from repro.core import NoiseFirst, StructureFirst
from repro.datasets.standard import searchlogs
from repro.experiments.tables import Table
from repro.metrics.divergences import kl_divergence
from repro.metrics.evaluate import evaluate_workload_error
from repro.partition.voptimal import voptimal_table
from repro.postprocess.clamp import clamp_and_rescale
from repro.workloads.builders import fixed_length_ranges, unit_queries

__all__ = [
    "abl_nf_kstar",
    "abl_sf_sampling",
    "abl_consistency",
    "abl_postprocess",
    "abl_shape_prior",
]


def _seeds(quick: bool) -> List[int]:
    return list(range(3 if quick else 10))


def abl_nf_kstar(quick: bool = False) -> List[Table]:
    """NoiseFirst's adaptive k* vs fixed k vs the (non-private) oracle k.

    The oracle evaluates every candidate k against the *true* counts and
    picks the best — the unreachable lower bound for the estimator.
    """
    hist = searchlogs(n_bins=256, total=100_000)
    n = hist.size
    eps = 0.02
    unit = unit_queries(n)
    seeds = _seeds(quick)
    fixed_ks = [4, 16, 64, 128]
    table = Table(
        title=f"abl_nf_kstar [searchlogs, eps={eps}]: NF bucket-count policies",
        headers=["policy", "unit MSE", "median k"],
        notes="oracle picks argmin true error per seed (not private); "
              "adaptive must estimate it from noisy data alone",
    )
    for k in fixed_ks:
        values = []
        for seed in seeds:
            result = NoiseFirst(k=k).publish(hist, budget=eps, rng=seed)
            values.append(evaluate_workload_error(hist, result.histogram, unit).mse)
        table.add_row(f"fixed k={k}", float(np.mean(values)), k)

    adaptive_vals, adaptive_ks = [], []
    for seed in seeds:
        result = NoiseFirst().publish(hist, budget=eps, rng=seed)
        adaptive_vals.append(
            evaluate_workload_error(hist, result.histogram, unit).mse
        )
        adaptive_ks.append(result.meta["k"])
    table.add_row("adaptive k*", float(np.mean(adaptive_vals)),
                  int(np.median(adaptive_ks)))

    oracle_vals, oracle_ks = [], []
    max_k = 128
    for seed in seeds:
        # Recreate the same noisy draw NF would see, then pick k by true
        # error — an oracle with NF's exact noise realization.
        noisy = (
            hist.counts
            + np.random.default_rng(seed).laplace(0.0, 1.0 / eps, size=n)
        )
        dp_table = voptimal_table(noisy, max_k)
        best_err, best_k = np.inf, 1
        for k in range(1, max_k + 1):
            approx = dp_table.partition_for(k).apply_means(noisy)
            err = float(np.mean((approx - hist.counts) ** 2))
            if err < best_err:
                best_err, best_k = err, k
        oracle_vals.append(best_err)
        oracle_ks.append(best_k)
    table.add_row("oracle k", float(np.mean(oracle_vals)),
                  int(np.median(oracle_ks)))
    return [table]


def abl_sf_sampling(quick: bool = False) -> List[Table]:
    """StructureFirst structure policies: EM vs equi-width vs oracle.

    Quantifies how much the exponential-mechanism boundary sampling buys
    over a data-independent structure, and how far it sits from the
    non-private v-optimal structure.
    """
    hist = searchlogs(n_bins=256, total=100_000)
    n = hist.size
    unit = unit_queries(n)
    long_w = fixed_length_ranges(n, n // 4)
    seeds = _seeds(quick)
    table = Table(
        title="abl_sf_sampling [searchlogs]: SF structure policy vs epsilon",
        headers=["epsilon", "policy", "unit MSE", "range MSE"],
        notes="oracle uses the true v-optimal structure (not private); "
              "uniform spends its whole budget on counts",
    )
    for eps in [0.05, 0.5]:
        for mode in ("em", "uniform", "oracle"):
            unit_vals, range_vals = [], []
            for seed in seeds:
                result = StructureFirst(structure_mode=mode).publish(
                    hist, budget=eps, rng=seed
                )
                unit_vals.append(
                    evaluate_workload_error(hist, result.histogram, unit).mse
                )
                range_vals.append(
                    evaluate_workload_error(hist, result.histogram, long_w).mse
                )
            table.add_row(eps, mode, float(np.mean(unit_vals)),
                          float(np.mean(range_vals)))
    return [table]


def abl_consistency(quick: bool = False) -> List[Table]:
    """Boost with vs without the least-squares consistency step."""
    hist = searchlogs(n_bins=256, total=100_000)
    n = hist.size
    unit = unit_queries(n)
    long_w = fixed_length_ranges(n, n // 4)
    seeds = _seeds(quick)
    table = Table(
        title="abl_consistency [searchlogs]: Boost consistency on/off",
        headers=["epsilon", "consistency", "unit MSE", "range MSE"],
        notes="consistency is an orthogonal projection, so it should never "
              "increase expected error",
    )
    for eps in [0.05, 0.5]:
        for consistency in (True, False):
            unit_vals, range_vals = [], []
            for seed in seeds:
                result = Boost(consistency=consistency).publish(
                    hist, budget=eps, rng=seed
                )
                unit_vals.append(
                    evaluate_workload_error(hist, result.histogram, unit).mse
                )
                range_vals.append(
                    evaluate_workload_error(hist, result.histogram, long_w).mse
                )
            table.add_row(eps, "on" if consistency else "off",
                          float(np.mean(unit_vals)), float(np.mean(range_vals)))
    return [table]


def abl_shape_prior(quick: bool = False) -> List[Table]:
    """Isotonic (monotone-decreasing) projection on degree-style data.

    Degree distributions are publicly known to decay, so projecting the
    noisy release onto non-increasing sequences is free post-processing
    with a real prior behind it.  This quantifies the gain per publisher
    on the socialnetwork dataset.
    """
    from repro.datasets.standard import socialnetwork
    from repro.postprocess.smoothing import isotonic_decreasing

    hist = socialnetwork(n_bins=256, total=1_000_000)
    n = hist.size
    unit = unit_queries(n)
    seeds = _seeds(quick)
    table = Table(
        title="abl_shape_prior [socialnetwork]: isotonic projection gain",
        headers=["epsilon", "publisher", "raw unit MSE", "isotonic unit MSE",
                 "gain"],
        notes="the projection exploits the public monotone-decay prior of "
              "degree distributions; gain = raw / isotonic",
    )
    for eps in [0.01, 0.1]:
        for factory in (DworkIdentity, NoiseFirst, StructureFirst):
            raw_vals, iso_vals = [], []
            for seed in seeds:
                result = factory().publish(hist, budget=eps, rng=seed)
                raw = result.histogram
                iso = raw.with_counts(isotonic_decreasing(raw.counts))
                raw_vals.append(
                    evaluate_workload_error(hist, raw, unit).mse
                )
                iso_vals.append(
                    evaluate_workload_error(hist, iso, unit).mse
                )
            raw_mean = float(np.mean(raw_vals))
            iso_mean = float(np.mean(iso_vals))
            table.add_row(eps, factory().name, raw_mean, iso_mean,
                          round(raw_mean / max(iso_mean, 1e-12), 2))
    return [table]


def abl_postprocess(quick: bool = False) -> List[Table]:
    """Effect of non-negativity clamping + rescaling on each publisher."""
    hist = searchlogs(n_bins=256, total=100_000)
    n = hist.size
    eps = 0.02
    unit = unit_queries(n)
    seeds = _seeds(quick)
    table = Table(
        title=f"abl_postprocess [searchlogs, eps={eps}]: clamp+rescale effect",
        headers=["publisher", "raw unit MSE", "clamped unit MSE", "raw KL",
                 "clamped KL"],
        notes="clamping is free post-processing; it helps most where noise "
              "pushes many small counts negative",
    )
    for factory in (DworkIdentity, NoiseFirst, StructureFirst, Boost):
        raw_mse, cl_mse, raw_kl, cl_kl = [], [], [], []
        for seed in seeds:
            result = factory().publish(hist, budget=eps, rng=seed)
            clamped = clamp_and_rescale(result.histogram)
            raw_mse.append(
                evaluate_workload_error(hist, result.histogram, unit).mse
            )
            cl_mse.append(evaluate_workload_error(hist, clamped, unit).mse)
            raw_kl.append(kl_divergence(hist.counts, result.histogram.counts))
            cl_kl.append(kl_divergence(hist.counts, clamped.counts))
        table.add_row(factory().name, float(np.mean(raw_mse)),
                      float(np.mean(cl_mse)), float(np.mean(raw_kl)),
                      float(np.mean(cl_kl)))
    return [table]
