"""Experiment execution.

``run_once`` executes a single (publisher, dataset, epsilon, seed) cell;
``run_matrix`` repeats a spec over its seeds — serially or on a process
pool — and returns the raw records for aggregation.

Timing: ``RunRecord.seconds`` wraps a monotonic stopwatch around the
publish call only (that is what the scalability figure reports), while
``RunRecord.meta['t_eval_seconds']`` separately records the wall-clock
of the workload evaluation, so post-processing cost is observable too.

Reserved timing-exempt meta namespace
-------------------------------------
Every observability output a trial produces rides inside
``RunRecord.meta`` under a *reserved namespace* that the determinism
comparisons ignore: keys starting with ``t_`` (``t_eval_seconds``,
``t_peak_bytes``, ``t_ru_utime``, ...), the ``trace`` key (the
serialized span tree from :mod:`repro.obs.trace`), and the legacy
``eval_seconds`` spelling older journals used.
:func:`is_timing_meta_key` is the single membership test;
:func:`strip_timing` *removes* those keys (rather than zeroing them) so
records from traced and untraced runs — or old and new journals —
still compare equal in every statistical field.

Parallelism and determinism
---------------------------
``run_matrix(spec, n_jobs=4)`` fans the seeds out over a *supervised*
process pool (:mod:`repro.robust.executor`).  Every seed owns an
independent child RNG (``numpy.random.default_rng(seed)`` is
constructed inside the worker from the integer seed alone), so a record
depends only on its ``(spec, seed)`` pair — never on which process ran
it, in what order, or on which retry attempt.  Parallel results are
therefore bit-identical to serial ones in every statistical field —
even across worker crashes, timeouts and ``--resume`` — and only the
wall-clock fields differ; :func:`strip_timing` normalizes those for
comparisons.

Fault tolerance
---------------
``run_matrix`` accepts ``timeout=``, ``retries=``, ``journal=``,
``resume=`` and ``strict=`` and forwards them to
:func:`repro.robust.executor.run_supervised`; see ``docs/robustness.md``
for the failure taxonomy and recovery semantics.  The defaults preserve
the historical fail-fast behavior exactly.
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Union

from repro._validation import check_integer
from repro.core.publisher import Publisher
from repro.experiments.spec import ExperimentSpec
from repro.hist.histogram import Histogram
from repro.metrics.divergences import kl_divergence, ks_distance
from repro.metrics.evaluate import WorkloadErrors, evaluate_workload_error
from repro.obs import resources as _resources
from repro.obs import trace as _trace
from repro.obs.trace import Stopwatch
from repro.robust import faults
from repro.robust.records import FailedRecord
from repro.workloads.workload import Workload

__all__ = [
    "RunRecord",
    "run_once",
    "run_matrix",
    "resolve_n_jobs",
    "is_timing_meta_key",
    "strip_timing",
    "records_equal",
]

#: Legacy timing key spelling (pre-namespace journals); still exempt.
_LEGACY_TIMING_META_KEYS = ("eval_seconds",)


def is_timing_meta_key(key: str) -> bool:
    """Whether a ``RunRecord.meta`` key is in the timing-exempt namespace.

    The reserved namespace is ``t_*`` (probe outputs and wall-clocks),
    ``trace`` (the serialized span tree), and the legacy
    ``eval_seconds`` spelling.  Anything under it is excluded from
    :func:`strip_timing`/:func:`records_equal` — i.e. it never
    participates in the parallel-equals-serial bit-identity contract.
    """
    return (
        key.startswith("t_")
        or key == "trace"
        or key in _LEGACY_TIMING_META_KEYS
    )


@dataclass(frozen=True)
class RunRecord:
    """Raw outcome of one publish + evaluation."""

    spec_name: str
    publisher: str
    seed: int
    epsilon: float
    seconds: float
    kl: float
    ks: float
    workload_errors: Dict[str, WorkloadErrors] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def metric(self, workload: str, name: str) -> float:
        """Look up one workload metric, e.g. ``record.metric('unit', 'mse')``."""
        try:
            errors = self.workload_errors[workload]
        except KeyError:
            raise KeyError(
                f"no workload {workload!r} in record; have "
                f"{sorted(self.workload_errors)}"
            ) from None
        return errors.as_dict()[name]


def run_once(
    truth: Histogram,
    publisher: Publisher,
    epsilon: float,
    workloads: "List[Workload] | tuple",
    seed: int,
    spec_name: str = "",
) -> RunRecord:
    """Publish once and evaluate all workloads and divergences.

    ``seconds`` times the publish call only; the evaluation wall-clock
    is reported separately as ``meta['t_eval_seconds']``.  With tracing
    enabled (``REPRO_TRACE`` / ``--trace``) the trial's span tree is
    attached as ``meta['trace']``; with the resource probe enabled the
    ``t_peak_bytes`` / ``t_ru_*`` fields join it.  All of that lives in
    the timing-exempt namespace (:func:`is_timing_meta_key`), so traced
    and untraced runs stay bit-identical in every statistical field.
    """
    with _resources.sample() as probe, _trace.capture(
        "trial", publisher=publisher.name, seed=seed, epsilon=epsilon,
    ) as root:
        with _trace.span("publish"):
            with Stopwatch() as publish_sw:
                result = publisher.publish(truth, budget=epsilon, rng=seed)
        with _trace.span("evaluate", workloads=len(workloads)):
            with Stopwatch() as eval_sw:
                errors = {
                    w.name: evaluate_workload_error(
                        truth, result.histogram, w)
                    for w in workloads
                }
                kl = kl_divergence(truth.counts, result.histogram.counts)
                ks = ks_distance(truth.counts, result.histogram.counts)
    meta = dict(result.meta)
    meta["t_eval_seconds"] = eval_sw.seconds
    if root is not None:
        meta["trace"] = root.to_dict()
    if probe is not None and probe.meta:
        meta.update(probe.meta)
    return RunRecord(
        spec_name=spec_name,
        publisher=publisher.name,
        seed=seed,
        epsilon=epsilon,
        seconds=publish_sw.seconds,
        kl=kl,
        ks=ks,
        workload_errors=errors,
        meta=meta,
    )


def _run_seed(spec: ExperimentSpec, seed: int) -> RunRecord:
    """One seed of a spec; module-level so process pools can pickle it.

    The two :mod:`repro.robust.faults` hooks are no-ops unless the
    ``REPRO_FAULT_PLAN`` environment variable names an active fault
    plan; they exist so the chaos suite can deterministically raise,
    kill, hang, or NaN-corrupt a trial *inside* the worker process.
    """
    publisher = spec.publisher_factory()
    faults.maybe_inject(spec.name, publisher.name, seed)
    record = run_once(
        spec.histogram,
        publisher,
        spec.epsilon,
        list(spec.workloads),
        seed,
        spec_name=spec.name,
    )
    record = faults.maybe_corrupt(record)
    meta = dict(record.meta)
    meta["spec_epsilon"] = spec.epsilon
    return replace(record, meta=meta)


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` means one worker per CPU;
    any other value must be a positive integer.
    """
    if n_jobs is None:
        return 1
    check_integer(n_jobs, "n_jobs")
    if n_jobs == -1:
        return max(os.cpu_count() or 1, 1)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return int(n_jobs)


def run_matrix(
    spec: ExperimentSpec,
    n_jobs: Optional[int] = None,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.5,
    journal: "Any | None" = None,
    resume: bool = False,
    retry_failed: bool = False,
    strict: bool = True,
    sleep: Callable[[float], None] = time.sleep,
    observer: "Any | None" = None,
) -> List[Union[RunRecord, FailedRecord]]:
    """Run a spec once per seed; returns the raw records in seed order.

    Execution goes through the supervised executor
    (:func:`repro.robust.executor.run_supervised`): the spec is pickled
    once and shipped per worker (not per seed), hung trials time out,
    dead workers respawn the pool and re-dispatch only missing seeds,
    and completed trials can be checkpointed to a JSONL journal.  With
    the defaults (no timeout, no retries, ``strict=True``) the behavior
    is exactly the historical fail-fast contract.

    Parameters
    ----------
    spec:
        The experiment cell; ``spec.n_jobs`` supplies the default worker
        count.
    n_jobs:
        Overrides ``spec.n_jobs`` when given: 1 = serial, ``N`` = that
        many worker processes, -1 = all CPUs.  Parallel execution is
        bit-identical to serial (see the module docstring); if the spec
        cannot be pickled (e.g. a lambda publisher factory) the run
        falls back to serial with a warning.
    timeout:
        Per-trial wall-clock budget in seconds; a hung worker is killed
        and the seed retried.  Only enforceable with ``n_jobs > 1``.
    retries:
        Failed-attempt budget per seed before the cell is given up
        (raised under ``strict``, quarantined into a
        :class:`~repro.robust.records.FailedRecord` otherwise).
    backoff:
        Base of the exponential retry delay (``backoff * 2**(k-1)``
        seconds before attempt ``k+1``, capped).
    journal / resume:
        A :class:`~repro.robust.journal.CheckpointJournal` (or path) to
        append completed trials to; with ``resume=True`` matching
        entries are loaded and only missing seeds run.
    retry_failed:
        With ``resume=True``: journaled quarantines
        (:class:`FailedRecord` entries) get fresh attempts instead of
        being carried forward — use after fixing a transient failure.
    strict:
        ``True`` (default): exhausting a seed's attempts raises — the
        historical fail-fast behavior.  ``False``: the cell degrades
        into a ``FailedRecord`` and the rest of the matrix completes.
    sleep:
        Injection point for the backoff sleeps (tests pass a no-op).
    observer:
        An :class:`repro.obs.monitor.ExecutorObserver` receiving
        executor lifecycle events (dispatches, completions, strikes,
        pool respawns).  Observer exceptions are downgraded to warnings
        — observability never fails a run.
    """
    from repro.robust.executor import run_supervised

    return run_supervised(
        spec,
        n_jobs,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        journal=journal,
        resume=resume,
        retry_failed=retry_failed,
        strict=strict,
        sleep=sleep,
        observer=observer,
    )


def strip_timing(record: RunRecord) -> RunRecord:
    """Drop wall-clock/observability fields, keeping every statistical one.

    Wall-clock and trace output are the only parts of a record that
    legitimately differ between serial and parallel execution (or
    between traced and untraced runs); compare the stripped records with
    :func:`records_equal` to assert bit-identical results (plain ``==``
    trips over numpy arrays in ``meta``).  The exempt keys are *removed*
    rather than zeroed so that records carrying different subsets of the
    reserved namespace — an old journal's ``eval_seconds``, a traced
    run's ``trace`` tree, a probed run's ``t_peak_bytes`` — still
    compare equal.
    """
    meta = {
        key: value for key, value in record.meta.items()
        if not is_timing_meta_key(key)
    }
    return replace(record, seconds=0.0, meta=meta)


def _values_equal(a: Any, b: Any) -> bool:
    """Structural equality: array-aware, dataclass-aware, NaN-aware.

    Scalar floats compare NaN == NaN (a NaN-valued metric in two
    bit-identical records must not make them unequal); numpy arrays use
    ``array_equal(..., equal_nan=True)`` for float dtypes; dataclasses
    (e.g. :class:`~repro.metrics.evaluate.WorkloadErrors`) compare field
    by field under the same rules.
    """
    import numpy as np

    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        if a.shape != b.shape or a.dtype != b.dtype:
            return False
        if np.issubdtype(a.dtype, np.inexact):
            return bool(np.array_equal(a, b, equal_nan=True))
        return bool(np.array_equal(a, b))
    if (
        dataclasses.is_dataclass(a)
        and dataclasses.is_dataclass(b)
        and not isinstance(a, type)
        and not isinstance(b, type)
    ):
        if type(a) is not type(b):
            return False
        return all(
            _values_equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, float) and isinstance(b, float):
        # Covers the NaN-valued kl/ks/metric fields: plain == is False
        # for NaN even when both sides are bit-identical.
        return a == b or (math.isnan(a) and math.isnan(b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _values_equal(a[k], b[k]) for k in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _values_equal(x, y) for x, y in zip(a, b)
        )
    try:
        return bool(a == b)
    except Exception:
        return False


def records_equal(a: RunRecord, b: RunRecord, ignore_timing: bool = True) -> bool:
    """Field-by-field record equality, array- and NaN-aware.

    With ``ignore_timing`` (the default) both records pass through
    :func:`strip_timing` first, so the comparison asserts exactly the
    bit-identical-statistics contract of parallel ``run_matrix``.
    NaN-valued metrics compare equal to themselves (bit-identical runs
    that both produced NaN are still identical runs).
    """
    if ignore_timing:
        a, b = strip_timing(a), strip_timing(b)
    return (
        a.spec_name == b.spec_name
        and a.publisher == b.publisher
        and a.seed == b.seed
        and _values_equal(float(a.epsilon), float(b.epsilon))
        and _values_equal(float(a.seconds), float(b.seconds))
        and _values_equal(float(a.kl), float(b.kl))
        and _values_equal(float(a.ks), float(b.ks))
        and _values_equal(a.workload_errors, b.workload_errors)
        and _values_equal(a.meta, b.meta)
    )
