"""Experiment execution.

``run_once`` executes a single (publisher, dataset, epsilon, seed) cell;
``run_matrix`` repeats a spec over its seeds and returns the raw records
for aggregation.  Timing uses ``time.perf_counter`` around the publish
call only (workload evaluation is excluded), which is what the
scalability figure reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.core.publisher import Publisher
from repro.experiments.spec import ExperimentSpec
from repro.hist.histogram import Histogram
from repro.metrics.divergences import kl_divergence, ks_distance
from repro.metrics.evaluate import WorkloadErrors, evaluate_workload_error
from repro.workloads.workload import Workload

__all__ = ["RunRecord", "run_once", "run_matrix"]


@dataclass(frozen=True)
class RunRecord:
    """Raw outcome of one publish + evaluation."""

    spec_name: str
    publisher: str
    seed: int
    epsilon: float
    seconds: float
    kl: float
    ks: float
    workload_errors: Dict[str, WorkloadErrors] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def metric(self, workload: str, name: str) -> float:
        """Look up one workload metric, e.g. ``record.metric('unit', 'mse')``."""
        try:
            errors = self.workload_errors[workload]
        except KeyError:
            raise KeyError(
                f"no workload {workload!r} in record; have "
                f"{sorted(self.workload_errors)}"
            ) from None
        return errors.as_dict()[name]


def run_once(
    truth: Histogram,
    publisher: Publisher,
    epsilon: float,
    workloads: "List[Workload] | tuple",
    seed: int,
    spec_name: str = "",
) -> RunRecord:
    """Publish once and evaluate all workloads and divergences."""
    start = time.perf_counter()
    result = publisher.publish(truth, budget=epsilon, rng=seed)
    elapsed = time.perf_counter() - start
    errors = {
        w.name: evaluate_workload_error(truth, result.histogram, w)
        for w in workloads
    }
    return RunRecord(
        spec_name=spec_name,
        publisher=publisher.name,
        seed=seed,
        epsilon=epsilon,
        seconds=elapsed,
        kl=kl_divergence(truth.counts, result.histogram.counts),
        ks=ks_distance(truth.counts, result.histogram.counts),
        workload_errors=errors,
        meta=dict(result.meta),
    )


def run_matrix(spec: ExperimentSpec) -> List[RunRecord]:
    """Run a spec once per seed; returns the raw records in seed order."""
    records = []
    for seed in spec.seeds:
        publisher = spec.publisher_factory()
        records.append(
            run_once(
                spec.histogram,
                publisher,
                spec.epsilon,
                list(spec.workloads),
                seed,
                spec_name=spec.name,
            )
        )
    return records
