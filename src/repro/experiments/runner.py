"""Experiment execution.

``run_once`` executes a single (publisher, dataset, epsilon, seed) cell;
``run_matrix`` repeats a spec over its seeds — serially or on a process
pool — and returns the raw records for aggregation.

Timing: ``RunRecord.seconds`` wraps ``time.perf_counter`` around the
publish call only (that is what the scalability figure reports), while
``RunRecord.meta['eval_seconds']`` separately records the wall-clock of
the workload evaluation, so post-processing cost is observable too.

Parallelism and determinism
---------------------------
``run_matrix(spec, n_jobs=4)`` fans the seeds out over a
``ProcessPoolExecutor``.  Every seed owns an independent child RNG
(``numpy.random.default_rng(seed)`` is constructed inside the worker
from the integer seed alone), so a record depends only on its
``(spec, seed)`` pair — never on which process ran it or in what order.
Parallel results are therefore bit-identical to serial ones in every
statistical field; only the wall-clock fields differ, and
:func:`strip_timing` normalizes those for comparisons.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro._validation import check_integer
from repro.core.publisher import Publisher
from repro.experiments.spec import ExperimentSpec
from repro.hist.histogram import Histogram
from repro.metrics.divergences import kl_divergence, ks_distance
from repro.metrics.evaluate import WorkloadErrors, evaluate_workload_error
from repro.workloads.workload import Workload

__all__ = [
    "RunRecord",
    "run_once",
    "run_matrix",
    "resolve_n_jobs",
    "strip_timing",
    "records_equal",
]

#: Timing-carrying fields inside ``RunRecord.meta``; excluded from
#: determinism comparisons by :func:`strip_timing`.
_TIMING_META_KEYS = ("eval_seconds",)


@dataclass(frozen=True)
class RunRecord:
    """Raw outcome of one publish + evaluation."""

    spec_name: str
    publisher: str
    seed: int
    epsilon: float
    seconds: float
    kl: float
    ks: float
    workload_errors: Dict[str, WorkloadErrors] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def metric(self, workload: str, name: str) -> float:
        """Look up one workload metric, e.g. ``record.metric('unit', 'mse')``."""
        try:
            errors = self.workload_errors[workload]
        except KeyError:
            raise KeyError(
                f"no workload {workload!r} in record; have "
                f"{sorted(self.workload_errors)}"
            ) from None
        return errors.as_dict()[name]


def run_once(
    truth: Histogram,
    publisher: Publisher,
    epsilon: float,
    workloads: "List[Workload] | tuple",
    seed: int,
    spec_name: str = "",
) -> RunRecord:
    """Publish once and evaluate all workloads and divergences.

    ``seconds`` times the publish call only; the evaluation wall-clock is
    reported separately as ``meta['eval_seconds']``.
    """
    start = time.perf_counter()
    result = publisher.publish(truth, budget=epsilon, rng=seed)
    elapsed = time.perf_counter() - start
    eval_start = time.perf_counter()
    errors = {
        w.name: evaluate_workload_error(truth, result.histogram, w)
        for w in workloads
    }
    kl = kl_divergence(truth.counts, result.histogram.counts)
    ks = ks_distance(truth.counts, result.histogram.counts)
    eval_elapsed = time.perf_counter() - eval_start
    meta = dict(result.meta)
    meta["eval_seconds"] = eval_elapsed
    return RunRecord(
        spec_name=spec_name,
        publisher=publisher.name,
        seed=seed,
        epsilon=epsilon,
        seconds=elapsed,
        kl=kl,
        ks=ks,
        workload_errors=errors,
        meta=meta,
    )


def _run_seed(spec: ExperimentSpec, seed: int) -> RunRecord:
    """One seed of a spec; module-level so process pools can pickle it."""
    publisher = spec.publisher_factory()
    record = run_once(
        spec.histogram,
        publisher,
        spec.epsilon,
        list(spec.workloads),
        seed,
        spec_name=spec.name,
    )
    meta = dict(record.meta)
    meta["spec_epsilon"] = spec.epsilon
    return replace(record, meta=meta)


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` means one worker per CPU;
    any other value must be a positive integer.
    """
    if n_jobs is None:
        return 1
    check_integer(n_jobs, "n_jobs")
    if n_jobs == -1:
        return max(os.cpu_count() or 1, 1)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return int(n_jobs)


def run_matrix(
    spec: ExperimentSpec, n_jobs: Optional[int] = None
) -> List[RunRecord]:
    """Run a spec once per seed; returns the raw records in seed order.

    Parameters
    ----------
    spec:
        The experiment cell; ``spec.n_jobs`` supplies the default worker
        count.
    n_jobs:
        Overrides ``spec.n_jobs`` when given: 1 = serial, ``N`` = that
        many worker processes, -1 = all CPUs.  Parallel execution is
        bit-identical to serial (see the module docstring); if the spec
        cannot be pickled (e.g. a lambda publisher factory) the run
        falls back to serial with a warning.
    """
    workers = resolve_n_jobs(spec.n_jobs if n_jobs is None else n_jobs)
    seeds = list(spec.seeds)
    if workers > 1 and len(seeds) > 1:
        try:
            pickle.dumps(spec)
        except Exception as exc:  # lambdas, local classes, open handles...
            warnings.warn(
                f"spec {spec.name!r} is not picklable ({exc}); "
                "running serially",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            with ProcessPoolExecutor(max_workers=min(workers,
                                                     len(seeds))) as pool:
                return list(pool.map(_run_seed, [spec] * len(seeds), seeds))
    return [_run_seed(spec, seed) for seed in seeds]


def strip_timing(record: RunRecord) -> RunRecord:
    """Zero out wall-clock fields, keeping every statistical field.

    Wall-clock is the only part of a record that legitimately differs
    between serial and parallel execution; compare the stripped records
    with :func:`records_equal` to assert bit-identical results (plain
    ``==`` trips over numpy arrays in ``meta``).
    """
    meta = dict(record.meta)
    for key in _TIMING_META_KEYS:
        if key in meta:
            meta[key] = 0.0
    return replace(record, seconds=0.0, meta=meta)


def _values_equal(a: Any, b: Any) -> bool:
    """Structural equality that tolerates numpy arrays anywhere."""
    import numpy as np

    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and bool(np.array_equal(a, b, equal_nan=True))
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _values_equal(a[k], b[k]) for k in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _values_equal(x, y) for x, y in zip(a, b)
        )
    try:
        return bool(a == b)
    except Exception:
        return False


def records_equal(a: RunRecord, b: RunRecord, ignore_timing: bool = True) -> bool:
    """Field-by-field record equality, array-aware.

    With ``ignore_timing`` (the default) both records pass through
    :func:`strip_timing` first, so the comparison asserts exactly the
    bit-identical-statistics contract of parallel ``run_matrix``.
    """
    if ignore_timing:
        a, b = strip_timing(a), strip_timing(b)
    return (
        a.spec_name == b.spec_name
        and a.publisher == b.publisher
        and a.seed == b.seed
        and a.epsilon == b.epsilon
        and a.seconds == b.seconds
        and a.kl == b.kl
        and a.ks == b.ks
        and a.workload_errors == b.workload_errors
        and _values_equal(a.meta, b.meta)
    )
