"""Supervised, fault-tolerant execution of experiment matrices.

:func:`run_supervised` replaces the old ``pool.map`` fan-out with
per-seed futures under an explicit supervisor:

* **timeouts** — every trial gets ``timeout`` seconds of wall clock;
  a hung worker is detected, the pool is killed and respawned, and only
  the unfinished seeds are re-dispatched;
* **crash recovery** — an abruptly dead worker (segfault, OOM-kill,
  ``os._exit``) breaks the pool; completed sibling results are harvested
  first, then the pool is respawned.  Because a broken pool cannot say
  *which* task killed it, the supervisor switches the suspect seeds into
  **solo-probe mode** (one seed per wave) where a crash is unambiguously
  attributable — innocent seeds never accumulate crash strikes;
* **bounded retry with exponential backoff** — each failing seed is
  retried up to ``retries`` times (delay ``backoff * 2**(attempt-1)``,
  capped), then **quarantined**: under ``strict=True`` the underlying
  error is raised (fail-fast, the historical behavior), otherwise the
  cell degrades into a :class:`~repro.robust.records.FailedRecord` and
  the rest of the matrix keeps running.  Backoff sleeps are *deferred*:
  a strike only schedules the delay, which is served between dispatches
  — never inside a wave's collection loop, where it would eat the
  shared timeout window, stall hung-worker detection, and postpone the
  journaling of already-finished sibling results;
* **checkpoint journal** — with a
  :class:`~repro.robust.journal.CheckpointJournal`, every completed
  trial is durably appended the moment it finishes, and ``resume=True``
  pre-loads matching entries so an interrupted sweep continues from
  where it died.  Journaled :class:`FailedRecord` quarantines are
  honored on resume by default; ``retry_failed=True`` gives them fresh
  attempts instead (e.g. after fixing a transient environment problem).

Determinism under retry
-----------------------
A retried seed re-runs with the *same* integer seed, and every trial's
RNG is constructed from that integer alone, so retries (and resumes)
reproduce the exact record a fault-free run would have produced — the
parallel-equals-serial bit-identical contract survives supervision.

The spec is pickled **once** and shipped to each worker through the pool
initializer (not once per seed as ``pool.map`` used to), which also
means a respawned pool re-ships it automatically.
"""

from __future__ import annotations

import pickle
import time
import warnings
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Any, Callable, Dict, List, Optional, Set, Union

from repro.exceptions import (
    TrialQuarantinedError,
    TrialTimeoutError,
    WorkerCrashError,
)
from repro.robust.journal import CheckpointJournal, spec_fingerprint
from repro.robust.records import FailedRecord

__all__ = ["run_supervised", "BACKOFF_CAP"]

#: Upper bound on a single retry backoff sleep, in seconds.
BACKOFF_CAP = 30.0

#: Consecutive pool generations allowed to make zero progress (no
#: completion, strike, or new probe member) before the supervisor
#: declares the pool unrecoverable.
_MAX_BARREN_GENERATIONS = 3


class _SafeObserver:
    """Exception-firewalled proxy around an executor observer.

    Observability must never fail a run: every hook call is wrapped,
    and an observer exception is downgraded to a ``RuntimeWarning``.
    ``None`` wraps to a pure no-op, so the supervisor calls hooks
    unconditionally.  The observer is duck-typed (any object exposing
    the :class:`repro.obs.monitor.ExecutorObserver` hook names works),
    which keeps this module free of an ``repro.obs`` import.
    """

    __slots__ = ("_observer",)

    def __init__(self, observer: Any) -> None:
        self._observer = observer

    def __getattr__(self, name: str) -> Callable[..., None]:
        if not name.startswith("on_"):
            raise AttributeError(name)
        hook = getattr(self._observer, name, None) \
            if self._observer is not None else None

        if hook is None:
            return lambda *args, **kwargs: None

        def call(*args: Any, **kwargs: Any) -> None:
            try:
                hook(*args, **kwargs)
            except Exception as exc:
                warnings.warn(
                    f"observer hook {name} failed: "
                    f"{type(exc).__name__}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )

        return call


# ---------------------------------------------------------------------------
# Worker side: the spec is shipped once per process via the initializer
# ---------------------------------------------------------------------------

_WORKER_SPEC: Any = None


def _init_worker(payload: bytes) -> None:
    """Pool initializer: unpickle the spec once for this worker."""
    global _WORKER_SPEC
    _WORKER_SPEC = pickle.loads(payload)


def _worker_run_seed(seed: int):
    """Run one seed against the worker-resident spec."""
    from repro.experiments.runner import _run_seed

    return _run_seed(_WORKER_SPEC, seed)


def _stop_pool(pool: ProcessPoolExecutor, kill: bool) -> None:
    """Shut a pool down; with ``kill``, terminate workers first.

    Killing is required on the timeout path — a hung worker never
    returns, so a cooperative shutdown would block forever.  The
    ``_processes`` attribute is CPython's worker table; absence (other
    implementations) degrades to a plain non-waiting shutdown.
    """
    if kill:
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.kill()
            except Exception:
                pass
    try:
        pool.shutdown(wait=not kill, cancel_futures=True)
    except Exception:
        pass


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------

class _Supervisor:
    """State machine driving one spec's seeds to completion."""

    def __init__(
        self,
        spec: Any,
        *,
        workers: int,
        timeout: Optional[float],
        retries: int,
        backoff: float,
        strict: bool,
        journal: Optional[CheckpointJournal],
        retry_failed: bool,
        sleep: Callable[[float], None],
        observer: Any = None,
    ) -> None:
        self.spec = spec
        self.observer = _SafeObserver(observer)
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.strict = strict
        self.journal = journal
        self.retry_failed = retry_failed
        self.sleep = sleep
        self.fingerprint = (
            spec_fingerprint(spec) if journal is not None else ""
        )
        self.results: Dict[int, Union["RunRecord", FailedRecord]] = {}  # noqa: F821
        self.attempts: Dict[int, int] = {}
        self.pending: List[int] = []
        self.probe: Set[int] = set()
        self.progress = 0  # completions + strikes + probe growth
        #: Set on the timeout path *before* striking, so that even when
        #: a strict-mode strike raises out of the collection loop, the
        #: pool teardown in :meth:`run_parallel` still kills the hung
        #: worker instead of joining it (which would deadlock).
        self.must_kill = False
        #: Deferred backoff delays, served between dispatches.
        self._backoff_pending: List[float] = []
        self._publisher_name: Optional[str] = None

    # -- identity helpers ---------------------------------------------
    @property
    def publisher_name(self) -> str:
        if self._publisher_name is None:
            self._publisher_name = self.spec.publisher_factory().name
        return self._publisher_name

    # -- bookkeeping ---------------------------------------------------
    def load_resume(self) -> None:
        if self.journal is None:
            return
        done = self.journal.seeds_done(self.fingerprint)
        for seed in self.spec.seeds:
            if seed in done and seed not in self.results:
                record = done[seed]
                if self.retry_failed and isinstance(record, FailedRecord):
                    # Journaled quarantine, but the operator asked for a
                    # fresh attempt (the failure may have been a worker
                    # OOM or other transient): leave the seed pending.
                    continue
                self.results[seed] = record

    def _complete(self, seed: int, record: Any) -> None:
        self.results[seed] = record
        if seed in self.pending:
            self.pending.remove(seed)
        self.probe.discard(seed)
        self.progress += 1
        if self.journal is not None:
            self.journal.append(record, self.fingerprint)
            self.observer.on_journal_append(self.spec.name)
        self.observer.on_seed_done(self.spec.name, seed, record)

    def _strike(self, seed: int, kind: str, cause: Any) -> None:
        """Record one failed attempt; quarantine when the budget is out.

        ``kind`` is ``"timeout"`` / ``"crash"`` / ``"raise"``; ``cause``
        is the underlying exception (for ``raise``) or a description.

        The backoff delay is *scheduled*, not slept here: a strike can
        happen mid-wave, and sleeping inside the collection loop would
        both consume the wave's shared timeout budget (falsely shrinking
        sibling deadlines) and postpone harvesting/journaling of results
        that have already finished.  :meth:`_flush_backoff` serves the
        delay at the next dispatch point instead.
        """
        self.attempts[seed] = self.attempts.get(seed, 0) + 1
        self.progress += 1
        will_retry = self.attempts[seed] <= self.retries
        self.observer.on_strike(
            self.spec.name, seed, kind, self.attempts[seed], will_retry
        )
        if not will_retry:
            self._give_up(seed, kind, cause)
            return
        # Re-dispatch later: move to the end so healthy seeds go first.
        if seed in self.pending:
            self.pending.remove(seed)
            self.pending.append(seed)
        delay = min(
            self.backoff * (2.0 ** (self.attempts[seed] - 1)), BACKOFF_CAP
        )
        if delay > 0:
            self._backoff_pending.append(delay)

    def _flush_backoff(self) -> None:
        """Serve deferred backoff sleeps; called between dispatches.

        Runs *outside* any wave-collection window, so backoff never
        counts against a trial's timeout and never delays detection of
        a hung sibling.  Quarantined seeds leave no residue: a pending
        delay whose seed was given up still sleeps at most once, before
        the next dispatch, mirroring the historical pacing.
        """
        pending, self._backoff_pending = self._backoff_pending, []
        for delay in pending:
            self.sleep(delay)

    def _give_up(self, seed: int, kind: str, cause: Any) -> None:
        spec = self.spec
        cause_text = (
            f"{type(cause).__name__}: {cause}"
            if isinstance(cause, BaseException)
            else str(cause)
        )
        if kind == "crash" and WorkerCrashError.__name__ not in cause_text:
            # Crash causes arrive as raw pool messages; keep the taxonomy
            # name in the record so operators can grep for crash classes.
            cause_text = f"{WorkerCrashError.__name__}: {cause_text}"
        if self.strict:
            if kind == "raise" and isinstance(cause, BaseException):
                raise cause
            cls = TrialTimeoutError if kind == "timeout" else WorkerCrashError
            raise cls(
                spec_name=spec.name,
                publisher=self.publisher_name,
                seed=seed,
                epsilon=spec.epsilon,
                cause=cause_text,
            )
        failed = FailedRecord(
            spec_name=spec.name,
            publisher=self.publisher_name,
            seed=seed,
            epsilon=spec.epsilon,
            error=TrialQuarantinedError.__name__,
            cause=cause_text,
            attempts=self.attempts[seed],
        )
        self._complete(seed, failed)

    # -- serial path ---------------------------------------------------
    def run_serial(self) -> None:
        from repro.experiments.runner import _run_seed

        while self.pending:
            self._flush_backoff()
            seed = self.pending[0]
            self.observer.on_dispatch(self.spec.name, [seed])
            try:
                record = _run_seed(self.spec, seed)
            except Exception as exc:
                self._strike(seed, "raise", exc)
            else:
                self._complete(seed, record)

    # -- parallel path -------------------------------------------------
    def run_parallel(self, payload: bytes) -> None:
        barren = 0
        generation = 0
        while self.pending:
            if generation > 0:
                self.observer.on_pool_respawn(self.spec.name)
            generation += 1
            progress_before = self.progress
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(self.pending)),
                initializer=_init_worker,
                initargs=(payload,),
            )
            self.must_kill = False
            kill = False
            try:
                kill = self._drive_pool(pool)
            finally:
                # ``kill or self.must_kill``: when a strict-mode strike
                # raises on the timeout path, ``kill`` never gets
                # assigned — but the worker is still hung, and a
                # cooperative ``shutdown(wait=True)`` would join it and
                # block until the hang (possibly never) ends.  The
                # supervisor flag survives the exception unwind.
                _stop_pool(pool, kill=kill or self.must_kill)
            if self.progress == progress_before and self.pending:
                barren += 1
                if barren >= _MAX_BARREN_GENERATIONS:
                    self._pool_unrecoverable()
            else:
                barren = 0

    def _pool_unrecoverable(self) -> None:
        seed = self.pending[0]
        # Out of safe options: charge the head-of-line seed so strict
        # mode raises and non-strict mode quarantines, rather than
        # spinning on respawns forever.
        self._strike(
            seed,
            "crash",
            "process pool kept breaking without attributable progress",
        )

    def _drive_pool(self, pool: ProcessPoolExecutor) -> bool:
        """Run waves on one pool until done or it must be recycled.

        Returns ``True`` when the caller must *kill* the pool (hung
        worker) rather than merely shut it down.
        """
        while self.pending:
            self._flush_backoff()
            wave = self._next_wave()
            self.observer.on_dispatch(self.spec.name, wave)
            try:
                futures = {
                    seed: pool.submit(_worker_run_seed, seed)
                    for seed in wave
                }
            except BrokenExecutor:
                # Broke between waves; nothing in flight to attribute.
                self.probe.update(wave)
                return False
            outcome = self._collect_wave(wave, futures)
            if outcome == "ok":
                continue
            self._harvest(futures)
            return outcome == "kill"
        return False

    def _next_wave(self) -> List[int]:
        """Seeds for the next wave: solo while probing, else a full one.

        Waves never exceed the worker count, so every submitted seed
        starts immediately and the shared per-wave deadline is honest.
        """
        if self.probe:
            for seed in self.pending:
                if seed in self.probe:
                    return [seed]
        return list(self.pending[: self.workers])

    def _collect_wave(
        self, wave: List[int], futures: Dict[int, Future]
    ) -> str:
        """Await one wave; returns ``"ok"``, ``"respawn"`` or ``"kill"``."""
        wave_start = time.monotonic()
        solo = len(wave) == 1
        for seed in wave:
            future = futures[seed]
            try:
                if self.timeout is not None:
                    remaining = wave_start + self.timeout - time.monotonic()
                    record = future.result(timeout=max(0.0, remaining))
                else:
                    record = future.result()
            except FuturesTimeoutError:
                # Flag *before* striking: under strict=True the strike
                # may raise TrialTimeoutError straight out of this frame
                # and the "kill" return below never happens — the pool
                # teardown must still terminate the hung worker.
                self.must_kill = True
                self._strike(
                    seed,
                    "timeout",
                    f"no result within timeout={self.timeout:g}s",
                )
                return "kill"  # hung worker: must terminate processes
            except BrokenExecutor as exc:
                if solo or seed in self.probe:
                    # Solo wave: the dead worker was running this seed.
                    self._strike(seed, "crash", str(exc) or "worker died")
                else:
                    # Concurrent wave: attribution is ambiguous — probe
                    # the unfinished members one at a time instead of
                    # charging innocents with crash strikes.
                    new = {
                        s
                        for s, f in futures.items()
                        if s not in self.results and not f.done()
                    }
                    new.add(seed)
                    if new - self.probe:
                        self.progress += 1
                    self.probe.update(new)
                return "respawn"
            except Exception as exc:
                # Raised inside the worker; the pool itself is healthy.
                self._strike(seed, "raise", exc)
            else:
                self._complete(seed, record)
        return "ok"

    def _harvest(self, futures: Dict[int, Future]) -> None:
        """Bank every finished sibling result before recycling the pool.

        This is the "a killed worker loses zero completed records"
        guarantee: trials that finished before the crash/hang are
        completed (and journaled) even though their pool is about to be
        torn down.
        """
        for seed, future in futures.items():
            if seed in self.results:
                continue
            if not future.done() or future.cancelled():
                continue
            exc = future.exception()
            if exc is None:
                self._complete(seed, future.result())
            elif not isinstance(exc, (BrokenExecutor, FuturesTimeoutError)):
                self._strike(seed, "raise", exc)


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------

def run_supervised(
    spec: Any,
    n_jobs: Optional[int] = None,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.5,
    journal: Optional[Union[CheckpointJournal, str]] = None,
    resume: bool = False,
    retry_failed: bool = False,
    strict: bool = True,
    sleep: Callable[[float], None] = time.sleep,
    observer: Any = None,
) -> List[Any]:
    """Run a spec's seeds under supervision; see the module docstring.

    Returns one entry per seed, in ``spec.seeds`` order: a ``RunRecord``
    on success, a :class:`FailedRecord` for quarantined cells when
    ``strict=False``.  With ``strict=True`` (default) the first
    exhausted cell raises, restoring fail-fast semantics.

    ``retry_failed`` (with ``resume=True``) re-runs seeds whose journal
    entry is a quarantined :class:`FailedRecord` instead of carrying the
    quarantine forward — the knob for resuming after a transient
    environment failure (worker OOM, infra flake) has been fixed.

    ``observer`` receives lifecycle events (see
    :class:`repro.obs.monitor.ExecutorObserver`): run start/end,
    dispatched waves, completions (including quarantines), strikes with
    their taxonomy kind, pool respawns and journal appends.  Hooks are
    exception-firewalled — a broken observer warns, never fails a run.
    """
    from repro.experiments.runner import resolve_n_jobs

    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be > 0 or None, got {timeout}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if backoff < 0:
        raise ValueError(f"backoff must be >= 0, got {backoff}")
    if retry_failed and not resume:
        raise ValueError("retry_failed requires resume=True")
    if isinstance(journal, (str,)) or hasattr(journal, "__fspath__"):
        journal = CheckpointJournal(journal)

    workers = resolve_n_jobs(spec.n_jobs if n_jobs is None else n_jobs)
    supervisor = _Supervisor(
        spec,
        workers=workers,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        strict=strict,
        journal=journal,
        retry_failed=retry_failed,
        sleep=sleep,
        observer=observer,
    )
    if resume:
        supervisor.load_resume()
    supervisor.pending = [
        seed for seed in spec.seeds if seed not in supervisor.results
    ]

    supervisor.observer.on_run_start(
        spec.name, len(spec.seeds), len(supervisor.results)
    )
    try:
        parallel = workers > 1 and len(supervisor.pending) > 1
        payload: Optional[bytes] = None
        if parallel:
            try:
                payload = pickle.dumps(spec)
            except Exception as exc:  # lambdas, local classes, handles...
                warnings.warn(
                    f"spec {spec.name!r} is not picklable ({exc}); "
                    "running serially",
                    RuntimeWarning,
                    stacklevel=2,
                )
                parallel = False

        if parallel:
            assert payload is not None
            supervisor.run_parallel(payload)
        else:
            if timeout is not None and supervisor.pending:
                warnings.warn(
                    "timeout is not enforced in serial execution; run "
                    "with n_jobs > 1 for hang protection",
                    RuntimeWarning,
                    stacklevel=2,
                )
            supervisor.run_serial()
    finally:
        supervisor.observer.on_run_end(spec.name)

    return [supervisor.results[seed] for seed in spec.seeds]
