"""JSONL checkpoint journal for resumable experiment sweeps.

Every completed trial — successful :class:`~repro.experiments.runner.RunRecord`
or structured :class:`~repro.robust.records.FailedRecord` — is appended
to a journal file as one self-contained JSON line, keyed by
``(spec_name, publisher, seed, epsilon)`` plus a SHA-256 *spec
fingerprint*.  ``python -m repro run --resume`` loads the journal,
keeps every entry whose fingerprint matches the spec being run (so a
stale journal from a different configuration can never leak records in),
and re-dispatches only the missing seeds.

Bit-identical resume
--------------------
Serialization round-trips every statistical field exactly:

* Python floats are emitted by :func:`json.dumps` via ``repr``, the
  shortest round-tripping representation — ``float64`` survives exactly,
  including ``NaN``/``inf`` (emitted as JSON5-style literals, which the
  stdlib parser accepts).
* numpy arrays are tagged ``{"__ndarray__": ..., "dtype": ...,
  "shape": ...}`` and rebuilt with their original dtype, so integer and
  float arrays in ``RunRecord.meta`` come back ``np.array_equal``
  (``equal_nan=True``).

Appends go through :func:`repro.robust.atomicio.append_line`
(``O_APPEND`` + fsync), so a SIGKILL mid-append tears at most the final
line; the loader skips unparseable lines and lets later entries for the
same key win.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import JournalError
from repro.robust.atomicio import append_line
from repro.robust.records import FailedRecord

__all__ = [
    "JOURNAL_SCHEMA",
    "CheckpointJournal",
    "spec_fingerprint",
    "record_to_payload",
    "record_from_payload",
]

JOURNAL_SCHEMA = 1

#: A journal key: (spec_name, publisher, seed, epsilon).
Key = Tuple[str, str, int, float]

JournalRecord = Union["RunRecord", FailedRecord]  # noqa: F821  (fwd ref)


# ---------------------------------------------------------------------------
# Value (de)serialization: JSON with tagged numpy arrays
# ---------------------------------------------------------------------------

_NDARRAY_TAG = "__ndarray__"
_PARTITION_TAG = "__partition__"
_OPAQUE_TAG = "__opaque__"


def _encode(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-compatible structures.

    Knows the repo's meta value types: numpy scalars/arrays round-trip
    exactly (tagged, dtype-preserving) and :class:`Partition` objects —
    which the structure publishers put in ``meta["partition"]`` — are
    tagged ``(n, boundaries)`` pairs that decode back to equal
    ``Partition`` instances.  Anything else unrecognized degrades to a
    tagged ``repr`` string rather than crashing the journal append: a
    checkpoint that loses one exotic meta field beats a sweep that dies
    mid-run (such fields decode to the tagged dict, never silently to
    the original object).
    """
    from repro.partition.partition import Partition

    if isinstance(value, np.ndarray):
        return {
            _NDARRAY_TAG: value.tolist(),
            "dtype": str(value.dtype),
            "shape": list(value.shape),
        }
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, Partition):
        return {
            _PARTITION_TAG: {
                "n": int(value.n),
                "boundaries": [int(b) for b in value.boundaries],
            }
        }
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return {_OPAQUE_TAG: repr(value), "type": type(value).__name__}


def _decode(value: Any) -> Any:
    """Inverse of :func:`_encode` (tuples come back as lists)."""
    if isinstance(value, dict):
        if _NDARRAY_TAG in value and "dtype" in value:
            return np.asarray(
                value[_NDARRAY_TAG], dtype=np.dtype(value["dtype"])
            ).reshape(tuple(value.get("shape", [-1])))
        if _PARTITION_TAG in value:
            from repro.partition.partition import Partition

            payload = value[_PARTITION_TAG]
            return Partition(
                n=int(payload["n"]),
                boundaries=tuple(
                    int(b) for b in payload.get("boundaries", [])
                ),
            )
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


# ---------------------------------------------------------------------------
# Record (de)serialization
# ---------------------------------------------------------------------------

def record_to_payload(record: JournalRecord) -> Dict[str, Any]:
    """Serialize a run/failed record into a JSON-compatible dict."""
    from repro.experiments.runner import RunRecord

    if isinstance(record, FailedRecord):
        return {"kind": "failed", **_encode(asdict(record))}
    if isinstance(record, RunRecord):
        return {
            "kind": "record",
            "spec_name": record.spec_name,
            "publisher": record.publisher,
            "seed": record.seed,
            "epsilon": record.epsilon,
            "seconds": record.seconds,
            "kl": _encode(record.kl),
            "ks": _encode(record.ks),
            "workload_errors": {
                name: asdict(err)
                for name, err in record.workload_errors.items()
            },
            "meta": _encode(record.meta),
        }
    raise TypeError(f"cannot journal {type(record).__name__}")


def record_from_payload(payload: Dict[str, Any]) -> JournalRecord:
    """Inverse of :func:`record_to_payload`."""
    from repro.experiments.runner import RunRecord
    from repro.metrics.evaluate import WorkloadErrors

    kind = payload.get("kind")
    if kind == "failed":
        return FailedRecord(
            spec_name=payload["spec_name"],
            publisher=payload["publisher"],
            seed=int(payload["seed"]),
            epsilon=float(payload["epsilon"]),
            error=payload["error"],
            cause=payload.get("cause", ""),
            attempts=int(payload.get("attempts", 0)),
            meta=_decode(payload.get("meta", {})),
        )
    if kind == "record":
        return RunRecord(
            spec_name=payload["spec_name"],
            publisher=payload["publisher"],
            seed=int(payload["seed"]),
            epsilon=float(payload["epsilon"]),
            seconds=float(payload["seconds"]),
            kl=float(payload["kl"]),
            ks=float(payload["ks"]),
            workload_errors={
                name: WorkloadErrors(**err)
                for name, err in payload.get("workload_errors", {}).items()
            },
            meta=_decode(payload.get("meta", {})),
        )
    raise JournalError(f"unknown journal record kind: {kind!r}")


# ---------------------------------------------------------------------------
# Spec fingerprinting
# ---------------------------------------------------------------------------

def _factory_identity(factory: Any) -> str:
    """Stable-ish textual identity of a publisher factory."""
    module = getattr(factory, "__module__", "")
    qualname = getattr(
        factory, "__qualname__", type(factory).__qualname__
    )
    return f"{module}:{qualname}"


def spec_fingerprint(spec: Any) -> str:
    """SHA-256 fingerprint of everything that determines a spec's output.

    Covers the spec name, publisher-factory identity, epsilon, seed set,
    workload names/sizes, and the full dataset (domain plus the exact
    count bytes).  Deliberately *excludes* ``n_jobs`` — parallelism does
    not change results (the bit-identical contract), so a sweep may be
    resumed with a different worker count.
    """
    hist = spec.histogram
    domain = hist.domain
    descriptor = {
        "name": spec.name,
        "publisher_factory": _factory_identity(spec.publisher_factory),
        "epsilon": float(spec.epsilon),
        "seeds": [int(s) for s in spec.seeds],
        "workloads": [[w.name, int(w.n), len(w)] for w in spec.workloads],
        "domain": {
            "size": domain.size,
            "lower": domain.lower,
            "upper": domain.upper,
            "labels": list(domain.labels) if domain.labels else None,
            "name": domain.name,
        },
    }
    digest = hashlib.sha256()
    digest.update(json.dumps(descriptor, sort_keys=True).encode("utf-8"))
    digest.update(np.ascontiguousarray(hist.counts).tobytes())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# The journal
# ---------------------------------------------------------------------------

class CheckpointJournal:
    """Append-only JSONL journal of completed trials.

    One journal file may hold entries for many specs (a whole sweep);
    the per-spec ``fingerprint`` keeps them separated on load.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckpointJournal({str(self.path)!r})"

    def append(self, record: JournalRecord, fingerprint: str) -> None:
        """Durably append one completed trial."""
        entry = {
            "schema": JOURNAL_SCHEMA,
            "fingerprint": fingerprint,
            "key": {
                "spec_name": record.spec_name,
                "publisher": record.publisher,
                "seed": int(record.seed),
                "epsilon": float(record.epsilon),
            },
            "payload": record_to_payload(record),
        }
        append_line(self.path, json.dumps(entry))

    def entries(self) -> List[Dict[str, Any]]:
        """All parseable journal entries, in file order.

        Unparseable lines (a torn final append, editor noise) are
        skipped; entries with a wrong schema raise, since that signals a
        version mismatch rather than a crash artifact.
        """
        if not self.path.exists():
            return []
        out: List[Dict[str, Any]] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing line from a crash mid-append
            if not isinstance(entry, dict) or "payload" not in entry:
                continue
            if entry.get("schema") != JOURNAL_SCHEMA:
                raise JournalError(
                    f"journal {self.path} has schema "
                    f"{entry.get('schema')!r}; expected {JOURNAL_SCHEMA}"
                )
            out.append(entry)
        return out

    def completed(self, fingerprint: str) -> Dict[Key, JournalRecord]:
        """Deserialized records matching ``fingerprint``, keyed by cell.

        Later entries win when a key repeats (e.g. a sweep that was
        resumed more than once).
        """
        out: Dict[Key, JournalRecord] = {}
        for entry in self.entries():
            if entry.get("fingerprint") != fingerprint:
                continue
            key = entry["key"]
            cell: Key = (
                key["spec_name"],
                key["publisher"],
                int(key["seed"]),
                float(key["epsilon"]),
            )
            out[cell] = record_from_payload(entry["payload"])
        return out

    def seeds_done(self, fingerprint: str) -> Dict[int, JournalRecord]:
        """Like :meth:`completed` but keyed by seed alone (one spec)."""
        return {
            key[2]: record
            for key, record in self.completed(fingerprint).items()
        }
