"""Resumable publisher sweeps: the engine behind ``python -m repro run``.

A *sweep* is the paper's evaluation matrix in miniature: a roster of
publishers × an epsilon grid × N seeds on one dataset, executed through
the supervised executor with a shared checkpoint journal.  Both the CLI
and the chaos/e2e tests build their specs through
:func:`build_sweep_specs`, which guarantees that a resumed CLI sweep
and an in-process reference run describe *bit-identical* experiment
cells (same spec names, seeds, workloads and dataset bytes — hence the
same journal fingerprints).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.aggregate import aggregate_records
from repro.experiments.spec import ExperimentSpec
from repro.experiments.tables import Table
from repro.robust.journal import CheckpointJournal
from repro.robust.records import FailedRecord, is_failed

__all__ = [
    "SWEEP_DATASETS",
    "sweep_publishers",
    "build_sweep_specs",
    "run_sweep",
    "sweep_table",
]

#: Datasets a sweep can target; values are ``(n_bins, total) -> Histogram``.
SWEEP_DATASETS = ("age", "nettrace", "searchlogs", "socialnetwork")


def sweep_publishers() -> Dict[str, Callable[[], object]]:
    """The comparison roster (same as the figures), by stable name."""
    from repro.experiments.figures import ROSTER

    return dict(ROSTER)


def _dataset(name: str, n_bins: int, total: int):
    from repro.datasets import standard

    if name not in SWEEP_DATASETS:
        raise ValueError(
            f"unknown sweep dataset {name!r}; available: "
            f"{', '.join(SWEEP_DATASETS)}"
        )
    return getattr(standard, name)(n_bins=n_bins, total=total)


def build_sweep_specs(
    dataset: str = "age",
    n_bins: int = 64,
    total: int = 50_000,
    publishers: Optional[Sequence[str]] = None,
    epsilons: Sequence[float] = (0.1, 0.5),
    n_seeds: int = 3,
    n_jobs: int = 1,
) -> List[ExperimentSpec]:
    """Deterministically expand a sweep request into experiment specs.

    Spec names are ``sweep/<dataset>/<publisher>/eps=<eps>``; seeds are
    ``0..n_seeds-1``.  The same arguments always produce specs with the
    same journal fingerprints, which is what makes ``--resume`` safe.
    """
    roster = sweep_publishers()
    names = list(publishers) if publishers else list(roster)
    unknown = [p for p in names if p not in roster]
    if unknown:
        raise ValueError(
            f"unknown publisher(s) {unknown}; available: "
            f"{', '.join(roster)}"
        )
    if n_seeds < 1:
        raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")
    hist = _dataset(dataset, n_bins, total)
    from repro.workloads.builders import unit_queries

    unit = unit_queries(hist.size)
    specs: List[ExperimentSpec] = []
    for pub_name in names:
        for eps in epsilons:
            specs.append(
                ExperimentSpec(
                    name=f"sweep/{dataset}/{pub_name}/eps={eps:g}",
                    histogram=hist,
                    publisher_factory=roster[pub_name],
                    epsilon=float(eps),
                    workloads=(unit,),
                    seeds=tuple(range(n_seeds)),
                    n_jobs=n_jobs,
                )
            )
    return specs


def run_sweep(
    specs: Sequence[ExperimentSpec],
    *,
    n_jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 2,
    backoff: float = 0.5,
    journal: Optional[Union[CheckpointJournal, str]] = None,
    resume: bool = False,
    retry_failed: bool = False,
    strict: bool = False,
    sleep: Callable[[float], None] = time.sleep,
    observer: Optional[object] = None,
) -> "Dict[str, List[object]]":
    """Run every spec through the supervised executor; records by spec name.

    One journal file is shared by the whole sweep (per-spec fingerprints
    keep entries separated), so a single ``--resume`` continues all of
    it.  ``strict=False`` by default: a sweep is exactly the setting
    where one poison cell must not discard hours of completed work.
    ``retry_failed`` (with ``resume``) gives journaled quarantines fresh
    attempts instead of carrying them forward.

    ``observer`` (an :class:`repro.obs.monitor.ExecutorObserver`) is
    shared across every spec in the sweep — the hooks all carry the
    spec name, so one :class:`~repro.obs.monitor.RunStats` or
    :class:`~repro.obs.monitor.ProgressMonitor` follows the whole
    matrix.
    """
    from repro.experiments.runner import run_matrix

    if journal is not None and not isinstance(journal, CheckpointJournal):
        journal = CheckpointJournal(journal)
    results: Dict[str, List[object]] = {}
    for spec in specs:
        results[spec.name] = run_matrix(
            spec,
            n_jobs,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            journal=journal,
            resume=resume,
            retry_failed=retry_failed,
            strict=strict,
            sleep=sleep,
            observer=observer,
        )
    return results


def sweep_table(results: "Dict[str, List[object]]") -> Tuple[Table, List[FailedRecord]]:
    """Render sweep results: one row per cell, plus the failure report.

    Failed cells show up both in the per-row ``failed`` column
    (skip-and-report) and in the returned list so callers can print a
    taxonomy summary; an all-failed cell renders ``n/a`` metrics rather
    than crashing the table.
    """
    table = Table(
        title="supervised sweep",
        headers=["cell", "seeds ok", "failed", "mean kl", "unit mse"],
        notes="failed cells are quarantined FailedRecords; see "
              "docs/robustness.md for the failure taxonomy",
    )
    failures: List[FailedRecord] = []
    for name, records in results.items():
        failed = [r for r in records if is_failed(r)]
        failures.extend(failed)
        healthy = [r for r in records if not is_failed(r)]
        if healthy:
            kl = aggregate_records(records, lambda r: r.kl)
            mse = aggregate_records(
                records, lambda r: r.metric("unit", "mse")
            )
            table.add_row(
                name, len(healthy), len(failed),
                f"{kl.mean:.4g}", f"{mse.mean:.4g}",
            )
        else:
            table.add_row(name, 0, len(failed), "n/a", "n/a")
    return table, failures
