"""Structured failure records for graceful degradation.

When the supervised executor gives up on a trial (quarantined poison
pill, or a non-strict run that exhausted its retries), the failure is
not an exception that unwinds the whole sweep — it becomes a
:class:`FailedRecord` carrying the cell identity and the error class
from the :mod:`repro.exceptions` taxonomy.  Aggregation and the journal
treat these records as first-class citizens: they are journaled,
reloaded on ``--resume``, counted by :class:`~repro.experiments.aggregate.Aggregate`,
and *skipped-and-reported* rather than silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["FailedRecord", "is_failed"]


@dataclass(frozen=True)
class FailedRecord:
    """Outcome of a trial the executor could not complete.

    ``error`` is the name of a :mod:`repro.exceptions` taxonomy class
    (``TrialTimeoutError``, ``WorkerCrashError``,
    ``TrialQuarantinedError``); ``cause`` preserves the text of the
    underlying failure (e.g. the worker-side traceback summary for a
    quarantined raise, or the timeout that fired).
    """

    spec_name: str
    publisher: str
    seed: int
    epsilon: float
    error: str
    cause: str = ""
    attempts: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """Always ``True``; mirrors ``RunRecord``-shaped duck typing."""
        return True

    def describe(self) -> str:
        """One-line human summary for skip-and-report output."""
        text = (
            f"{self.spec_name}/{self.publisher}/seed={self.seed}/"
            f"eps={self.epsilon:g}: {self.error}"
            f" after {self.attempts} attempt(s)"
        )
        if self.cause:
            text += f" — {self.cause}"
        return text


def is_failed(record: Any) -> bool:
    """``True`` iff ``record`` is a :class:`FailedRecord`."""
    return isinstance(record, FailedRecord)
