"""Fault-tolerant experiment execution.

The robustness layer around :func:`repro.experiments.runner.run_matrix`:

* :mod:`repro.robust.executor` — supervised process pool with per-seed
  timeouts, bounded retry-with-backoff, crash recovery and quarantine;
* :mod:`repro.robust.journal` — JSONL checkpoint journal enabling
  bit-identical ``--resume`` of interrupted sweeps;
* :mod:`repro.robust.records` — structured :class:`FailedRecord`s for
  graceful degradation (skip-and-report instead of crash);
* :mod:`repro.robust.faults` — deterministic fault injection
  (raise / kill / hang / NaN) used by the chaos test suite;
* :mod:`repro.robust.atomicio` — crash-safe write/append primitives
  shared with the tracked benchmarks.

See ``docs/robustness.md`` for the failure taxonomy, retry semantics,
journal format, and the determinism-under-retry argument.
"""

from repro.robust.atomicio import append_line, atomic_write_text
from repro.robust.executor import run_supervised
from repro.robust.faults import FaultPlan, FaultRule, InjectedFault
from repro.robust.journal import CheckpointJournal, spec_fingerprint
from repro.robust.records import FailedRecord, is_failed

__all__ = [
    "append_line",
    "atomic_write_text",
    "run_supervised",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "CheckpointJournal",
    "spec_fingerprint",
    "FailedRecord",
    "is_failed",
]
