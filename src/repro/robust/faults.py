"""Deterministic fault injection for chaos-testing the executor.

A :class:`FaultPlan` is a JSON file of rules; each rule matches trials
by ``(spec_name, publisher, seed)`` (any field may be omitted = match
all) and fires one of four actions *inside the worker*:

``raise``
    raise :class:`InjectedFault` from the publisher call site,
``kill``
    ``os._exit(exit_code)`` — an abrupt worker death the pool sees as a
    ``BrokenProcessPool`` (models segfault/OOM-kill),
``hang``
    ``time.sleep(hang_seconds)`` — a stuck trial the supervisor must
    time out,
``nan``
    let the trial complete but corrupt its divergence metrics to NaN
    (models silent numerical corruption downstream code must tolerate).

Activation is by environment variable so child processes inherit it:
``REPRO_FAULT_PLAN=/path/to/plan.json``.  When the variable is unset
the hooks are a single dict lookup — effectively free.

Determinism across retries and pool respawns comes from an on-disk
*hit ledger* (``<plan>.hits``): a rule with ``times=N`` fires exactly N
times for a given key, counted by crash-safe appends that survive even
``os._exit`` (the ledger line is fsynced before the action fires).
``times=None`` means "always fire" (a poison pill).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import RobustnessError
from repro.robust.atomicio import append_line, atomic_write_text

__all__ = [
    "ENV_VAR",
    "ACTIONS",
    "InjectedFault",
    "FaultRule",
    "FaultPlan",
    "load_plan",
    "write_plan",
    "active_plan",
    "maybe_inject",
    "maybe_corrupt",
]

#: Environment variable naming the active plan file (inherited by
#: worker processes, which is what makes injection work under pools).
ENV_VAR = "REPRO_FAULT_PLAN"

#: Recognized rule actions.
ACTIONS = ("raise", "kill", "hang", "nan")

_PLAN_VERSION = 1


class InjectedFault(RobustnessError):
    """The exception the ``raise`` action throws inside a worker."""


@dataclass(frozen=True)
class FaultRule:
    """One match-and-fire rule of a :class:`FaultPlan`."""

    action: str
    spec_name: Optional[str] = None
    publisher: Optional[str] = None
    seed: Optional[int] = None
    times: Optional[int] = None
    hang_seconds: float = 3600.0
    exit_code: int = 137

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; valid: {ACTIONS}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")

    def matches(self, spec_name: str, publisher: str, seed: int) -> bool:
        return (
            (self.spec_name is None or self.spec_name == spec_name)
            and (self.publisher is None or self.publisher == publisher)
            and (self.seed is None or self.seed == int(seed))
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered rule list plus the path its hit ledger lives next to."""

    rules: Tuple[FaultRule, ...]
    path: Optional[Path] = None

    @property
    def ledger_path(self) -> Optional[Path]:
        if self.path is None:
            return None
        return self.path.with_name(self.path.name + ".hits")

    # -- hit accounting ------------------------------------------------
    def _hits(self, rule_index: int) -> int:
        ledger = self.ledger_path
        if ledger is None or not ledger.exists():
            return 0
        prefix = f"{rule_index}\t"
        count = 0
        for line in ledger.read_text(encoding="utf-8").splitlines():
            if line.startswith(prefix):
                count += 1
        return count

    def _consume(self, rule_index: int, spec_name: str, publisher: str,
                 seed: int) -> None:
        ledger = self.ledger_path
        if ledger is None:
            return
        append_line(
            ledger, f"{rule_index}\t{spec_name}\t{publisher}\t{seed}"
        )

    def pick(
        self, spec_name: str, publisher: str, seed: int,
        actions: Sequence[str],
    ) -> Optional[FaultRule]:
        """First matching rule (among ``actions``) with firings left.

        Consumes one ledger hit for bounded (``times=N``) rules *before*
        returning, so even a ``kill`` that never returns is counted.
        """
        for index, rule in enumerate(self.rules):
            if rule.action not in actions:
                continue
            if not rule.matches(spec_name, publisher, seed):
                continue
            if rule.times is not None:
                if self._hits(index) >= rule.times:
                    continue
                self._consume(index, spec_name, publisher, seed)
            return rule
        return None


def write_plan(path: "str | Path",
               rules: Sequence[Union[FaultRule, Dict[str, Any]]]) -> Path:
    """Serialize ``rules`` to ``path`` atomically; returns the path.

    Accepts :class:`FaultRule` instances or plain dicts.  Any stale hit
    ledger next to ``path`` is removed so a fresh plan starts at zero
    firings.
    """
    path = Path(path)
    normalized = [
        rule if isinstance(rule, FaultRule) else FaultRule(**rule)
        for rule in rules
    ]
    payload = {
        "version": _PLAN_VERSION,
        "rules": [asdict(rule) for rule in normalized],
    }
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
    ledger = path.with_name(path.name + ".hits")
    if ledger.exists():
        ledger.unlink()
    return path


def load_plan(path: "str | Path") -> FaultPlan:
    """Load a plan file written by :func:`write_plan`."""
    path = Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != _PLAN_VERSION:
        raise ValueError(
            f"unsupported fault-plan version: {payload.get('version')!r}"
        )
    rules = tuple(FaultRule(**rule) for rule in payload.get("rules", []))
    return FaultPlan(rules=rules, path=path)


def active_plan() -> Optional[FaultPlan]:
    """The plan named by :data:`ENV_VAR`, or ``None`` when unset."""
    plan_path = os.environ.get(ENV_VAR)
    if not plan_path:
        return None
    return load_plan(plan_path)


def maybe_inject(spec_name: str, publisher: str, seed: int) -> None:
    """Pre-publish hook: fire any matching raise/kill/hang rule.

    Called from the trial body (see ``runner._run_seed``).  No-op unless
    :data:`ENV_VAR` is set.
    """
    plan = active_plan()
    if plan is None:
        return
    rule = plan.pick(spec_name, publisher, seed, ("raise", "kill", "hang"))
    if rule is None:
        return
    if rule.action == "raise":
        raise InjectedFault(
            f"injected fault: spec={spec_name!r} publisher={publisher!r} "
            f"seed={seed}"
        )
    if rule.action == "kill":
        # Abrupt death: no cleanup, no exception propagation — exactly
        # what a segfault or the OOM killer looks like from outside.
        os._exit(rule.exit_code)
    if rule.action == "hang":
        time.sleep(rule.hang_seconds)


def maybe_corrupt(record: Any) -> Any:
    """Post-publish hook: apply any matching ``nan`` corruption rule.

    Returns ``record`` (possibly with ``kl``/``ks`` replaced by NaN).
    ``record`` must be a dataclass with ``spec_name``/``publisher``/
    ``seed``/``kl``/``ks`` fields (i.e. a ``RunRecord``); kept duck-typed
    to avoid an import cycle with the runner.
    """
    plan = active_plan()
    if plan is None:
        return record
    rule = plan.pick(record.spec_name, record.publisher, record.seed, ("nan",))
    if rule is None:
        return record
    import dataclasses

    nan = float("nan")
    meta = dict(record.meta)
    meta["fault_injected"] = "nan"
    return dataclasses.replace(record, kl=nan, ks=nan, meta=meta)
