"""Deterministic fault injection for chaos-testing the executor.

A :class:`FaultPlan` is a JSON file of rules; each rule matches trials
by ``(spec_name, publisher, seed)`` (any field may be omitted = match
all) and fires one of four actions *inside the worker*:

``raise``
    raise :class:`InjectedFault` from the publisher call site,
``kill``
    ``os._exit(exit_code)`` — an abrupt worker death the pool sees as a
    ``BrokenProcessPool`` (models segfault/OOM-kill),
``hang``
    ``time.sleep(hang_seconds)`` — a stuck trial the supervisor must
    time out,
``nan``
    let the trial complete but corrupt its divergence metrics to NaN
    (models silent numerical corruption downstream code must tolerate).

Activation is by environment variable so child processes inherit it:
``REPRO_FAULT_PLAN=/path/to/plan.json``.  When the variable is unset
the hooks are a single dict lookup — effectively free.

Determinism across retries and pool respawns comes from on-disk *hit
slots*: a rule with ``times=N`` owns N slot files
(``<plan>.hits.<rule>.<hit>``), and each firing must first *claim* a
free slot with ``O_CREAT | O_EXCL`` — an atomic filesystem primitive —
so two workers racing on the same rule can never both pass the
``times=N`` check and over-fire it.  Claimed slots survive even
``os._exit`` (file creation completes before the action fires), which
is what keeps "kill the worker exactly twice" deterministic across pool
respawns.  A human-readable append-only ledger (``<plan>.hits``)
additionally records *which* trial fired each rule, for debugging.
``times=None`` means "always fire" (a poison pill) and needs no
accounting.

Serving-path sites
------------------
The query service (:mod:`repro.serve`) reuses the same plan machinery
for crash/delay injection *inside the server process*: a rule with a
``site`` (e.g. ``"serve.before_journal"``) only fires from
:func:`maybe_inject_site` calls naming that site, and site-less rules
only fire from the classic worker hooks — the two populations never
cross.  Because hit slots are claimed on disk with ``O_CREAT|O_EXCL``,
a ``times=N`` kill rule stays exactly-N even across server restarts,
which is what makes the ``repro replay --chaos`` drill deterministic.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import RobustnessError
from repro.robust.atomicio import append_line, atomic_write_text

__all__ = [
    "ENV_VAR",
    "ACTIONS",
    "InjectedFault",
    "FaultRule",
    "FaultPlan",
    "load_plan",
    "write_plan",
    "active_plan",
    "maybe_inject",
    "maybe_inject_site",
    "maybe_corrupt",
    "hit_counts",
    "total_hits",
]

#: Environment variable naming the active plan file (inherited by
#: worker processes, which is what makes injection work under pools).
ENV_VAR = "REPRO_FAULT_PLAN"

#: Recognized rule actions.
ACTIONS = ("raise", "kill", "hang", "nan")

_PLAN_VERSION = 1


class InjectedFault(RobustnessError):
    """The exception the ``raise`` action throws inside a worker."""


@dataclass(frozen=True)
class FaultRule:
    """One match-and-fire rule of a :class:`FaultPlan`.

    ``site`` selects the injection population: ``None`` rules fire from
    the classic worker hooks (:func:`maybe_inject`/:func:`maybe_corrupt`)
    and sited rules (``"serve.before_journal"``, ``"serve.after_journal"``,
    ``"serve.before_spill"``, ``"serve.handler"``) fire only from
    :func:`maybe_inject_site` calls naming that exact site.
    """

    action: str
    spec_name: Optional[str] = None
    publisher: Optional[str] = None
    seed: Optional[int] = None
    times: Optional[int] = None
    hang_seconds: float = 3600.0
    exit_code: int = 137
    site: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; valid: {ACTIONS}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")

    def matches(self, spec_name: str, publisher: str, seed: int) -> bool:
        return (
            (self.spec_name is None or self.spec_name == spec_name)
            and (self.publisher is None or self.publisher == publisher)
            and (self.seed is None or self.seed == int(seed))
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered rule list plus the path its hit ledger lives next to."""

    rules: Tuple[FaultRule, ...]
    path: Optional[Path] = None

    @property
    def ledger_path(self) -> Optional[Path]:
        if self.path is None:
            return None
        return self.path.with_name(self.path.name + ".hits")

    # -- hit accounting ------------------------------------------------
    def _slot_path(self, rule_index: int, hit: int) -> Optional[Path]:
        ledger = self.ledger_path
        if ledger is None:
            return None
        return ledger.with_name(f"{ledger.name}.{rule_index}.{hit}")

    def _claim(self, rule_index: int, times: int) -> bool:
        """Atomically claim one of the rule's ``times`` hit slots.

        Each slot is a file created with ``O_CREAT | O_EXCL``: exactly
        one process can win each slot, so the check-and-consume is a
        single atomic operation and a bounded rule fires exactly
        ``times`` times even when concurrent workers race on it.
        Returns ``False`` when every slot is already taken (the rule is
        exhausted).  A pathless in-memory plan has no slots and always
        fires (nothing to coordinate through).
        """
        if self.ledger_path is None:
            return True
        for hit in range(times):
            slot = self._slot_path(rule_index, hit)
            assert slot is not None
            try:
                fd = os.open(
                    str(slot), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                continue  # another process (or a prior attempt) owns it
            os.close(fd)
            return True
        return False

    def _consume(self, rule_index: int, spec_name: str, publisher: str,
                 seed: int) -> None:
        """Record *who* fired a rule in the human-readable ledger.

        Purely observational — the slot files are the source of truth
        for exactly-N accounting.
        """
        ledger = self.ledger_path
        if ledger is None:
            return
        append_line(
            ledger, f"{rule_index}\t{spec_name}\t{publisher}\t{seed}"
        )

    def pick(
        self, spec_name: str, publisher: str, seed: int,
        actions: Sequence[str], site: Optional[str] = None,
    ) -> Optional[FaultRule]:
        """First matching rule (among ``actions``) with firings left.

        Bounded (``times=N``) rules claim a hit slot atomically *before*
        returning, so even a ``kill`` that never returns is counted, and
        concurrent workers cannot over-fire the rule past N.  ``site``
        partitions the rule space: only rules whose ``site`` equals the
        argument are eligible, so serving-path rules never fire from the
        worker hooks and vice versa.
        """
        for index, rule in enumerate(self.rules):
            if rule.action not in actions:
                continue
            if rule.site != site:
                continue
            if not rule.matches(spec_name, publisher, seed):
                continue
            if rule.times is not None:
                if not self._claim(index, rule.times):
                    continue
                self._consume(index, spec_name, publisher, seed)
            return rule
        return None


def write_plan(path: "str | Path",
               rules: Sequence[Union[FaultRule, Dict[str, Any]]]) -> Path:
    """Serialize ``rules`` to ``path`` atomically; returns the path.

    Accepts :class:`FaultRule` instances or plain dicts.  Any stale hit
    ledger and claimed hit slots next to ``path`` are removed so a
    fresh plan starts at zero firings.
    """
    path = Path(path)
    normalized = [
        rule if isinstance(rule, FaultRule) else FaultRule(**rule)
        for rule in rules
    ]
    payload = {
        "version": _PLAN_VERSION,
        "rules": [asdict(rule) for rule in normalized],
    }
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
    # The ledger itself plus every hit-slot file (<name>.hits.<r>.<h>).
    for stale in path.parent.glob(path.name + ".hits*"):
        try:
            stale.unlink()
        except OSError:
            pass
    return path


def load_plan(path: "str | Path") -> FaultPlan:
    """Load a plan file written by :func:`write_plan`."""
    path = Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != _PLAN_VERSION:
        raise ValueError(
            f"unsupported fault-plan version: {payload.get('version')!r}"
        )
    rules = tuple(FaultRule(**rule) for rule in payload.get("rules", []))
    return FaultPlan(rules=rules, path=path)


def active_plan() -> Optional[FaultPlan]:
    """The plan named by :data:`ENV_VAR`, or ``None`` when unset."""
    plan_path = os.environ.get(ENV_VAR)
    if not plan_path:
        return None
    return load_plan(plan_path)


def maybe_inject(spec_name: str, publisher: str, seed: int) -> None:
    """Pre-publish hook: fire any matching raise/kill/hang rule.

    Called from the trial body (see ``runner._run_seed``).  No-op unless
    :data:`ENV_VAR` is set.
    """
    plan = active_plan()
    if plan is None:
        return
    rule = plan.pick(spec_name, publisher, seed, ("raise", "kill", "hang"))
    if rule is None:
        return
    if rule.action == "raise":
        raise InjectedFault(
            f"injected fault: spec={spec_name!r} publisher={publisher!r} "
            f"seed={seed}"
        )
    if rule.action == "kill":
        # Abrupt death: no cleanup, no exception propagation — exactly
        # what a segfault or the OOM killer looks like from outside.
        os._exit(rule.exit_code)
    if rule.action == "hang":
        time.sleep(rule.hang_seconds)


def maybe_inject_site(site: str, detail: str = "") -> None:
    """Sited hook for the serving path: fire any rule naming ``site``.

    Called from the query service at the crash-critical instruction
    boundaries (``serve.before_journal``, ``serve.after_journal``,
    ``serve.before_spill``) and from the HTTP handler (``serve.handler``
    — useful with small ``hang_seconds`` as a delayed-handler fault).
    ``kill`` here takes down the *whole server process* (``os._exit``),
    which is exactly the kill -9 the chaos replay drill needs; the hit
    slots live on disk, so a ``times=1`` rule stays fired across the
    restart.  No-op unless :data:`ENV_VAR` is set.
    """
    plan = active_plan()
    if plan is None:
        return
    rule = plan.pick(
        detail or site, "serve", 0, ("raise", "kill", "hang"), site=site
    )
    if rule is None:
        return
    if rule.action == "raise":
        raise InjectedFault(f"injected serve fault at {site}: {detail}")
    if rule.action == "kill":
        os._exit(rule.exit_code)
    if rule.action == "hang":
        time.sleep(rule.hang_seconds)


def hit_counts(plan: "FaultPlan | str | Path | None" = None) -> Dict[int, int]:
    """Per-rule firing counts from the plan's on-disk hit ledger.

    Fault rules fire *inside worker processes*, so the parent cannot
    count them through in-process state; the append-only ledger
    (``<plan>.hits``, one tab-separated line per firing) is the channel
    that survives worker death — even ``os._exit``, because the slot
    claim and ledger append complete before the action fires.

    ``plan`` may be a :class:`FaultPlan`, a plan path, or ``None`` for
    the :data:`ENV_VAR`-active plan.  Returns ``{rule_index: count}``;
    empty when there is no plan, no ledger, or no firings.
    """
    if plan is None:
        plan = active_plan()
        if plan is None:
            return {}
    if not isinstance(plan, FaultPlan):
        plan = load_plan(plan)
    ledger = plan.ledger_path
    if ledger is None or not ledger.exists():
        return {}
    counts: Dict[int, int] = {}
    for line in ledger.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        rule_index = int(line.split("\t", 1)[0])
        counts[rule_index] = counts.get(rule_index, 0) + 1
    return counts


def total_hits(plan: "FaultPlan | str | Path | None" = None) -> int:
    """Total fault firings across every rule (see :func:`hit_counts`)."""
    return sum(hit_counts(plan).values())


def maybe_corrupt(record: Any) -> Any:
    """Post-publish hook: apply any matching ``nan`` corruption rule.

    Returns ``record`` (possibly with ``kl``/``ks`` replaced by NaN).
    ``record`` must be a dataclass with ``spec_name``/``publisher``/
    ``seed``/``kl``/``ks`` fields (i.e. a ``RunRecord``); kept duck-typed
    to avoid an import cycle with the runner.
    """
    plan = active_plan()
    if plan is None:
        return record
    rule = plan.pick(record.spec_name, record.publisher, record.seed, ("nan",))
    if rule is None:
        return record
    import dataclasses

    nan = float("nan")
    meta = dict(record.meta)
    meta["fault_injected"] = "nan"
    return dataclasses.replace(record, kl=nan, ks=nan, meta=meta)
