"""Crash-safe filesystem primitives shared by the robustness layer.

Two write disciplines cover every persistence need of the repo:

* :func:`atomic_write_text` — whole-file replacement.  The payload is
  written to a temporary file in the *same directory* (so the final
  ``os.replace`` is a same-filesystem rename, which POSIX guarantees to
  be atomic), fsynced, then renamed over the target.  A crash at any
  point leaves either the old file or the new file, never a torn mix.
  The tracked benchmark files (``BENCH_*.json``) and any rewritten
  artifact go through this.

* :func:`append_line` — append-only journals.  The line is written with
  a single :func:`os.write` on a descriptor opened ``O_APPEND``, then
  fsynced.  ``O_APPEND`` makes concurrent appenders from multiple
  processes interleave at line granularity rather than byte-shear, and a
  crash mid-append can only produce one torn *trailing* line — which the
  journal reader tolerates by skipping unparseable lines.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_text", "append_line"]

PathLike = Union[str, Path]


def atomic_write_text(path: PathLike, text: str) -> None:
    """Replace ``path``'s contents with ``text`` atomically.

    Writes to a uniquely named sibling temp file, fsyncs it, and
    ``os.replace``s it over ``path``.  Readers never observe a partial
    file; a crash mid-write leaves the previous contents intact (plus,
    at worst, an orphaned ``.tmp`` sibling that the next write ignores).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def append_line(path: PathLike, line: str) -> None:
    """Append one ``\\n``-terminated line to ``path``, crash-tolerantly.

    The line must not itself contain newlines (that would break the
    one-record-per-line journal format).  The write is a single
    ``os.write`` on an ``O_APPEND`` descriptor followed by ``fsync``, so
    concurrent appenders interleave whole lines and an interrupted
    append can only tear the final line of the file.
    """
    if "\n" in line:
        raise ValueError("journal lines must not contain newlines")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = (line + "\n").encode("utf-8")
    fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
