"""Bucket-count selection for NoiseFirst.

NoiseFirst must pick how many buckets to merge the noisy histogram into,
*using only the noisy data* (everything after the Laplace step is free
post-processing).  The estimator here is the Mallows-Cp style correction
derived in DESIGN.md:

With true counts ``c``, noisy counts ``y = c + e`` (``e`` i.i.d. Laplace
with variance ``sigma^2 = 2/eps^2``), and ``P_k`` the k-bucket partition
fitted to ``y``:

* expected true reconstruction error of publishing ``P_k``'s means:
  ``E[err(k)] ~= SSE_c(P_k) + k * sigma^2``  (bias + averaged noise);
* the observable noisy SSE satisfies
  ``E[SSE_y(P_k)] <= SSE_c(P_k) + (n - k) * sigma^2`` — with strict
  inequality in practice, because the v-optimal fit *adapts* to the
  noise realization: selecting boundaries that chase noise absorbs far
  more than ``k`` degrees of freedom (classic model-selection optimism).

A plain Mallows-Cp correction (``+ 2 k sigma^2``) therefore badly
overfits k (verified empirically in ``abl_nf_kstar``).  We use the
changepoint-detection penalty in the style of Lebarbier (2005), which
accounts for the ``log C(n-1, k-1) ~ k log(n/k)`` partitions the fit
optimizes over:

    err_hat(k) = SSE_y(P_k) + 2 sigma^2 * k * (log(n / k) + 1)

whose argmin tracks the oracle k on step data across noise levels (see
the ``abl_nf_kstar`` bench for the measured comparison).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._validation import check_counts, check_integer, check_positive
from repro.partition.voptimal import VOptimalResult

__all__ = ["default_bucket_count", "noise_first_error_estimates", "select_k"]


def default_bucket_count(n: int) -> int:
    """Default number of buckets for StructureFirst: ``n // 8`` (>= 1).

    The paper treats ``k`` as an input and sweeps it; an average bucket
    width of ~8 bins keeps the partial-bucket bias of range queries small
    while still collapsing the per-bin noise, and is near the flat
    optimum across the four evaluation datasets (see the
    ``fig_k_sensitivity`` bench, which quantifies the sweep).
    """
    check_integer(n, "n", minimum=1)
    return max(1, min(n, n // 8))


def noise_first_error_estimates(
    table: VOptimalResult, epsilon: float
) -> np.ndarray:
    """Estimated true error for each bucket count ``k = 1..max_k``.

    Index 0 is unused (+inf).  Entry ``k`` is
    ``SSE_y(P_k) + 2 sigma^2 k (log(n/k) + 1)`` with
    ``sigma^2 = 2 / epsilon^2`` (see the module docstring for why the
    penalty carries the ``log(n/k)`` model-selection term).
    """
    check_positive(epsilon, "epsilon")
    sigma2 = 2.0 / (epsilon * epsilon)
    estimates = np.full(table.max_k + 1, np.inf)
    ks = np.arange(1, table.max_k + 1, dtype=np.float64)
    penalty = 2.0 * sigma2 * ks * (np.log(table.n / ks) + 1.0)
    estimates[1:] = table.sse_by_k[1:] + penalty
    return estimates


def select_k(table: VOptimalResult, epsilon: float) -> int:
    """Bucket count minimizing the NoiseFirst error estimate."""
    estimates = noise_first_error_estimates(table, epsilon)
    return int(np.argmin(estimates[1:]) + 1)


def identity_error_estimate(n: int, epsilon: float) -> float:
    """Estimated error of publishing the noisy counts unmerged (k = n).

    At ``k = n`` the DP residual ``SSE_y`` is exactly 0 and the penalty
    term is ``2 sigma^2 n (log(1) + 1) = 2 n sigma^2`` — directly
    comparable to :func:`noise_first_error_estimates` values.
    """
    check_integer(n, "n", minimum=1)
    check_positive(epsilon, "epsilon")
    sigma2 = 2.0 / (epsilon * epsilon)
    return 2.0 * sigma2 * n


def smoothness_profile(counts: Sequence[float]) -> float:
    """Total-variation smoothness of a count vector (diagnostic).

    The summed absolute difference between adjacent bins, normalized by
    the total count.  0 means perfectly flat; large values mean bucket
    merging will cost a lot of bias.  Used by the smoothness bench.
    """
    arr = check_counts(counts, "counts")
    total = max(float(np.abs(arr).sum()), 1.0)
    return float(np.abs(np.diff(arr)).sum() / total)
