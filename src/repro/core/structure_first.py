"""StructureFirst (Xu et al., ICDE 2012).

StructureFirst splits the budget ``eps = eps_s + eps_n``:

1. **Structure** (``eps_s``): draw the k-bucket partition from the
   *exact* exponential mechanism over the whole partition space, with
   utility the negated total bucket cost.  The Gibbs distribution
   ``Pr[P] ~ exp(-eps_s * cost(P) / (2 * sensitivity))`` is sampled via
   the soft-DP forward-filter/backward-sample procedure in
   :mod:`repro.partition.gibbs` — one draw, one spend of ``eps_s``.
2. **Counts** (``eps_n``): add ``Lap(1/eps_n)`` to each bucket *sum*
   (one record affects exactly one bucket sum by 1, so the bucket-sum
   vector has sensitivity 1 under unbounded neighbours) and publish the
   noisy bucket mean for every bin in the bucket.

Inside a bucket of width ``b`` the per-bin noise variance is
``2/(eps_n^2 b^2)`` and — crucially — the noise of bins sharing a bucket
is *identical*, so a range query that spans whole buckets accumulates one
noise term per bucket, not per bin.  That is why StructureFirst wins on
long ranges and loses on points (it also paid ``eps_s`` for structure).

Structure score
---------------
Two scoring costs are supported:

* ``"sae"`` (default) — L1 v-optimality: a bucket costs the sum of
  absolute deviations from its median.  The total-SAE utility is
  **1-Lipschitz in every count** (see :mod:`repro.partition.sae`), so
  the exponential mechanism runs with sensitivity exactly 1 and stays
  sharp at small budgets.  This is the configuration that reproduces the
  paper's reported behaviour.
* ``"sse"`` — L2 v-optimality, whose sensitivity is data-dependent; we
  bound it with a public per-bin ``count_cap``
  (:func:`repro.mechanisms.sse_sensitivity_bound`).  The loose bound
  makes the mechanism close to uniform at small eps; kept for the
  ``abl_sf_sampling`` comparison and for callers with tight caps.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro._validation import check_in_range, check_integer
from repro.accounting.accountant import Accountant
from repro.core.kselect import default_bucket_count
from repro.core.publisher import Publisher
from repro.hist.histogram import Histogram
from repro.mechanisms.laplace import LaplaceMechanism
from repro.mechanisms.sensitivity import sse_sensitivity_bound
from repro.obs.trace import span
from repro.partition.coarsen import (
    COARSE_MAX_CELLS,
    coarsen_counts,
    uniform_cell_edges,
)
from repro.partition.gibbs import sample_partition_em
from repro.partition.equiwidth import equiwidth_partition
from repro.partition.partition import Partition
from repro.partition.voptimal import voptimal_partition
from repro.perf.costrows import LazySAECost, PrefixSSECost

__all__ = ["StructureFirst"]


class StructureFirst(Publisher):
    """Structure-then-noise histogram publisher.

    Parameters
    ----------
    k:
        Number of buckets.  ``None`` picks ``n // 8`` at publish time
        (:func:`~repro.core.kselect.default_bucket_count`).
    structure_fraction:
        Fraction of the budget spent on boundary selection
        (``eps_s = fraction * eps``); default 0.5 as in the paper's
        even split.  Must lie strictly inside (0, 1).
    score:
        Structure-quality cost: ``"sae"`` (default, sensitivity-1 L1
        v-optimality) or ``"sse"`` (L2 v-optimality with the
        ``count_cap`` sensitivity bound).  See the module docstring.
    count_cap:
        Public upper bound on any single bin count, used only by the
        ``"sse"`` score's sensitivity bound.  ``None`` uses the observed
        maximum count — acceptable when the rough data scale is public
        knowledge, but callers with a schema-level cap should pass it.
    structure_mode:
        ``"em"`` (default) — the paper's exponential-mechanism sampling.
        ``"uniform"`` — data-independent equi-width boundaries; costs no
        structure budget (the full budget goes to the counts).
        ``"oracle"`` — the true v-optimal partition, computed on the raw
        counts *without* privacy protection; NOT differentially private,
        provided only as the upper-bound arm of the ``abl_sf_sampling``
        ablation.
    max_cells:
        Big-n ceiling for the EM draw: above this many bins the
        partition is sampled over a data-independent uniform grid of at
        most ``max_cells`` super-cells and mapped back
        (:mod:`repro.partition.coarsen`) — same privacy guarantee,
        grid-aligned boundary support, ``k`` capped at the cell count.
        At or below the ceiling the draw is the exact sampler,
        bit-identical to the historical behaviour.
    """

    name = "structurefirst"

    _MODES = ("em", "uniform", "oracle")
    _SCORES = ("sae", "sse")

    def __init__(
        self,
        k: Optional[int] = None,
        structure_fraction: float = 0.5,
        score: str = "sae",
        count_cap: Optional[float] = None,
        structure_mode: str = "em",
        max_cells: int = COARSE_MAX_CELLS,
    ) -> None:
        if k is not None:
            check_integer(k, "k", minimum=1)
        check_in_range(structure_fraction, "structure_fraction", 0.0, 1.0,
                       inclusive=False)
        if score not in self._SCORES:
            raise ValueError(
                f"score must be one of {self._SCORES}, got {score!r}"
            )
        if count_cap is not None and count_cap < 0:
            raise ValueError(f"count_cap must be >= 0, got {count_cap}")
        if structure_mode not in self._MODES:
            raise ValueError(
                f"structure_mode must be one of {self._MODES}, "
                f"got {structure_mode!r}"
            )
        check_integer(max_cells, "max_cells", minimum=1)
        self.k = k
        self.structure_fraction = structure_fraction
        self.score = score
        self.count_cap = count_cap
        self.structure_mode = structure_mode
        self.max_cells = max_cells

    def _publish(
        self,
        histogram: Histogram,
        accountant: Accountant,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, Dict[str, Any]]:
        n = histogram.size
        k = self.k if self.k is not None else default_bucket_count(n)
        k = min(k, n)

        if k == 1:
            # Single bucket: no structure to choose, all budget to the sum.
            partition = Partition.single_bucket(n)
            eps_structure = 0.0
        elif self.structure_mode == "uniform":
            # Data-independent structure: free under DP.
            partition = equiwidth_partition(n, k)
            eps_structure = 0.0
        elif self.structure_mode == "oracle":
            # NOT private: ablation upper bound only.
            partition, _sse = voptimal_partition(histogram.counts, k)
            eps_structure = 0.0
        else:
            eps_structure = accountant.total.epsilon * self.structure_fraction
            with span("partition.em", n=n, k=k, score=self.score):
                partition = self._sample_structure(
                    histogram.counts, k, eps_structure, accountant, rng
                )
        eps_noise = accountant.remaining.epsilon
        accountant.spend(eps_noise, purpose="laplace-noise-bucket-sums")

        with span("noise.bucket-sums", k=partition.k):
            sums = partition.bucket_sums(histogram.counts)
            widths = np.asarray(partition.bucket_sizes(), dtype=np.float64)
            noisy_sums = LaplaceMechanism(sensitivity=1.0).release(
                sums, eps_noise, rng=rng
            )
        with span("postprocess.broadcast", n=n):
            published = partition.broadcast(noisy_sums / widths)

        meta: Dict[str, Any] = {
            "k": partition.k,
            "partition": partition,
            "eps_structure": eps_structure,
            "eps_noise": eps_noise,
            "structure_mode": self.structure_mode,
            "score": self.score,
        }
        return published, meta

    def _sample_structure(
        self,
        counts: np.ndarray,
        k: int,
        eps_structure: float,
        accountant: Accountant,
        rng: np.random.Generator,
    ) -> Partition:
        """One exact EM draw over the whole k-bucket partition space.

        The utility of a partition is its negated total cost (SAE by
        default); one record changes one count by 1, which changes
        exactly one bucket's cost — so the utility's sensitivity is the
        single-bucket cost sensitivity: exactly 1 for SAE, the
        ``count_cap`` bound for SSE.  The draw is performed with the
        soft-DP sampler (:func:`repro.partition.gibbs.sample_partition_em`),
        which realizes the exponential mechanism over all
        ``C(n-1, k-1)`` partitions exactly, in one spend of the full
        structure budget.

        Costs are streamed through the lazy cost-rows providers
        (:mod:`repro.perf.costrows`), so the draw peaks at ``O(n k)``
        memory — never the dense ``(n, n + 1)`` cost matrix.  Beyond
        ``max_cells`` bins the draw runs over the data-independent
        uniform grid (:mod:`repro.partition.coarsen`): the utility's
        sensitivity is computed on the coarsened counts (for the SSE
        score a cell aggregates up to cell-width capped bins, so the
        cap scales by the widest cell) and the sampled cell boundaries
        map back to bin indices.
        """
        n = len(counts)
        edges = None
        scored = counts
        if n > self.max_cells:
            edges = uniform_cell_edges(n, self.max_cells)
            scored = coarsen_counts(counts, edges)
            k = min(k, len(scored))

        if self.score == "sae":
            cost = LazySAECost(scored)
            sensitivity = 1.0
        else:
            cost = PrefixSSECost(scored)
            if self.count_cap is not None:
                cap = self.count_cap
                if edges is not None:
                    cap *= float(np.max(np.diff(edges)))
            else:
                cap = float(np.max(np.abs(scored)))
            sensitivity = sse_sensitivity_bound(cap)

        accountant.spend(eps_structure, purpose="em-structure")
        alpha = eps_structure / (2.0 * sensitivity)
        drawn = sample_partition_em(cost, k, alpha, rng=rng)
        if edges is None:
            return drawn
        return Partition(
            n=n, boundaries=tuple(int(edges[b]) for b in drawn.boundaries)
        )
