"""RangeEngine: answer range queries on a release, with error bars.

A :class:`~repro.core.PublishResult` carries enough metadata (the
publisher's structure and budget split) to attach *closed-form noise
standard deviations* to every range answer — no extra privacy cost,
since both the release and its parameters are already public.  The
engine recognizes the structures of NoiseFirst / StructureFirst /
DworkIdentity (via the metadata each leaves behind) and falls back to
"no error bar" for publishers whose noise law it cannot reconstruct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.variance import (
    dwork_range_variance,
    structurefirst_range_variance,
)
from repro.core.publisher import PublishResult
from repro.hist.ranges import RangeQuery
from repro.partition.partition import Partition

__all__ = ["RangeAnswer", "RangeEngine"]


@dataclass(frozen=True)
class RangeAnswer:
    """A range estimate with its noise standard deviation (if known).

    ``std`` covers *noise only* — the publisher's approximation bias is
    data-dependent and cannot be disclosed without spending budget.
    """

    query: RangeQuery
    estimate: float
    std: Optional[float]

    def interval(self, z: float = 1.96) -> "tuple[float, float] | None":
        """Symmetric ``z``-sigma interval around the estimate, if a
        noise law is known."""
        if self.std is None:
            return None
        return (self.estimate - z * self.std, self.estimate + z * self.std)

    def __str__(self) -> str:
        if self.std is None:
            return f"{self.query}: {self.estimate:.2f}"
        return f"{self.query}: {self.estimate:.2f} ± {self.std:.2f}"


class RangeEngine:
    """Query interface over one published histogram."""

    def __init__(self, result: PublishResult) -> None:
        if not isinstance(result, PublishResult):
            raise TypeError(
                f"result must be a PublishResult, got {type(result).__name__}"
            )
        self._result = result
        self._histogram = result.histogram

    @property
    def has_error_model(self) -> bool:
        """True when the engine can attach noise std to answers."""
        return self._noise_variance(RangeQuery(0, 0)) is not None

    def range(self, lo: int, hi: int) -> RangeAnswer:
        """Answer the inclusive range ``[lo, hi]`` with an error bar."""
        query = RangeQuery(lo, hi)
        query.validate_for(self._histogram.size)
        estimate = self._histogram.range_sum(lo, hi)
        variance = self._noise_variance(query)
        std = math.sqrt(variance) if variance is not None else None
        return RangeAnswer(query=query, estimate=estimate, std=std)

    def total(self) -> RangeAnswer:
        """The full-domain total with its error bar."""
        return self.range(0, self._histogram.size - 1)

    def _noise_variance(self, query: RangeQuery) -> Optional[float]:
        """Noise variance of a range sum, reconstructed from metadata."""
        meta = self._result.meta
        epsilon = self._result.accountant.total.epsilon
        partition = meta.get("partition")

        if "eps_noise" in meta and isinstance(partition, Partition):
            # StructureFirst: one Lap(1/eps_n) per bucket sum.
            return structurefirst_range_variance(
                partition, meta["eps_noise"], query.lo, query.hi
            )
        if "adaptive" in meta:
            # NoiseFirst: independent Lap(1/eps) residuals averaged per
            # bucket.  A range over m_B of bucket B's w_B bins sums m_B
            # copies of the same bucket-mean noise (variance
            # 2/(eps^2 w_B)), i.e. m_B^2 * 2/(eps^2 w_B^2) * w_B ... the
            # bucket mean is a single shared value: (m_B/w_B)^2 * w_B *
            # 2/eps^2 reduces to m_B^2/(w_B) * 2/eps^2 / w_B; computed
            # below per bucket.  With no partition (k = n) this is the
            # identity law.
            sigma2 = 2.0 / (epsilon * epsilon)
            if partition is None:
                return query.length * sigma2
            total = 0.0
            for start, stop in partition.buckets():
                overlap = min(query.hi + 1, stop) - max(query.lo, start)
                if overlap > 0:
                    width = stop - start
                    # Shared bucket-mean noise has variance sigma2/width;
                    # it is added to each of the overlap bins.
                    total += (overlap**2) * sigma2 / width
            return total
        if "noise_variance" in meta:
            # DworkIdentity: independent per-bin noise.
            return dwork_range_variance(
                epsilon, query.length,
            ) * (meta["noise_variance"] / (2.0 / epsilon**2))
        return None
