"""NoiseFirst (Xu et al., ICDE 2012).

NoiseFirst spends the *entire* budget adding ``Lap(1/eps)`` to every bin,
then — as pure post-processing, which costs no additional privacy —
merges the noisy bins into the ``k*``-bucket v-optimal histogram of the
*noisy* counts, where ``k*`` minimizes the Cp-style error estimate from
:mod:`repro.core.kselect`.  Because smoothing happens after noising, the
merge averages out independent noise draws: a bucket of ``b`` bins has
per-bin noise variance ``2/(b eps^2)`` instead of ``2/eps^2``.

NoiseFirst is the short-query specialist: point queries and short ranges
benefit from the averaging, but long ranges still accumulate one noise
term per bucket crossed, so the structure-aware publishers win there
(see ``fig_range_vs_len``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro._validation import check_integer
from repro.accounting.accountant import Accountant
from repro.core.kselect import identity_error_estimate, noise_first_error_estimates
from repro.core.publisher import Publisher
from repro.hist.histogram import Histogram
from repro.mechanisms.laplace import LaplaceMechanism
from repro.mechanisms.sensitivity import histogram_sensitivity
from repro.obs.trace import span
from repro.partition.voptimal import voptimal_table

__all__ = ["NoiseFirst"]

#: Cap on how many bucket counts the adaptive search evaluates; the DP is
#: O(n^2 k) so unbounded k would make wide domains quadratic-cubic.
_DEFAULT_MAX_K = 128


class NoiseFirst(Publisher):
    """Noise-then-structure histogram publisher.

    Parameters
    ----------
    k:
        Fixed number of buckets.  ``None`` (default) selects ``k*``
        adaptively from the noisy data.
    max_k:
        Upper limit of the adaptive search (ignored when ``k`` is fixed).
    neighbours:
        Neighbouring-dataset convention; controls the Laplace sensitivity
        (1 for ``"unbounded"``, 2 for ``"bounded"``).
    kernel:
        DP engine for the post-processing v-optimal merge
        (:data:`repro.perf.kernels.KERNELS`); ``None`` defers to
        :func:`repro.perf.kernels.resolve_kernel`.  Noisy counts are
        unsorted, so the exact blocked kernel is the effective engine —
        see ``docs/performance.md``.
    """

    name = "noisefirst"

    def __init__(
        self,
        k: Optional[int] = None,
        max_k: int = _DEFAULT_MAX_K,
        neighbours: str = "unbounded",
        kernel: Optional[str] = None,
    ) -> None:
        if k is not None:
            check_integer(k, "k", minimum=1)
        check_integer(max_k, "max_k", minimum=1)
        self.k = k
        self.max_k = max_k
        self.sensitivity = histogram_sensitivity(neighbours)
        self.neighbours = neighbours
        self.kernel = kernel

    def _publish(
        self,
        histogram: Histogram,
        accountant: Accountant,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, Dict[str, Any]]:
        n = histogram.size
        epsilon = accountant.total.epsilon
        accountant.spend(accountant.total, purpose="laplace-noise-per-bin")

        mech = LaplaceMechanism(sensitivity=self.sensitivity)
        with span("noise.perbin", n=n):
            noisy = mech.release(histogram.counts, epsilon, rng=rng)

        # Everything below is post-processing of `noisy` only.
        if self.k is not None:
            k_limit = min(self.k, n)
            with span("partition.dp", n=n, k=k_limit, kernel=self.kernel):
                table = voptimal_table(noisy, k_limit, kernel=self.kernel)
            chosen_k = k_limit
            estimates = None
        else:
            k_limit = min(self.max_k, n)
            with span("partition.dp", n=n, k=k_limit, kernel=self.kernel):
                table = voptimal_table(noisy, k_limit, kernel=self.kernel)
            estimates = noise_first_error_estimates(table, epsilon)
            chosen_k = int(np.argmin(estimates[1:]) + 1)
            # Publishing the raw noisy counts is the k = n member of the
            # family; include it in the comparison when n > k_limit.
            if n > k_limit and identity_error_estimate(n, epsilon) < float(
                estimates[chosen_k]
            ):
                chosen_k = n

        with span("postprocess.merge", k=chosen_k):
            if chosen_k == n:
                published = noisy
                partition = None
            else:
                partition = table.partition_for(chosen_k)
                published = partition.apply_means(noisy)

        meta: Dict[str, Any] = {
            "k": chosen_k,
            "adaptive": self.k is None,
            "partition": partition,
            "noisy_sse_by_k": None if estimates is None else table.sse_by_k.copy(),
            "error_estimates": estimates,
        }
        return published, meta
