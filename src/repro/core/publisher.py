"""The :class:`Publisher` interface every algorithm implements.

A publisher turns a true :class:`~repro.hist.Histogram` plus a privacy
budget into a sanitized histogram.  The base class owns the boilerplate —
budget coercion, accountant creation, rng coercion, post-release audit
that the spend matches the grant — so each algorithm only implements
``_publish``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

import numpy as np

from repro._validation import as_rng
from repro.accounting.accountant import Accountant
from repro.accounting.budget import EPS_TOL, PrivacyBudget
from repro.exceptions import ReproError
from repro.hist.histogram import Histogram

__all__ = ["PublishResult", "Publisher"]


@dataclass(frozen=True)
class PublishResult:
    """Outcome of one publication.

    Attributes
    ----------
    histogram:
        The sanitized histogram (same domain as the input).
    accountant:
        The accountant used for the release; its ledger documents every
        budget spend the algorithm made.
    meta:
        Algorithm-specific details (chosen bucket count, partition,
        budget split, ...), for diagnostics and the benches.
    """

    histogram: Histogram
    accountant: Accountant
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def epsilon_spent(self) -> float:
        """Composed epsilon actually spent, from the ledger."""
        return self.accountant.spent.epsilon


class Publisher(abc.ABC):
    """Base class for differentially private histogram publishers."""

    #: Short stable identifier used in benches and result tables.
    name: str = "publisher"

    def publish(
        self,
        histogram: Histogram,
        budget: "PrivacyBudget | float",
        rng: "np.random.Generator | int | None" = None,
    ) -> PublishResult:
        """Publish a sanitized version of ``histogram`` under ``budget``.

        Parameters
        ----------
        histogram:
            The true histogram (never mutated).
        budget:
            Total privacy budget, as a :class:`PrivacyBudget` or a plain
            epsilon.
        rng:
            Numpy generator / int seed / None.

        Returns
        -------
        PublishResult
            Sanitized histogram, spend ledger, and algorithm metadata.
        """
        if not isinstance(histogram, Histogram):
            raise TypeError(
                f"histogram must be a Histogram, got {type(histogram).__name__}"
            )
        if isinstance(budget, (int, float)) and not isinstance(budget, bool):
            budget = PrivacyBudget(float(budget))
        if budget.epsilon <= 0:
            raise ValueError(f"budget epsilon must be > 0, got {budget.epsilon}")
        accountant = Accountant(budget)
        generator = as_rng(rng)

        counts, meta = self._publish(histogram, accountant, generator)

        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape != histogram.counts.shape:
            raise ReproError(
                f"{self.name}: published {counts.shape} counts for a "
                f"{histogram.counts.shape} histogram"
            )
        spent = accountant.spent
        if spent.epsilon > budget.epsilon + EPS_TOL:
            raise ReproError(
                f"{self.name}: ledger shows overspend "
                f"({spent.epsilon:g} > {budget.epsilon:g})"
            )
        sanitized = Histogram(domain=histogram.domain, counts=counts)
        return PublishResult(histogram=sanitized, accountant=accountant, meta=meta)

    @abc.abstractmethod
    def _publish(
        self,
        histogram: Histogram,
        accountant: Accountant,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, Dict[str, Any]]:
        """Algorithm body: return (sanitized counts, metadata).

        Implementations must draw every budget spend through
        ``accountant.spend`` — the base class audits the total.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
