"""The paper's primary contribution: NoiseFirst and StructureFirst.

Both publishers trade *approximation error* (merging adjacent bins into
buckets and publishing bucket means) against *noise error* (Laplace
perturbation), in opposite orders:

* :class:`NoiseFirst` noises every bin with the full budget, then merges
  as free post-processing, picking the bucket count that minimizes an
  unbiased estimate of the true error.
* :class:`StructureFirst` spends part of the budget choosing the bucket
  boundaries with the exponential mechanism, then noises one sum per
  bucket — so long range queries inside a bucket see a single noise draw.
"""

from repro.core.publisher import PublishResult, Publisher
from repro.core.noise_first import NoiseFirst
from repro.core.structure_first import StructureFirst
from repro.core.kselect import default_bucket_count, noise_first_error_estimates
from repro.core.engine import RangeAnswer, RangeEngine

__all__ = [
    "Publisher",
    "PublishResult",
    "NoiseFirst",
    "StructureFirst",
    "default_bucket_count",
    "noise_first_error_estimates",
    "RangeAnswer",
    "RangeEngine",
]
