"""Closed-form *noise* variances of the publishers.

These are the exact sampling variances of each publisher's output
conditioned on its structure — approximation bias is deliberately
excluded (it depends on the hidden data; the benches measure total
error).  Every formula here is property-tested against Monte Carlo in
``tests/analysis``.

Conventions: unbounded neighbours (sensitivity 1) unless stated;
``sigma2 = 2 / eps**2`` is the variance of ``Lap(1/eps)``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro._validation import check_integer, check_positive
from repro.partition.partition import Partition

__all__ = [
    "dwork_unit_variance",
    "dwork_range_variance",
    "noisefirst_unit_variance",
    "structurefirst_unit_variance",
    "structurefirst_range_variance",
    "privelet_unit_variance",
    "boost_unit_variance_bound",
]


def dwork_unit_variance(epsilon: float, sensitivity: float = 1.0) -> float:
    """Variance of one published bin under the identity baseline."""
    check_positive(epsilon, "epsilon")
    check_positive(sensitivity, "sensitivity")
    return 2.0 * (sensitivity / epsilon) ** 2


def dwork_range_variance(
    epsilon: float, length: int, sensitivity: float = 1.0
) -> float:
    """Variance of a length-``L`` range sum: ``L`` independent noises."""
    check_integer(length, "length", minimum=1)
    return length * dwork_unit_variance(epsilon, sensitivity)


def noisefirst_unit_variance(
    partition: Partition, epsilon: float
) -> np.ndarray:
    """Per-bin noise variance of NoiseFirst given its final partition.

    A bucket of width ``w`` publishes the mean of ``w`` independent
    ``Lap(1/eps)`` noises: variance ``(2/eps^2) / w`` for each of its
    bins.  (The *selection* of the partition from the same noisy data
    introduces a small correlation this formula ignores; the test
    freezes the partition to validate the formula exactly.)
    """
    check_positive(epsilon, "epsilon")
    sigma2 = 2.0 / (epsilon * epsilon)
    out = np.empty(partition.n, dtype=np.float64)
    for start, stop in partition.buckets():
        out[start:stop] = sigma2 / (stop - start)
    return out


def structurefirst_unit_variance(
    partition: Partition, eps_noise: float
) -> np.ndarray:
    """Per-bin noise variance of StructureFirst given its partition.

    One ``Lap(1/eps_n)`` noise per bucket *sum*, divided by the width:
    ``2 / (eps_n^2 w^2)`` per bin.
    """
    check_positive(eps_noise, "eps_noise")
    sigma2 = 2.0 / (eps_noise * eps_noise)
    out = np.empty(partition.n, dtype=np.float64)
    for start, stop in partition.buckets():
        width = stop - start
        out[start:stop] = sigma2 / (width * width)
    return out


def structurefirst_range_variance(
    partition: Partition, eps_noise: float, lo: int, hi: int
) -> float:
    """Noise variance of a range sum ``[lo, hi]`` under StructureFirst.

    Bins sharing a bucket carry *identical* noise, so a range overlapping
    ``m_B`` of bucket ``B``'s ``w_B`` bins accumulates
    ``(m_B / w_B)**2 * 2 / eps_n**2`` — this is the formula behind SF's
    long-range advantage (fully covered buckets contribute one noise
    term each, not ``w_B``).
    """
    check_positive(eps_noise, "eps_noise")
    if not 0 <= lo <= hi < partition.n:
        raise ValueError(f"range [{lo}, {hi}] outside partition of "
                         f"{partition.n} bins")
    sigma2 = 2.0 / (eps_noise * eps_noise)
    total = 0.0
    for start, stop in partition.buckets():
        overlap = min(hi + 1, stop) - max(lo, start)
        if overlap > 0:
            width = stop - start
            total += (overlap / width) ** 2 * sigma2
    return total


def privelet_unit_variance(n: int, epsilon: float) -> float:
    """Exact per-bin noise variance of this library's Privelet.

    With padded size ``m = 2^L``, generalized sensitivity
    ``rho = 1 + L/2`` and ``lambda = rho / eps``:

    * base coefficient noise ``Lap(lambda / m)`` contributes
      ``2 lambda^2 / m^2``;
    * the level-``l`` detail (weight ``2^(l-1)``) contributes
      ``2 lambda^2 / 4^(l-1)``;

    and a leaf sums the base plus one detail per level (signs square
    away), so every bin has the same variance.
    """
    check_integer(n, "n", minimum=1)
    check_positive(epsilon, "epsilon")
    m = 1
    while m < n:
        m *= 2
    levels = int(math.log2(m)) if m > 1 else 0
    rho = 1.0 + levels / 2.0
    lam = rho / epsilon
    variance = 2.0 * lam * lam / (m * m)
    for level in range(1, levels + 1):
        variance += 2.0 * lam * lam / (4.0 ** (level - 1))
    return variance


def boost_unit_variance_bound(
    n: int, epsilon: float, branching: int = 2
) -> float:
    """Per-bin noise variance of Boost *without* consistency (exact),
    which upper-bounds the consistent version.

    Each of the ``h`` levels gets ``eps/h``, so a raw leaf carries
    ``2 (h/eps)^2``.  Consistency is an orthogonal projection and can
    only shrink this (strictly, for every non-root level).
    """
    check_integer(n, "n", minimum=1)
    check_positive(epsilon, "epsilon")
    check_integer(branching, "branching", minimum=2)
    padded = 1
    height = 1
    while padded < n:
        padded *= branching
        height += 1
    return 2.0 * (height / epsilon) ** 2


def predicted_unit_mse(
    counts: Sequence[float],
    partition: Partition,
    epsilon: float,
    mode: str = "noisefirst",
) -> float:
    """Total predicted per-bin MSE = structure bias + noise variance.

    Combines the (data-dependent, non-private — analysis only) bias of
    replacing bins with bucket means and the closed-form noise variance
    above.  ``mode`` is ``"noisefirst"`` (full-budget noise, averaged) or
    ``"structurefirst"`` (``epsilon`` interpreted as the noise share).
    """
    arr = np.asarray(counts, dtype=np.float64)
    if len(arr) != partition.n:
        raise ValueError("counts and partition sizes differ")
    bias = arr - partition.apply_means(arr)
    bias_mse = float(np.mean(bias * bias))
    if mode == "noisefirst":
        noise = noisefirst_unit_variance(partition, epsilon)
    elif mode == "structurefirst":
        noise = structurefirst_unit_variance(partition, epsilon)
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return bias_mse + float(np.mean(noise))
