"""Closed-form error analysis of the publishers."""

from repro.analysis.variance import (
    boost_unit_variance_bound,
    dwork_range_variance,
    dwork_unit_variance,
    noisefirst_unit_variance,
    privelet_unit_variance,
    structurefirst_range_variance,
    structurefirst_unit_variance,
)

__all__ = [
    "dwork_unit_variance",
    "dwork_range_variance",
    "noisefirst_unit_variance",
    "structurefirst_unit_variance",
    "structurefirst_range_variance",
    "privelet_unit_variance",
    "boost_unit_variance_bound",
]
