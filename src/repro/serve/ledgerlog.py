"""Durable ε-accounting for the query service: a write-ahead ledger log.

The in-memory :class:`~repro.accounting.Accountant` ledgers enforce
per-tenant budgets while the server is up, but a served histogram
system that loses (or double-spends) its ε-ledger on a crash silently
voids the differential-privacy budget the publish paid for.  The
:class:`LedgerLog` closes that hole with the same discipline the
checkpoint journal uses for experiment sweeps
(:mod:`repro.robust.journal`): one self-contained JSON line per event,
appended via :func:`repro.robust.atomicio.append_line` (single
``O_APPEND`` write + fsync), so a SIGKILL mid-append can tear at most
the final line and the loader tolerates exactly that.

Two event kinds:

``tenant``
    a tenant registration (name, ε budget) — replayed first on restart
    so explicit budgets survive a crash even if the server's default
    budget flag changes;
``debit``
    one charged query: tenant, ε, an **idempotency key**, plus the
    request **digest** and the answered **value**.  The service
    journals the debit *after* the in-memory check-and-spend succeeds
    and *before* the answer is released, which yields the two
    crash-safety invariants the chaos drill asserts:

    * **never overdraft** — only debits that passed the atomic
      in-memory budget check are ever journaled, so the journal's
      per-tenant sum can never exceed the budget;
    * **never re-charge an answered request** — a client retrying a
      request whose answer was already journaled presents the same
      idempotency key; the service finds it in :attr:`LedgerReplay.keys`
      (or the live seen-set) and answers for free.

    A crash *between* the in-memory spend and the journal append loses
    that debit — harmlessly, because the answer was never released, so
    no information left the server for that ε.

Idempotency keys are **scoped per tenant** (two tenants presenting the
same key string never collide — see :func:`scoped_key`) and **bound to
the request content**: the journaled ``digest`` covers
``(tenant, fingerprint, kind, lo, hi)``, and the journaled ``value``
is the answer that was released.  A replayed key therefore returns the
*original* answer, and a key resent with different bounds, a different
artifact, or a different tenant cannot harvest a free fresh answer —
the service rejects the mismatch instead (409).

Replay (:meth:`LedgerLog.replay`) is pure accounting: group debits by
tenant, dedupe by scoped key, sum.  The service applies the result to
fresh accountants at startup, restoring the exact spent totals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.exceptions import JournalError
from repro.robust.atomicio import append_line

__all__ = [
    "LEDGER_SCHEMA", "LedgerDebit", "LedgerLog", "LedgerReplay",
    "scoped_key",
]

LEDGER_SCHEMA = 1


def scoped_key(tenant: str, key: str) -> str:
    """The tenant-scoped form of an idempotency key.

    Keys are client-controlled strings; scoping them by tenant (with a
    separator no sane tenant name contains) makes a key collision
    between tenants impossible — tenant A replaying tenant B's key can
    never be answered from B's journaled debit.
    """
    return f"{tenant}\x1f{key}"


@dataclass(frozen=True)
class LedgerDebit:
    """One journaled charge (deduped by tenant-scoped ``key``).

    ``digest`` binds the key to the request content (tenant, artifact
    fingerprint, query kind and bounds) and ``value`` records the
    answer that was released, so a post-restart replay can verify the
    retry matches and re-serve the original answer.
    """

    tenant: str
    epsilon: float
    key: Optional[str] = None
    purpose: str = ""
    digest: Optional[str] = None
    value: Optional[float] = None


@dataclass
class LedgerReplay:
    """Everything a ledger file says happened before the crash."""

    #: First-registration-wins explicit budgets, in journal order.
    tenants: Dict[str, float] = field(default_factory=dict)
    #: Deduped debits, in journal order.
    debits: List[LedgerDebit] = field(default_factory=list)
    #: Every charged idempotency key, **scoped by tenant**
    #: (:func:`scoped_key`), mapped to its journaled debit so the
    #: service can verify a retry's digest and replay its value.
    keys: Dict[str, LedgerDebit] = field(default_factory=dict)
    #: Lines skipped as unparseable (a torn tail from a crash).
    torn_lines: int = 0
    #: Keyed debits skipped because their key had already been applied.
    duplicate_debits: int = 0

    def spent_by_tenant(self) -> Dict[str, float]:
        """Per-tenant ε totals implied by the journaled debits."""
        out: Dict[str, float] = {}
        for debit in self.debits:
            out[debit.tenant] = out.get(debit.tenant, 0.0) + debit.epsilon
        return out


class LedgerLog:
    """Append-only, torn-tail-tolerant ε-ledger journal."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: Appends performed by *this* process (not the replayed past).
        self.appends = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LedgerLog({str(self.path)!r})"

    # -- writes --------------------------------------------------------
    def _append(self, entry: Dict[str, Any]) -> None:
        append_line(
            self.path,
            json.dumps({"schema": LEDGER_SCHEMA, **entry}, sort_keys=True),
        )
        self.appends += 1

    def append_tenant(self, tenant: str, budget: float) -> None:
        """Durably record a tenant registration."""
        self._append({
            "kind": "tenant",
            "tenant": str(tenant),
            "budget": float(budget),
        })

    def append_debit(
        self,
        tenant: str,
        epsilon: float,
        key: Optional[str] = None,
        purpose: str = "",
        digest: Optional[str] = None,
        value: Optional[float] = None,
    ) -> None:
        """Durably record one charged query (call *before* answering).

        ``digest`` and ``value`` travel with keyed debits so a retry
        after restart can be verified against the original request and
        answered with the original value.
        """
        entry: Dict[str, Any] = {
            "kind": "debit",
            "tenant": str(tenant),
            "epsilon": float(epsilon),
            "purpose": str(purpose),
        }
        if key is not None:
            entry["key"] = str(key)
        if digest is not None:
            entry["digest"] = str(digest)
        if value is not None:
            entry["value"] = float(value)
        self._append(entry)

    # -- reads ---------------------------------------------------------
    def replay(self) -> LedgerReplay:
        """Reconstruct the pre-crash accounting state from the file.

        Unparseable lines (the torn tail of an interrupted append) are
        counted and skipped — a truncation at *any* byte offset yields
        a clean prefix of the journaled debits, never a corrupted
        total.  A wrong schema number raises :class:`JournalError`
        (version mismatch, not a crash artifact).  Keyed debits whose
        key repeats are dropped, so replaying a journal that recorded a
        retried-and-deduped request stays exactly-once.
        """
        replay = LedgerReplay()
        if not self.path.exists():
            return replay
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                replay.torn_lines += 1
                continue
            if not isinstance(entry, dict) or "kind" not in entry:
                replay.torn_lines += 1
                continue
            if entry.get("schema") != LEDGER_SCHEMA:
                raise JournalError(
                    f"ledger {self.path} has schema "
                    f"{entry.get('schema')!r}; expected {LEDGER_SCHEMA}"
                )
            kind = entry["kind"]
            if kind == "tenant":
                replay.tenants.setdefault(
                    str(entry["tenant"]), float(entry["budget"])
                )
            elif kind == "debit":
                tenant = str(entry["tenant"])
                key = entry.get("key")
                raw_value = entry.get("value")
                debit = LedgerDebit(
                    tenant=tenant,
                    epsilon=float(entry["epsilon"]),
                    key=None if key is None else str(key),
                    purpose=str(entry.get("purpose", "")),
                    digest=(
                        None if entry.get("digest") is None
                        else str(entry["digest"])
                    ),
                    value=None if raw_value is None else float(raw_value),
                )
                if key is not None:
                    skey = scoped_key(tenant, str(key))
                    if skey in replay.keys:
                        replay.duplicate_debits += 1
                        continue
                    replay.keys[skey] = debit
                replay.debits.append(debit)
            # Unknown kinds are ignored (forward-compatible).
        return replay
