"""Durable ε-accounting for the query service: a write-ahead ledger log.

The in-memory :class:`~repro.accounting.Accountant` ledgers enforce
per-tenant budgets while the server is up, but a served histogram
system that loses (or double-spends) its ε-ledger on a crash silently
voids the differential-privacy budget the publish paid for.  The
:class:`LedgerLog` closes that hole with the same discipline the
checkpoint journal uses for experiment sweeps
(:mod:`repro.robust.journal`): one self-contained JSON line per event,
appended via :func:`repro.robust.atomicio.append_line` (single
``O_APPEND`` write + fsync), so a SIGKILL mid-append can tear at most
the final line and the loader tolerates exactly that.

Two event kinds:

``tenant``
    a tenant registration (name, ε budget) — replayed first on restart
    so explicit budgets survive a crash even if the server's default
    budget flag changes;
``debit``
    one charged query: tenant, ε, and an **idempotency key**.  The
    service journals the debit *after* the in-memory check-and-spend
    succeeds and *before* the answer is released, which yields the two
    crash-safety invariants the chaos drill asserts:

    * **never overdraft** — only debits that passed the atomic
      in-memory budget check are ever journaled, so the journal's
      per-tenant sum can never exceed the budget;
    * **never re-charge an answered request** — a client retrying a
      request whose answer was already journaled presents the same
      idempotency key; the service finds it in :attr:`LedgerReplay.keys`
      (or the live seen-set) and answers for free.

    A crash *between* the in-memory spend and the journal append loses
    that debit — harmlessly, because the answer was never released, so
    no information left the server for that ε.

Replay (:meth:`LedgerLog.replay`) is pure accounting: group debits by
tenant, dedupe by key, sum.  The service applies the result to fresh
accountants at startup, restoring the exact spent totals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.exceptions import JournalError
from repro.robust.atomicio import append_line

__all__ = ["LEDGER_SCHEMA", "LedgerDebit", "LedgerLog", "LedgerReplay"]

LEDGER_SCHEMA = 1


@dataclass(frozen=True)
class LedgerDebit:
    """One journaled charge (deduped by ``key`` when present)."""

    tenant: str
    epsilon: float
    key: Optional[str] = None
    purpose: str = ""


@dataclass
class LedgerReplay:
    """Everything a ledger file says happened before the crash."""

    #: First-registration-wins explicit budgets, in journal order.
    tenants: Dict[str, float] = field(default_factory=dict)
    #: Deduped debits, in journal order.
    debits: List[LedgerDebit] = field(default_factory=list)
    #: Every idempotency key ever charged (retry dedup set).
    keys: Set[str] = field(default_factory=set)
    #: Lines skipped as unparseable (a torn tail from a crash).
    torn_lines: int = 0
    #: Keyed debits skipped because their key had already been applied.
    duplicate_debits: int = 0

    def spent_by_tenant(self) -> Dict[str, float]:
        """Per-tenant ε totals implied by the journaled debits."""
        out: Dict[str, float] = {}
        for debit in self.debits:
            out[debit.tenant] = out.get(debit.tenant, 0.0) + debit.epsilon
        return out


class LedgerLog:
    """Append-only, torn-tail-tolerant ε-ledger journal."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: Appends performed by *this* process (not the replayed past).
        self.appends = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LedgerLog({str(self.path)!r})"

    # -- writes --------------------------------------------------------
    def _append(self, entry: Dict[str, Any]) -> None:
        append_line(
            self.path,
            json.dumps({"schema": LEDGER_SCHEMA, **entry}, sort_keys=True),
        )
        self.appends += 1

    def append_tenant(self, tenant: str, budget: float) -> None:
        """Durably record a tenant registration."""
        self._append({
            "kind": "tenant",
            "tenant": str(tenant),
            "budget": float(budget),
        })

    def append_debit(
        self,
        tenant: str,
        epsilon: float,
        key: Optional[str] = None,
        purpose: str = "",
    ) -> None:
        """Durably record one charged query (call *before* answering)."""
        entry: Dict[str, Any] = {
            "kind": "debit",
            "tenant": str(tenant),
            "epsilon": float(epsilon),
            "purpose": str(purpose),
        }
        if key is not None:
            entry["key"] = str(key)
        self._append(entry)

    # -- reads ---------------------------------------------------------
    def replay(self) -> LedgerReplay:
        """Reconstruct the pre-crash accounting state from the file.

        Unparseable lines (the torn tail of an interrupted append) are
        counted and skipped — a truncation at *any* byte offset yields
        a clean prefix of the journaled debits, never a corrupted
        total.  A wrong schema number raises :class:`JournalError`
        (version mismatch, not a crash artifact).  Keyed debits whose
        key repeats are dropped, so replaying a journal that recorded a
        retried-and-deduped request stays exactly-once.
        """
        replay = LedgerReplay()
        if not self.path.exists():
            return replay
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                replay.torn_lines += 1
                continue
            if not isinstance(entry, dict) or "kind" not in entry:
                replay.torn_lines += 1
                continue
            if entry.get("schema") != LEDGER_SCHEMA:
                raise JournalError(
                    f"ledger {self.path} has schema "
                    f"{entry.get('schema')!r}; expected {LEDGER_SCHEMA}"
                )
            kind = entry["kind"]
            if kind == "tenant":
                replay.tenants.setdefault(
                    str(entry["tenant"]), float(entry["budget"])
                )
            elif kind == "debit":
                key = entry.get("key")
                if key is not None:
                    if key in replay.keys:
                        replay.duplicate_debits += 1
                        continue
                    replay.keys.add(str(key))
                replay.debits.append(LedgerDebit(
                    tenant=str(entry["tenant"]),
                    epsilon=float(entry["epsilon"]),
                    key=key,
                    purpose=str(entry.get("purpose", "")),
                ))
            # Unknown kinds are ignored (forward-compatible).
        return replay
