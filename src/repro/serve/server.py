"""Zero-dependency HTTP/JSON transport for the query service.

A :class:`ThreadingHTTPServer` (stdlib) hosting :class:`QueryService`.
One thread per in-flight request; the service layer is fully
thread-safe (locked cache, locked accountants, locked metric children),
so there is no global request lock and cache hits stay microseconds
under concurrency.

Admission control sits in front of every application route (liveness
and metrics stay exempt so probes work under load): a
:class:`~repro.serve.admission.AdmissionController` bounds concurrency
and queueing, and anything it refuses gets ``503`` + ``Retry-After``
— never a hang, never a 500.  Graceful shutdown drains: the controller
refuses new admissions (``503``, ``/healthz`` reports ``draining``)
while in-flight requests get a bounded deadline to finish.

Response bytes are deterministic: JSON is rendered with sorted keys and
stdlib ``repr`` floats, so two servers publishing the same spec return
byte-identical bodies — a property the replay transcript hashing and
the e2e determinism tests rely on.

Routes
------
==========  ====================  ========================================
method      path                  handler
==========  ====================  ========================================
``GET``     ``/healthz``          liveness probe (admission-exempt)
``GET``     ``/metrics``          Prometheus exposition (admission-exempt)
``GET``     ``/v1/debug``         introspection snapshot (admission-exempt)
``GET``     ``/v1/stats``         cache / tenant / uptime snapshot
``POST``    ``/v1/publish``       materialize an artifact from a spec
``POST``    ``/v1/tenants``       register a tenant with an ε budget
``POST``    ``/v1/query``         answer point/range count queries
``POST``    ``/v1/shutdown``      graceful stop (drain, then exit)
==========  ====================  ========================================
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.robust import faults
from repro.serve.admission import AdmissionController
from repro.serve.service import QueryService, RequestError

__all__ = ["HistogramHTTPServer", "make_server", "run_server"]

#: Request bodies above this size are refused (413) before parsing.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Routes that bypass admission control (probes and introspection must
#: answer under load — overload is exactly when you need ``/v1/debug``).
EXEMPT_PATHS = ("/healthz", "/metrics", "/v1/debug")


def _encode(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the service; never raises to the socket."""

    protocol_version = "HTTP/1.1"
    server: "HistogramHTTPServer"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            sys.stderr.write(
                "serve: %s - %s\n" % (self.address_string(), format % args)
            )

    def _request_id(self) -> Optional[str]:
        return self.server.service.telemetry.current_request_id()

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        telemetry = self.server.service.telemetry
        with telemetry.stage("serve.serialize"):
            body = _encode(payload)
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            rid = telemetry.current_request_id()
            if rid:
                self.send_header("X-Request-Id", rid)
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4") -> None:
        telemetry = self.server.service.telemetry
        with telemetry.stage("serve.serialize"):
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            rid = telemetry.current_request_id()
            if rid:
                self.send_header("X-Request-Id", rid)
            self.end_headers()
            self.wfile.write(body)

    def _send_shed(self, reason: str, retry_after: float) -> None:
        """503 + ``Retry-After``: integer header, float payload field."""
        payload = {
            "error": f"overloaded: {reason}",
            "reason": reason,
            "retry_after": retry_after,
        }
        rid = self._request_id()
        if rid:
            payload["request_id"] = rid
        self._send_json(
            503, payload,
            headers={"Retry-After": str(max(1, int(round(retry_after))))},
        )

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise RequestError(413, f"body larger than {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestError(400, "empty request body")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(400, f"bad JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise RequestError(400, "body must be a JSON object")
        return payload

    # -- dispatch ------------------------------------------------------
    def _path(self) -> str:
        return self.path.split("?", 1)[0].rstrip("/") or "/"

    def _dispatch(self, method: str, path: str) -> Tuple[str, int]:
        """Route one request; returns ``(endpoint, status)``."""
        service = self.server.service
        try:
            faults.maybe_inject_site("serve.handler", f"{method} {path}")
            if method == "GET":
                if path == "/healthz":
                    status, payload = service.health()
                    if self.server.draining:
                        status, payload = 503, {"status": "draining"}
                    self._send_json(status, payload)
                    return "healthz", status
                if path == "/metrics":
                    self._send_text(200, service.metrics_text())
                    return "metrics", 200
                if path == "/v1/debug":
                    status, payload = service.debug()
                    self._send_json(status, payload)
                    return "debug", status
                if path == "/v1/stats":
                    status, payload = service.stats()
                    self._send_json(status, payload)
                    return "stats", status
                raise RequestError(404, f"no such endpoint: GET {path}")
            if method == "POST":
                if path == "/v1/shutdown":
                    # Drain any body so the keep-alive stream stays sane.
                    length = int(self.headers.get("Content-Length", 0) or 0)
                    if 0 < length <= MAX_BODY_BYTES:
                        self.rfile.read(length)
                    self._send_json(200, {"status": "shutting down"})
                    self.server.request_shutdown()
                    return "shutdown", 200
                body = self._read_body()
                if path == "/v1/publish":
                    status, payload = service.publish(body)
                elif path == "/v1/tenants":
                    status, payload = service.register_tenant(body)
                elif path == "/v1/query":
                    status, payload = service.query(
                        body,
                        idempotency_key=self.headers.get("Idempotency-Key"),
                    )
                else:
                    raise RequestError(
                        404, f"no such endpoint: POST {path}"
                    )
                self._send_json(status, payload)
                return path.rsplit("/", 1)[-1], status
            raise RequestError(405, f"method {method} not allowed")
        except RequestError as exc:
            retry_after = getattr(exc, "retry_after", None)
            if retry_after is not None:
                reason = getattr(exc, "reason", "overloaded")
                service.telemetry.annotate(shed=reason)
                self._send_shed(reason, retry_after)
            else:
                self._send_json(
                    exc.status, self._error_body(exc.message)
                )
            return path.rsplit("/", 1)[-1] or "root", exc.status
        except BrokenPipeError:
            raise
        except Exception as exc:  # noqa: BLE001 - last-ditch 500 firewall
            self._send_json(
                500, self._error_body(f"{type(exc).__name__}: {exc}")
            )
            return path.rsplit("/", 1)[-1] or "root", 500

    def _error_body(self, message: str) -> Dict[str, Any]:
        """Error payloads carry the correlation id; 200 bodies never do
        (success bodies are part of the byte-identity contract)."""
        body: Dict[str, Any] = {"error": message}
        rid = self._request_id()
        if rid:
            body["request_id"] = rid
        return body

    def _handle(self, method: str) -> None:
        started = time.perf_counter()
        path = self._path()
        service = self.server.service
        telemetry = service.telemetry
        telemetry.begin_request(
            method, path, self.headers.get("X-Request-Id")
        )
        endpoint = path.rsplit("/", 1)[-1] or "root"
        status = 0  # 0 = aborted before a response was written
        try:
            admission = self.server.admission
            admitted = False
            if admission is not None and path not in EXEMPT_PATHS:
                decision = admission.try_admit()
                if decision.waited_seconds > 0:
                    telemetry.record_stage(
                        "serve.admission_wait", decision.waited_seconds
                    )
                if not decision.admitted:
                    reason = decision.reason or "overloaded"
                    service.note_shed(reason)
                    telemetry.annotate(shed=reason)
                    status = 503
                    try:
                        self._send_shed(reason, self.server.retry_after)
                    except BrokenPipeError:
                        return
                    service.observe_request(
                        endpoint, 503, time.perf_counter() - started
                    )
                    return
                admitted = True
            try:
                endpoint, status = self._dispatch(method, path)
            except BrokenPipeError:  # client went away mid-response
                status = 0
                return
            finally:
                if admitted:
                    admission.release()
            service.observe_request(
                endpoint, status, time.perf_counter() - started
            )
        finally:
            telemetry.end_request(endpoint, status)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")


class HistogramHTTPServer(ThreadingHTTPServer):
    """The serving socket: one daemon thread per request."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: QueryService,
        verbose: bool = False,
        admission: Optional[AdmissionController] = None,
        drain_seconds: float = 5.0,
        retry_after: float = 1.0,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        self.admission = admission
        self.drain_seconds = float(drain_seconds)
        self.retry_after = float(retry_after)
        self._shutdown_once = threading.Lock()
        self._shutdown_started = False

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self.admission is not None and self.admission.draining

    def request_shutdown(self) -> None:
        """Drain, then stop the serve loop (idempotent, non-blocking).

        New application requests are refused with 503 from the instant
        drain begins; in-flight requests get ``drain_seconds`` to
        finish before the socket loop stops regardless.
        """
        with self._shutdown_once:
            if self._shutdown_started:
                return
            self._shutdown_started = True

        def _drain_and_stop() -> None:
            if self.admission is not None:
                self.admission.begin_drain()
                self.admission.wait_drained(self.drain_seconds)
            self.shutdown()

        threading.Thread(target=_drain_and_stop, daemon=True).start()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: Optional[QueryService] = None,
    verbose: bool = False,
    admission: Optional[AdmissionController] = None,
    drain_seconds: float = 5.0,
    retry_after: float = 1.0,
) -> HistogramHTTPServer:
    """Bind a server (``port=0`` picks an ephemeral port)."""
    if service is None:
        service = QueryService()
    if admission is not None:
        service.attach_admission(admission)
    return HistogramHTTPServer(
        (host, port), service, verbose=verbose, admission=admission,
        drain_seconds=drain_seconds, retry_after=retry_after,
    )


def run_server(server: HistogramHTTPServer) -> int:
    """Serve until SIGINT/SIGTERM or ``POST /v1/shutdown``; returns 0.

    Signal handlers are installed only on the main thread (the CLI
    path); embedded servers should call ``server.shutdown()`` directly.
    """
    if threading.current_thread() is threading.main_thread():
        def _stop(_signum: int, _frame: Any) -> None:
            server.request_shutdown()

        for sig in (signal.SIGINT, signal.SIGTERM):
            signal.signal(sig, _stop)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
    return 0
