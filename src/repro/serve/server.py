"""Zero-dependency HTTP/JSON transport for the query service.

A :class:`ThreadingHTTPServer` (stdlib) hosting :class:`QueryService`.
One thread per in-flight request; the service layer is fully
thread-safe (locked cache, locked accountants, locked metric children),
so there is no global request lock and cache hits stay microseconds
under concurrency.

Response bytes are deterministic: JSON is rendered with sorted keys and
stdlib ``repr`` floats, so two servers publishing the same spec return
byte-identical bodies — a property the replay transcript hashing and
the e2e determinism tests rely on.

Routes
------
==========  ====================  ========================================
method      path                  handler
==========  ====================  ========================================
``GET``     ``/healthz``          liveness probe
``GET``     ``/metrics``          Prometheus exposition
``GET``     ``/v1/stats``         cache / tenant / uptime snapshot
``POST``    ``/v1/publish``       materialize an artifact from a spec
``POST``    ``/v1/tenants``       register a tenant with an ε budget
``POST``    ``/v1/query``         answer point/range count queries
``POST``    ``/v1/shutdown``      graceful stop (responds, then exits)
==========  ====================  ========================================
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.serve.service import QueryService, RequestError

__all__ = ["HistogramHTTPServer", "make_server", "run_server"]

#: Request bodies above this size are refused (413) before parsing.
MAX_BODY_BYTES = 8 * 1024 * 1024


def _encode(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the service; never raises to the socket."""

    protocol_version = "HTTP/1.1"
    server: "HistogramHTTPServer"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            sys.stderr.write(
                "serve: %s - %s\n" % (self.address_string(), format % args)
            )

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = _encode(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise RequestError(413, f"body larger than {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestError(400, "empty request body")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(400, f"bad JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise RequestError(400, "body must be a JSON object")
        return payload

    # -- dispatch ------------------------------------------------------
    def _dispatch(self, method: str) -> Tuple[str, int]:
        """Route one request; returns ``(endpoint, status)``."""
        service = self.server.service
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if method == "GET":
                if path == "/healthz":
                    status, payload = service.health()
                    self._send_json(status, payload)
                    return "healthz", status
                if path == "/metrics":
                    self._send_text(200, service.metrics_text())
                    return "metrics", 200
                if path == "/v1/stats":
                    status, payload = service.stats()
                    self._send_json(status, payload)
                    return "stats", status
                raise RequestError(404, f"no such endpoint: GET {path}")
            if method == "POST":
                if path == "/v1/shutdown":
                    # Drain any body so the keep-alive stream stays sane.
                    length = int(self.headers.get("Content-Length", 0) or 0)
                    if 0 < length <= MAX_BODY_BYTES:
                        self.rfile.read(length)
                    self._send_json(200, {"status": "shutting down"})
                    self.server.request_shutdown()
                    return "shutdown", 200
                body = self._read_body()
                if path == "/v1/publish":
                    status, payload = service.publish(body)
                elif path == "/v1/tenants":
                    status, payload = service.register_tenant(body)
                elif path == "/v1/query":
                    status, payload = service.query(body)
                else:
                    raise RequestError(
                        404, f"no such endpoint: POST {path}"
                    )
                self._send_json(status, payload)
                return path.rsplit("/", 1)[-1], status
            raise RequestError(405, f"method {method} not allowed")
        except RequestError as exc:
            self._send_json(exc.status, {"error": exc.message})
            return path.rsplit("/", 1)[-1] or "root", exc.status
        except BrokenPipeError:
            raise
        except Exception as exc:  # noqa: BLE001 - last-ditch 500 firewall
            self._send_json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
            return path.rsplit("/", 1)[-1] or "root", 500

    def _handle(self, method: str) -> None:
        started = time.perf_counter()
        try:
            endpoint, status = self._dispatch(method)
        except BrokenPipeError:  # client went away mid-response
            return
        self.server.service.observe_request(
            endpoint, status, time.perf_counter() - started
        )

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")


class HistogramHTTPServer(ThreadingHTTPServer):
    """The serving socket: one daemon thread per request."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: QueryService,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def request_shutdown(self) -> None:
        """Stop the serve loop without deadlocking the calling handler."""
        threading.Thread(target=self.shutdown, daemon=True).start()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: Optional[QueryService] = None,
    verbose: bool = False,
) -> HistogramHTTPServer:
    """Bind a server (``port=0`` picks an ephemeral port)."""
    if service is None:
        service = QueryService()
    return HistogramHTTPServer((host, port), service, verbose=verbose)


def run_server(server: HistogramHTTPServer) -> int:
    """Serve until SIGINT/SIGTERM or ``POST /v1/shutdown``; returns 0.

    Signal handlers are installed only on the main thread (the CLI
    path); embedded servers should call ``server.shutdown()`` directly.
    """
    if threading.current_thread() is threading.main_thread():
        def _stop(_signum: int, _frame: Any) -> None:
            server.request_shutdown()

        for sig in (signal.SIGINT, signal.SIGTERM):
            signal.signal(sig, _stop)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
    return 0
