"""On-disk artifact store: warm restarts without re-drawing noise.

Re-publishing a spec after a restart is not merely slow — it draws a
*fresh* noisy histogram, which from the privacy ledger's point of view
is a second ε-spending release.  The store therefore spills every
published :class:`~repro.serve.artifacts.PublishedArtifact` to a
fingerprint-keyed file, and a restarted server rehydrates known specs
from disk **byte-identically** instead of running the publisher again.

One artifact = one JSON file (``<fingerprint>.json``) written with
:func:`repro.robust.atomicio.atomic_write_text`, so a crash mid-spill
leaves either the previous complete file or nothing — never a torn
spill visible under the real name.  Defense in depth for files torn by
other means (a copied-in partial file, disk corruption): the payload
carries a SHA-256 over the raw count bytes, and a file that fails to
parse or verify is **quarantined** (renamed ``*.quarantined``) rather
than served — truncation at any byte offset yields either the full
artifact or a clean quarantine, never wrong counts (property-tested in
``tests/serve/test_crashsafety.py``).

Byte identity holds because ``counts`` round-trips as raw little-endian
float64 bytes (base64 in the JSON) and the prefix-sum array is a
deterministic function of the counts.  Artifact ``meta`` round-trips
through JSON up to one documented normalization (numpy scalars become
Python scalars, tuples and arrays become lists); a meta value that
cannot survive the round-trip raises :class:`TypeError` at save time
instead of being silently dropped — a rehydrated artifact never
carries different meta than the one that was published.
"""

from __future__ import annotations

import base64
import hashlib
import threading
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.hist.ranges import prefix_sums
from repro.robust.atomicio import atomic_write_text
from repro.serve.artifacts import PublishedArtifact
from repro.serve.spec import ServeSpec

__all__ = ["STORE_SCHEMA", "ArtifactStore"]

STORE_SCHEMA = 1


def _counts_sha(raw: bytes) -> str:
    return hashlib.sha256(raw).hexdigest()


def _json_meta(value, path: str = "meta"):
    """JSON-normalize artifact ``meta``, loudly rejecting what can't.

    A rehydrated artifact must carry the same meta the publish did, so
    values are either preserved exactly (str/int/float/bool/None and
    str-keyed dicts/lists of those), normalized the one documented way
    (numpy scalars → Python scalars, tuples and numpy arrays → lists),
    or rejected with :class:`TypeError` at save time — never silently
    dropped to diverge after a warm restart.
    """
    if isinstance(value, (str, int, float)) or value is None:
        return value
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_json_meta(v, f"{path}[]") for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_json_meta(v, f"{path}[]") for v in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"artifact meta key {key!r} at {path} is not a "
                    "string; meta must survive a JSON round-trip to "
                    "rehydrate identically after a restart"
                )
            out[key] = _json_meta(item, f"{path}.{key}")
        return out
    raise TypeError(
        f"artifact meta value at {path} has unserializable type "
        f"{type(value).__name__}; meta must survive a JSON round-trip "
        "to rehydrate identically after a restart"
    )


class ArtifactStore:
    """Fingerprint-keyed spill directory for published artifacts."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.saves = 0
        self.loads = 0
        self.quarantined = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r})"

    def _path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    # -- writes --------------------------------------------------------
    def save(self, artifact: PublishedArtifact) -> Path:
        """Atomically spill one artifact; idempotent per fingerprint."""
        import json

        from repro.robust import faults

        raw = np.ascontiguousarray(
            artifact.counts, dtype=np.float64
        ).tobytes()
        payload = {
            "schema": STORE_SCHEMA,
            "fingerprint": artifact.fingerprint,
            "spec": artifact.spec.to_payload(),
            "epsilon_spent": float(artifact.epsilon_spent),
            "publish_seconds": float(artifact.publish_seconds),
            "meta": _json_meta(dict(artifact.meta)),
            "counts_sha256": _counts_sha(raw),
            "counts_b64": base64.b64encode(raw).decode("ascii"),
        }
        path = self._path(artifact.fingerprint)
        faults.maybe_inject_site("serve.before_spill", artifact.fingerprint)
        atomic_write_text(path, json.dumps(payload, sort_keys=True) + "\n")
        with self._lock:
            self.saves += 1
        return path

    # -- reads ---------------------------------------------------------
    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt file out of the live namespace, keep evidence."""
        with self._lock:
            self.quarantined += 1
        target = path.with_name(path.name + ".quarantined")
        try:
            path.replace(target)
        except OSError:  # pragma: no cover - racing quarantines
            pass

    def _parse(
        self, path: Path
    ) -> Optional[Tuple[Dict, ServeSpec, bytes]]:
        """Parse + verify one spill file; quarantine on any defect."""
        import json

        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            self._quarantine(path, "unparseable")
            return None
        if not isinstance(payload, dict) or \
                payload.get("schema") != STORE_SCHEMA:
            self._quarantine(path, "bad schema")
            return None
        try:
            raw = base64.b64decode(
                payload["counts_b64"].encode("ascii"), validate=True
            )
            spec = ServeSpec.from_payload(payload["spec"])
            expected = str(payload["counts_sha256"])
        except (KeyError, ValueError, TypeError, AttributeError):
            self._quarantine(path, "bad payload")
            return None
        if _counts_sha(raw) != expected or len(raw) % 8 != 0 or not raw:
            self._quarantine(path, "checksum mismatch")
            return None
        return payload, spec, raw

    def load(self, fingerprint: str) -> Optional[PublishedArtifact]:
        """Rehydrate one artifact, or ``None`` (absent / quarantined).

        The rehydrated artifact's ``counts`` are byte-identical to the
        spilled publish; a file whose embedded fingerprint disagrees
        with its name is quarantined (a copy/rename accident would
        otherwise serve the wrong spec's counts).
        """
        path = self._path(fingerprint)
        if not path.exists():
            return None
        parsed = self._parse(path)
        if parsed is None:
            return None
        payload, spec, raw = parsed
        if payload.get("fingerprint") != fingerprint:
            self._quarantine(path, "fingerprint mismatch")
            return None
        counts = np.frombuffer(raw, dtype="<f8")
        artifact = PublishedArtifact(
            spec=spec,
            fingerprint=fingerprint,
            counts=counts,
            prefix=prefix_sums(counts),
            epsilon_spent=float(payload.get("epsilon_spent", spec.epsilon)),
            publish_seconds=float(payload.get("publish_seconds", 0.0)),
            meta=dict(payload.get("meta", {})),
        )
        with self._lock:
            self.loads += 1
        return artifact

    def specs(self) -> Dict[str, ServeSpec]:
        """Scan the store: ``{fingerprint: spec}`` for every valid file.

        Corrupt files are quarantined during the scan, so a restart
        both discovers the warm set and sweeps crash debris in one
        pass.
        """
        out: Dict[str, ServeSpec] = {}
        for path in sorted(self.root.glob("*.json")):
            parsed = self._parse(path)
            if parsed is None:
                continue
            payload, spec, _raw = parsed
            fingerprint = payload.get("fingerprint")
            if not isinstance(fingerprint, str) or \
                    path.stem != fingerprint:
                self._quarantine(path, "fingerprint mismatch")
                continue
            out[fingerprint] = spec
        return out

    def fingerprints(self) -> Tuple[str, ...]:
        """Fingerprints with a (not-yet-verified) spill file on disk."""
        return tuple(sorted(p.stem for p in self.root.glob("*.json")))

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "artifacts": len(list(self.root.glob("*.json"))),
                "saves": self.saves,
                "loads": self.loads,
                "quarantined": self.quarantined,
            }
