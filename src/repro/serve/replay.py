"""Deterministic workload-trace replay against the query service.

A *manifest* (JSON, BRAD ``run_experiment``/trace-manifest shape)
declares one serving scenario: the spec to publish, the tenants and
their ε budgets, seeded arrival-gap and query-mix distributions, and a
bounded number of *issue slots*.  :func:`run_replay` expands it into a
fully deterministic query schedule, drives it through per-tenant client
workers, and returns a :class:`ReplayResult` whose **transcript** —
the ordered ``(index, tenant, query, status, answer)`` stream — is
bit-identical across replays of the same manifest against a fresh
server (docs/serving.md states the exact guarantee).

Determinism under concurrency
-----------------------------
The schedule (tenants, query kinds, bounds, gaps) is generated up front
from ``np.random.default_rng(manifest.seed)``.  Each tenant's queries
are issued *serially in schedule order by a dedicated worker*, so every
per-tenant ledger debit sequence — and therefore every ok/exhausted
status — is reproducible even though tenants run concurrently (budgets
are per-tenant, so cross-tenant interleaving cannot change outcomes).
Issue slots bound how many workers are in flight at once, BRAD-style;
they shape latency, never answers.  Latency measurements are the one
intentionally non-deterministic output.

Supervision
-----------
Workers are supervised the way the robust executor supervises trials:
per-request transport retries with deterministic backoff, and a worker
that still cannot reach the server quarantines the remainder of its
trace into a :class:`~repro.robust.records.FailedRecord` instead of
crashing the replay.  An optional
:class:`~repro.obs.monitor.ExecutorObserver` receives run/dispatch/done
events (one "seed" per tenant), so ``RunStats`` and the progress
monitors work unchanged.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.robust.records import FailedRecord
from repro.serve.client import ServeClient
from repro.serve.spec import ServeSpec

__all__ = [
    "ReplayManifest",
    "ReplayPhase",
    "ReplayResult",
    "ReplayTenant",
    "ScheduledQuery",
    "build_schedule",
    "load_manifest",
    "record_replay_metrics",
    "run_replay",
]

#: Wire-latency buckets for the replay histogram (seconds).
REPLAY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 5.0
)


# ---------------------------------------------------------------------------
# Manifest model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReplayTenant:
    """One simulated client population sharing an ε budget."""

    name: str
    budget: Optional[float] = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("tenant name must be a non-empty string")
        if self.budget is not None and float(self.budget) <= 0:
            raise ValueError(
                f"tenant {self.name!r}: budget must be > 0"
            )
        if float(self.weight) <= 0:
            raise ValueError(
                f"tenant {self.name!r}: weight must be > 0"
            )


@dataclass(frozen=True)
class ReplayPhase:
    """A contiguous slice of the trace with one query mix."""

    name: str
    queries: int
    point_fraction: float = 0.5
    mean_gap_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("phase name must be a non-empty string")
        if int(self.queries) < 1:
            raise ValueError(
                f"phase {self.name!r}: queries must be >= 1"
            )
        if not 0.0 <= float(self.point_fraction) <= 1.0:
            raise ValueError(
                f"phase {self.name!r}: point_fraction must be in [0, 1]"
            )
        if self.mean_gap_ms is not None and float(self.mean_gap_ms) < 0:
            raise ValueError(
                f"phase {self.name!r}: mean_gap_ms must be >= 0"
            )


@dataclass(frozen=True)
class ReplayManifest:
    """One serving scenario, fully specified and seedable."""

    name: str
    seed: int
    spec: ServeSpec
    tenants: Tuple[ReplayTenant, ...]
    phases: Tuple[ReplayPhase, ...]
    issue_slots: int = 4
    mean_gap_ms: float = 1.0
    gap_distribution: str = "exponential"
    time_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("manifest name must be a non-empty string")
        if int(self.seed) < 0:
            raise ValueError("manifest seed must be >= 0")
        if not self.tenants:
            raise ValueError("manifest needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        if not self.phases:
            raise ValueError("manifest needs at least one phase")
        if int(self.issue_slots) < 1:
            raise ValueError("issue_slots must be >= 1")
        if float(self.mean_gap_ms) < 0:
            raise ValueError("mean_gap_ms must be >= 0")
        if self.gap_distribution not in ("exponential", "fixed"):
            raise ValueError(
                "gap_distribution must be 'exponential' or 'fixed', "
                f"got {self.gap_distribution!r}"
            )
        if float(self.time_scale) < 0:
            raise ValueError("time_scale must be >= 0")

    @property
    def total_queries(self) -> int:
        return sum(p.queries for p in self.phases)


def load_manifest(path: Union[str, Path]) -> ReplayManifest:
    """Parse and validate a manifest file (see docs/serving.md)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"manifest {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"manifest {path} must be a JSON object")
    known = {
        "name", "seed", "spec", "tenants", "phases", "issue_slots",
        "arrival", "time_scale",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(
            f"manifest {path}: unknown field(s): {', '.join(unknown)}"
        )
    missing = [f for f in ("name", "spec", "phases") if f not in payload]
    if missing:
        raise ValueError(
            f"manifest {path}: missing field(s): {', '.join(missing)}"
        )
    spec = ServeSpec.from_payload(payload["spec"])
    tenants_payload = payload.get("tenants") or [{"name": "default"}]
    tenants = tuple(
        ReplayTenant(
            name=t.get("name", f"tenant-{i}"),
            budget=t.get("budget"),
            weight=float(t.get("weight", 1.0)),
        )
        for i, t in enumerate(tenants_payload)
    )
    phases = tuple(
        ReplayPhase(
            name=p.get("name", f"phase-{i}"),
            queries=int(p["queries"]),
            point_fraction=float(p.get("point_fraction", 0.5)),
            mean_gap_ms=(
                float(p["mean_gap_ms"]) if "mean_gap_ms" in p else None
            ),
        )
        for i, p in enumerate(payload["phases"])
    )
    arrival = payload.get("arrival", {})
    if not isinstance(arrival, dict):
        raise ValueError(f"manifest {path}: arrival must be an object")
    return ReplayManifest(
        name=str(payload["name"]),
        seed=int(payload.get("seed", 0)),
        spec=spec,
        tenants=tenants,
        phases=phases,
        issue_slots=int(payload.get("issue_slots", 4)),
        mean_gap_ms=float(arrival.get("mean_gap_ms", 1.0)),
        gap_distribution=str(
            arrival.get("distribution", "exponential")
        ),
        time_scale=float(payload.get("time_scale", 1.0)),
    )


# ---------------------------------------------------------------------------
# Schedule generation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScheduledQuery:
    """One trace entry: who asks what, and when (milliseconds)."""

    index: int
    tenant: str
    phase: str
    kind: str  # "point" | "range"
    lo: int
    hi: int  # half-open; point queries have hi == lo + 1
    at_ms: float

    def wire_query(self) -> Dict[str, int]:
        if self.kind == "point":
            return {"bin": self.lo}
        return {"lo": self.lo, "hi": self.hi}


def build_schedule(manifest: ReplayManifest) -> List[ScheduledQuery]:
    """Expand a manifest into its full, deterministic query trace.

    Every random draw comes from one generator seeded with
    ``manifest.seed``, consumed in a fixed order (tenant, kind, bounds,
    gap per query), so the same manifest always yields the same trace.
    """
    rng = np.random.default_rng(manifest.seed)
    n = manifest.spec.n_bins
    weights = np.asarray(
        [t.weight for t in manifest.tenants], dtype=np.float64
    )
    weights = weights / weights.sum()
    tenant_names = [t.name for t in manifest.tenants]
    schedule: List[ScheduledQuery] = []
    clock_ms = 0.0
    index = 0
    for phase in manifest.phases:
        mean_gap = (
            phase.mean_gap_ms
            if phase.mean_gap_ms is not None
            else manifest.mean_gap_ms
        )
        for _ in range(phase.queries):
            tenant = tenant_names[int(rng.choice(len(tenant_names),
                                                 p=weights))]
            is_point = bool(rng.random() < phase.point_fraction)
            if is_point:
                lo = int(rng.integers(0, n))
                hi = lo + 1
                kind = "point"
            else:
                lo = int(rng.integers(0, n + 1))
                hi = int(rng.integers(lo, n + 1))
                kind = "range"
            if manifest.gap_distribution == "exponential":
                gap = float(rng.exponential(mean_gap)) if mean_gap > 0 \
                    else 0.0
            else:
                gap = float(mean_gap)
            clock_ms += gap
            schedule.append(ScheduledQuery(
                index=index, tenant=tenant, phase=phase.name, kind=kind,
                lo=lo, hi=hi, at_ms=clock_ms,
            ))
            index += 1
    return schedule


# ---------------------------------------------------------------------------
# Replay result
# ---------------------------------------------------------------------------

@dataclass
class ReplayResult:
    """Everything one replay produced.

    ``records`` is index-ordered; its deterministic fields (everything
    except latency) form the transcript whose SHA-256 the determinism
    tests compare.
    """

    manifest: ReplayManifest
    fingerprint: str
    records: List[Dict[str, Any]]
    latencies: np.ndarray
    elapsed_seconds: float
    publish: Dict[str, Any] = field(default_factory=dict)
    failures: List[FailedRecord] = field(default_factory=list)
    #: Final ``/v1/stats`` snapshot from the server (best-effort; empty
    #: when the scrape failed).  Carries the resilience counters the
    #: history store and the chaos drill consume.
    server_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def n_queries(self) -> int:
        return len(self.records)

    def status_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.records:
            status = record["status"]
            out[status] = out.get(status, 0) + 1
        return out

    def percentile(self, q: float) -> float:
        """Latency percentile in seconds (NaN when nothing measured)."""
        if self.latencies.size == 0:
            return float("nan")
        return float(np.percentile(self.latencies, q))

    @property
    def p50_seconds(self) -> float:
        return self.percentile(50.0)

    @property
    def p99_seconds(self) -> float:
        return self.percentile(99.0)

    @property
    def throughput_qps(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.n_queries / self.elapsed_seconds

    def transcript(self) -> Dict[str, Any]:
        """The deterministic view of this replay (no timings)."""
        return {
            "manifest": self.manifest.name,
            "seed": self.manifest.seed,
            "fingerprint": self.fingerprint,
            "records": [
                {
                    "index": r["index"],
                    "tenant": r["tenant"],
                    "phase": r["phase"],
                    "kind": r["kind"],
                    "lo": r["lo"],
                    "hi": r["hi"],
                    "status": r["status"],
                    "value": r.get("value"),
                    "code": r["code"],
                }
                for r in self.records
            ],
        }

    def transcript_sha(self) -> str:
        import hashlib

        text = json.dumps(self.transcript(), sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def had_server_errors(self) -> bool:
        """True when any response was 5xx or transport-failed."""
        return bool(self.failures) or any(
            r["code"] >= 500 or r["status"] == "error"
            for r in self.records
        )

    def summary_lines(self) -> List[str]:
        counts = self.status_counts()
        status_text = ", ".join(
            f"{counts[s]} {s}" for s in sorted(counts)
        ) or "no queries"
        lines = [
            f"replay {self.manifest.name}: {self.n_queries} queries in "
            f"{self.elapsed_seconds:.3f}s "
            f"({self.throughput_qps:.1f} q/s)",
            f"  status: {status_text}",
            f"  latency: p50={self.p50_seconds * 1e3:.2f}ms "
            f"p99={self.p99_seconds * 1e3:.2f}ms",
            f"  artifact: {self.fingerprint[:16]}… "
            f"(cached={self.publish.get('cached')})",
            f"  transcript sha256: {self.transcript_sha()}",
        ]
        for failed in self.failures:
            lines.append(f"  FAILED {failed.describe()}")
        return lines


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------

class _NullObserver:
    def __getattr__(self, _name: str):  # any hook: no-op
        return lambda *args, **kwargs: None


#: Transport failures worth retrying: connection refused/reset (a
#: server restarting mid-chaos) and half-closed keep-alive streams
#: (``BadStatusLine`` is an ``HTTPException``, not an ``OSError``).
_TRANSPORT_ERRORS = (OSError, http.client.HTTPException)


def _issue_one(
    client: ServeClient,
    fingerprint: str,
    item: ScheduledQuery,
    retries: int,
    backoff_seconds: float,
    idempotency_key: Optional[str] = None,
) -> Tuple[int, Dict[str, Any], float]:
    """Send one query with bounded transport retries.

    Returns ``(http_code, payload, latency_seconds)``; raises the last
    transport error once the retry budget is exhausted.  The
    deterministic ``idempotency_key`` is re-sent on every retry, so a
    request whose answer was journaled just before a crash is replayed
    for free instead of double-charging the tenant.
    """
    attempt = 0
    while True:
        started = time.perf_counter()
        try:
            code, payload = client.query(
                item.tenant, [item.wire_query()], fingerprint=fingerprint,
                idempotency_key=idempotency_key,
            )
            return code, payload, time.perf_counter() - started
        except _TRANSPORT_ERRORS:
            attempt += 1
            if attempt > retries:
                raise
            time.sleep(backoff_seconds * (2 ** (attempt - 1)))


def _tenant_worker(
    tenant: str,
    items: Sequence[ScheduledQuery],
    client: ServeClient,
    fingerprint: str,
    slots: threading.Semaphore,
    start_monotonic: float,
    time_scale: float,
    retries: int,
    backoff_seconds: float,
    key_prefix: str,
    out_records: Dict[int, Dict[str, Any]],
    out_latencies: Dict[int, float],
    failures: List[FailedRecord],
    lock: threading.Lock,
) -> None:
    """Issue one tenant's trace serially, in schedule order."""
    for position, item in enumerate(items):
        if time_scale > 0:
            target = start_monotonic + item.at_ms * time_scale / 1000.0
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        with slots:
            try:
                code, payload, latency = _issue_one(
                    client, fingerprint, item, retries, backoff_seconds,
                    idempotency_key=f"{key_prefix}:{item.index}",
                )
            except _TRANSPORT_ERRORS as exc:
                # Quarantine the rest of this tenant's trace: a dead
                # transport would fail every later query identically.
                with lock:
                    failures.append(FailedRecord(
                        spec_name=f"replay/{tenant}",
                        publisher=fingerprint[:12],
                        seed=item.index,
                        epsilon=0.0,
                        error=type(exc).__name__,
                        cause=str(exc),
                        attempts=retries + 1,
                        meta={
                            "remaining_queries": len(items) - position,
                            # The X-Request-Id of the attempt that died
                            # (attached by ServeClient), joinable
                            # against the server's access log.
                            "request_id": getattr(
                                exc, "request_id", None
                            ),
                        },
                    ))
                for rest in items[position:]:
                    with lock:
                        out_records[rest.index] = {
                            "index": rest.index,
                            "tenant": rest.tenant,
                            "phase": rest.phase,
                            "kind": rest.kind,
                            "lo": rest.lo,
                            "hi": rest.hi,
                            "status": "error",
                            "error": str(exc),
                            "code": 0,
                        }
                return
        results = payload.get("results") or [{}]
        result = results[0]
        record = {
            "index": item.index,
            "tenant": item.tenant,
            "phase": item.phase,
            "kind": item.kind,
            "lo": item.lo,
            "hi": item.hi,
            "status": result.get("status", "error"),
            "code": code,
        }
        if "value" in result:
            record["value"] = result["value"]
        if "error" in result:
            record["error"] = result["error"]
        with lock:
            out_records[item.index] = record
            out_latencies[item.index] = latency


def run_replay(
    manifest: ReplayManifest,
    base_url: Optional[str] = None,
    *,
    time_scale: Optional[float] = None,
    retries: int = 2,
    backoff_seconds: float = 0.05,
    observer: Optional[Any] = None,
    cache_entries: int = 8,
    default_tenant_budget: float = 100.0,
    state_dir: Optional[Union[str, Path]] = None,
) -> ReplayResult:
    """Replay a manifest; self-hosts a fresh server when no URL given.

    ``time_scale`` overrides the manifest's (``0`` = ignore arrival
    gaps and go as fast as the issue slots allow).  The self-hosted
    mode guarantees a fresh server state, which is what the transcript
    determinism guarantee is stated against; pass ``state_dir`` to
    self-host with the durable ledger + artifact store enabled.
    """
    owned_server = None
    if base_url is None:
        from repro.serve.server import make_server
        from repro.serve.service import QueryService

        service = QueryService(
            cache_entries=cache_entries,
            default_tenant_budget=default_tenant_budget,
            state_dir=state_dir,
        )
        owned_server = make_server("127.0.0.1", 0, service)
        server_thread = threading.Thread(
            target=owned_server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        server_thread.start()
        base_url = owned_server.url
    scale = manifest.time_scale if time_scale is None else float(time_scale)
    obs = observer if observer is not None else _NullObserver()
    client = ServeClient(base_url)
    def _setup_call(fn, *fn_args):
        """Setup RPCs retried like queries (registration and publish
        are idempotent, and a chaos kill can land mid-publish)."""
        attempt = 0
        while True:
            try:
                return fn(*fn_args)
            except _TRANSPORT_ERRORS:
                attempt += 1
                if attempt > retries:
                    raise
                time.sleep(backoff_seconds * (2 ** (attempt - 1)))
                client.wait_ready()

    try:
        client.wait_ready()
        # Tenants first (explicit budgets), then the artifact, so the
        # trace starts against fully-provisioned state.
        for tenant in manifest.tenants:
            code, payload = _setup_call(
                client.register_tenant, tenant.name, tenant.budget
            )
            if code != 200:
                raise RuntimeError(
                    f"tenant {tenant.name!r} registration failed "
                    f"({code}): {payload.get('error')}"
                )
        code, publish_payload = _setup_call(
            client.publish, manifest.spec.to_payload()
        )
        if code != 200:
            raise RuntimeError(
                f"publish failed ({code}): {publish_payload.get('error')}"
            )
        fingerprint = publish_payload["fingerprint"]
        schedule = build_schedule(manifest)
        by_tenant: Dict[str, List[ScheduledQuery]] = {
            t.name: [] for t in manifest.tenants
        }
        for item in schedule:
            by_tenant[item.tenant].append(item)
        obs.on_run_start(f"replay/{manifest.name}", len(by_tenant), 0)
        # Deterministic per-query idempotency keys: the same manifest
        # always re-presents the same key for the same slot, so a
        # replay resumed across a server crash stays exactly-once.
        key_prefix = f"{manifest.name}:{manifest.seed}"
        slots = threading.Semaphore(manifest.issue_slots)
        records: Dict[int, Dict[str, Any]] = {}
        latencies: Dict[int, float] = {}
        failures: List[FailedRecord] = []
        lock = threading.Lock()
        started_wall = time.perf_counter()
        started_monotonic = time.monotonic()
        workers = []
        for seed, (tenant_name, items) in enumerate(
            sorted(by_tenant.items())
        ):
            obs.on_dispatch(f"replay/{manifest.name}", [seed])
            worker = threading.Thread(
                target=_tenant_worker,
                args=(
                    tenant_name, items, client, fingerprint, slots,
                    started_monotonic, scale, retries, backoff_seconds,
                    key_prefix, records, latencies, failures, lock,
                ),
                name=f"replay-{manifest.name}-{tenant_name}",
                daemon=True,
            )
            workers.append((seed, tenant_name, worker))
            worker.start()
        for seed, tenant_name, worker in workers:
            worker.join()
            obs.on_seed_done(
                f"replay/{manifest.name}", seed,
                {"tenant": tenant_name},
            )
        elapsed = time.perf_counter() - started_wall
        obs.on_run_end(f"replay/{manifest.name}")
        try:
            server_stats = client.stats()
        except _TRANSPORT_ERRORS:
            server_stats = {}
        ordered = [records[i] for i in sorted(records)]
        latency_array = np.asarray(
            [latencies[i] for i in sorted(latencies)], dtype=np.float64
        )
        return ReplayResult(
            manifest=manifest,
            fingerprint=fingerprint,
            records=ordered,
            latencies=latency_array,
            elapsed_seconds=elapsed,
            publish=publish_payload,
            failures=failures,
            server_stats=server_stats,
        )
    finally:
        if owned_server is not None:
            owned_server.shutdown()
            owned_server.server_close()


# ---------------------------------------------------------------------------
# Metrics / history ingestion
# ---------------------------------------------------------------------------

def record_replay_metrics(
    result: ReplayResult,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Land a replay's throughput/latency in a metrics registry.

    The gauge names (``repro_replay_latency_p50_seconds`` /
    ``…_p99_seconds`` / ``repro_replay_throughput_qps``) are what the
    run-history store ingests and the trend dashboard's serving section
    renders — serving perf becomes a radar-tracked trajectory exactly
    like bench timings.
    """
    if registry is None:
        from repro.obs.metrics import get_registry

        registry = get_registry()
    label = result.manifest.name
    queries = registry.counter(
        "repro_replay_queries_total",
        "replayed queries by manifest and outcome",
        labelnames=("manifest", "status"),
    )
    for status, count in sorted(result.status_counts().items()):
        queries.labels(manifest=label, status=status).inc(count)
    latency = registry.histogram(
        "repro_replay_request_seconds",
        "client-observed per-query latency during replay",
        labelnames=("manifest",),
        buckets=REPLAY_BUCKETS,
    )
    child = latency.labels(manifest=label)
    for value in result.latencies:
        child.observe(float(value))
    for name, help_text, value in (
        ("repro_replay_latency_p50_seconds",
         "median replay latency", result.p50_seconds),
        ("repro_replay_latency_p99_seconds",
         "tail (p99) replay latency", result.p99_seconds),
        ("repro_replay_throughput_qps",
         "replay throughput in queries per second",
         result.throughput_qps),
        ("repro_replay_elapsed_seconds",
         "replay wall-clock runtime", result.elapsed_seconds),
    ):
        gauge = registry.gauge(name, help_text, labelnames=("manifest",))
        if not (isinstance(value, float) and np.isnan(value)):
            gauge.labels(manifest=label).set(float(value))
    # Serving resilience counters, scraped from the target server's
    # final /v1/stats: the run-history store ingests these gauges so
    # the trend dashboard's operations section can track sheds /
    # degraded answers / restart recoveries per replay run.
    resilience = result.server_stats.get("resilience") or {}
    for name, help_text, totals in (
        ("repro_serve_shed_total",
         "requests shed under overload or drain during this replay",
         resilience.get("shed")),
        ("repro_serve_degraded_total",
         "queries answered from a stale fallback artifact",
         resilience.get("degraded")),
        ("repro_serve_recovered_total",
         "state recovered from disk by the server at startup",
         resilience.get("recovered")),
    ):
        if not isinstance(totals, dict) or not totals:
            continue
        gauge = registry.gauge(
            name, help_text, labelnames=("manifest", "key")
        )
        for key, value in sorted(totals.items()):
            gauge.labels(manifest=label, key=str(key)).set(float(value))
    # SLO burn rates, scraped from the same final /v1/stats snapshot:
    # the history store ingests these and the dashboard's serving-SLO
    # section badges them with the drift-radar thresholds.
    slo = result.server_stats.get("slo") or {}
    objectives = slo.get("objectives")
    if isinstance(objectives, dict) and objectives:
        burn = registry.gauge(
            "repro_serve_slo_burn_rate",
            "SLO burn rate per objective at the end of this replay",
            labelnames=("manifest", "objective"),
        )
        bad = registry.gauge(
            "repro_serve_slo_bad_fraction",
            "fraction of windowed requests violating each objective",
            labelnames=("manifest", "objective"),
        )
        for objective, values in sorted(objectives.items()):
            if not isinstance(values, dict):
                continue
            burn.labels(manifest=label, objective=objective).set(
                float(values.get("burn_rate", 0.0))
            )
            bad.labels(manifest=label, objective=objective).set(
                float(values.get("bad_fraction", 0.0))
            )
    return registry
