"""Size-bounded LRU cache of published artifacts, keyed by fingerprint.

Publishing is seconds-scale for the structure publishers while a cache
hit is microseconds, so the cache is the difference between a service
that can absorb millions of queries and one that re-runs dynamic
programs per request.  Two properties matter beyond plain LRU:

* **Single-flight publishing.**  When N handler threads miss on the
  same fingerprint simultaneously, exactly one runs the publisher; the
  rest block on a per-key :class:`threading.Event` and receive the same
  artifact object.  Without this, a cold-start stampede multiplies the
  most expensive operation in the system by the thread count.
* **Bounded memory.**  ``max_entries`` bounds the artifact count and
  ``max_bytes`` (optional) the resident array bytes; eviction is
  strictly least-recently-*used* (reads refresh recency).  Evicted
  artifacts stay valid for requests already holding a reference —
  artifacts are immutable, so there is nothing to tear.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.serve.artifacts import PublishedArtifact, publish_artifact
from repro.serve.spec import ServeSpec

__all__ = ["ArtifactCache", "CacheStats"]


class CacheStats:
    """Monotonic cache counters (snapshot via :meth:`ArtifactCache.stats`)."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class _InFlight:
    """One pending publish: an event plus its eventual outcome."""

    __slots__ = ("event", "artifact", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.artifact: Optional[PublishedArtifact] = None
        self.error: Optional[BaseException] = None


class ArtifactCache:
    """Thread-safe LRU of :class:`PublishedArtifact` by fingerprint."""

    def __init__(
        self,
        max_entries: int = 8,
        max_bytes: Optional[int] = None,
        publish: Callable[[ServeSpec], PublishedArtifact] = publish_artifact,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = int(max_entries)
        self.max_bytes = max_bytes
        self._publish = publish
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, PublishedArtifact]" = OrderedDict()
        #: Monotonic insert time per resident fingerprint (entry age).
        self._inserted: Dict[str, float] = {}
        self._inflight: Dict[str, _InFlight] = {}
        self._bytes = 0
        self._stats = CacheStats()

    # -- internal (lock held) ------------------------------------------
    def _evict_over_bounds(self) -> int:
        evicted = 0
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None
            and self._bytes > self.max_bytes
            and len(self._entries) > 1
        ):
            fp, artifact = self._entries.popitem(last=False)
            self._inserted.pop(fp, None)
            self._bytes -= artifact.nbytes
            evicted += 1
        self._stats.evictions += evicted
        return evicted

    def _put_locked(self, artifact: PublishedArtifact) -> int:
        fp = artifact.fingerprint
        if fp in self._entries:
            self._entries.move_to_end(fp)
            return 0
        self._entries[fp] = artifact
        self._inserted[fp] = time.monotonic()
        self._bytes += artifact.nbytes
        return self._evict_over_bounds()

    # -- public --------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[PublishedArtifact]:
        """The cached artifact (refreshing recency), or ``None``.

        A miss here does *not* publish — only :meth:`get_or_publish`
        knows how to rebuild an artifact from its spec.
        """
        with self._lock:
            artifact = self._entries.get(fingerprint)
            if artifact is None:
                self._stats.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self._stats.hits += 1
            return artifact

    def get_or_publish(
        self,
        spec: ServeSpec,
        fingerprint: Optional[str] = None,
        before_publish: Optional[Callable[[], Callable[[], None]]] = None,
    ) -> Tuple[PublishedArtifact, bool, int]:
        """The artifact for ``spec``, publishing at most once per key.

        Returns ``(artifact, was_hit, evicted_count)``.  Concurrent
        callers that miss on the same fingerprint all block on the one
        in-flight publish; a failed publish propagates its exception to
        every waiter and leaves the cache unchanged.

        ``before_publish`` runs only in the one caller that is about to
        execute a cold publish — after it has won the per-key in-flight
        slot, so the decision cannot race a concurrent eviction or a
        failing publish — and returns a zero-arg release callable
        invoked once the publish finishes.  Raising from it (e.g. an
        admission gate shedding under load) aborts the publish and
        propagates to every waiter exactly like a failed publish.
        """
        fp = fingerprint if fingerprint is not None else spec.fingerprint()
        while True:
            with self._lock:
                artifact = self._entries.get(fp)
                if artifact is not None:
                    self._entries.move_to_end(fp)
                    self._stats.hits += 1
                    return artifact, True, 0
                pending = self._inflight.get(fp)
                if pending is None:
                    pending = _InFlight()
                    self._inflight[fp] = pending
                    owner = True
                else:
                    owner = False
            if not owner:
                pending.event.wait()
                if pending.error is not None:
                    raise pending.error
                # The publish succeeded but the artifact may already be
                # evicted; loop so the waiter republishes if needed.
                if pending.artifact is not None:
                    return pending.artifact, True, 0
                continue
            try:
                release = (
                    before_publish() if before_publish is not None
                    else None
                )
                try:
                    artifact = self._publish(spec)
                finally:
                    if release is not None:
                        release()
            except BaseException as exc:
                with self._lock:
                    self._inflight.pop(fp, None)
                pending.error = exc
                pending.event.set()
                raise
            with self._lock:
                self._stats.misses += 1
                evicted = self._put_locked(artifact)
                self._inflight.pop(fp, None)
            pending.artifact = artifact
            pending.event.set()
            return artifact, False, evicted

    def put(self, artifact: PublishedArtifact) -> int:
        """Insert a pre-built artifact; returns the eviction count."""
        with self._lock:
            return self._put_locked(artifact)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def fingerprints(self) -> Tuple[str, ...]:
        """Cached keys, least- to most-recently used."""
        with self._lock:
            return tuple(self._entries)

    def inflight(self, fingerprint: str) -> bool:
        """True when a publish for this key is already running."""
        with self._lock:
            return fingerprint in self._inflight

    def artifacts(self) -> Tuple[PublishedArtifact, ...]:
        """Resident artifacts, least- to most-recently used.

        The degraded-mode fallback scans this (MRU end first) for a
        stale-but-valid artifact compatible with a shed request;
        artifacts are immutable so the snapshot is safe to use outside
        the lock.
        """
        with self._lock:
            return tuple(self._entries.values())

    def entries(self) -> List[Dict[str, Any]]:
        """Per-entry introspection, least- to most-recently used.

        Each row carries the fingerprint, resident bytes, and the
        entry's age in seconds (since first insert; a re-insert keeps
        the original age).  Feeds ``/v1/stats`` and ``/v1/debug``.
        """
        now = time.monotonic()
        with self._lock:
            return [
                {
                    "fingerprint": fp,
                    "bytes": artifact.nbytes,
                    "n_bins": artifact.n_bins,
                    "age_seconds": now - self._inserted.get(fp, now),
                }
                for fp, artifact in self._entries.items()
            ]

    def stats(self) -> Dict[str, int]:
        """Counters + occupancy snapshot (stable key set for /v1/stats)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes if self.max_bytes else 0,
                "hits": self._stats.hits,
                "misses": self._stats.misses,
                "evictions": self._stats.evictions,
            }
