"""Kill-and-restart chaos drill for the serving wing.

``repro replay --chaos`` proves the crash-safety tentpole end to end:
it starts a *real* server subprocess with a fault plan that SIGKILLs
the process (``os._exit``) at the crash-critical instruction
boundaries — before the ledger journal append, after the append but
before the reply, and mid-artifact-spill — plus a short delayed-handler
fault, then drives a deterministic replay through a babysitter that
restarts the server every time it dies.  The fault plan's on-disk hit
slots make every kill fire exactly once across restarts, so the drill
is reproducible.

After the trace completes the drill asserts the invariants the WAL
design promises:

* **no overdraft** — every tenant's journaled ε total is within budget;
* **no double-spend** — the live server's spent totals exactly equal an
  independent replay of the ledger file (idempotent retries were
  answered for free, not re-charged);
* **byte-identical artifacts** — the spilled artifact's counts equal a
  fresh publish of the same spec, byte for byte;
* **deterministic transcript** — every request that survived (ok or
  exhausted) matches the corresponding record of an uninterrupted
  baseline replay bit for bit.

The report (and the chaos transcript) are written into the state dir so
CI can upload them as artifacts.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.robust import faults
from repro.robust.atomicio import atomic_write_text
from repro.serve.artifacts import publish_artifact
from repro.serve.client import ServeClient
from repro.serve.ledgerlog import LedgerLog
from repro.serve.replay import ReplayManifest, ReplayResult, run_replay
from repro.serve.store import ArtifactStore

__all__ = ["ChaosReport", "default_chaos_rules", "run_chaos_replay"]

#: The instruction boundaries the drill kills at, in trace order.
KILL_SITES = (
    "serve.before_spill",      # mid-publish, before the artifact spill
    "serve.before_journal",    # after the atomic spend, before the WAL
    "serve.after_journal",     # after the WAL, before the reply
)

#: Numerical slack for comparing ε sums accumulated in different orders.
EPS_SLACK = 1e-9


def default_chaos_rules(hang_seconds: float = 0.1) -> List[faults.FaultRule]:
    """One exactly-once kill per crash site + a brief handler delay."""
    rules = [
        faults.FaultRule(action="kill", site=site, times=1)
        for site in KILL_SITES
    ]
    rules.append(faults.FaultRule(
        action="hang", site="serve.handler", times=2,
        hang_seconds=hang_seconds,
    ))
    return rules


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@dataclass
class ChaosReport:
    """What the drill observed and whether the invariants held."""

    manifest: str
    state_dir: str
    restarts: int = 0
    fault_hits: int = 0
    checks: Dict[str, bool] = field(default_factory=dict)
    details: List[str] = field(default_factory=list)
    chaos_transcript_sha: str = ""
    baseline_transcript_sha: str = ""
    surviving: int = 0
    lost: int = 0
    spent_by_tenant: Dict[str, float] = field(default_factory=dict)
    #: Valid access-log lines the chaos server wrote across all its
    #: incarnations (informational — the log shares the state dir).
    access_log_lines: int = 0

    @property
    def ok(self) -> bool:
        return bool(self.checks) and all(self.checks.values())

    def to_payload(self) -> Dict[str, Any]:
        return {
            "manifest": self.manifest,
            "state_dir": self.state_dir,
            "ok": self.ok,
            "restarts": self.restarts,
            "fault_hits": self.fault_hits,
            "checks": dict(self.checks),
            "details": list(self.details),
            "chaos_transcript_sha": self.chaos_transcript_sha,
            "baseline_transcript_sha": self.baseline_transcript_sha,
            "surviving": self.surviving,
            "lost": self.lost,
            "spent_by_tenant": dict(self.spent_by_tenant),
            "access_log_lines": self.access_log_lines,
        }

    def summary_lines(self) -> List[str]:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"chaos replay {self.manifest}: {verdict} "
            f"({self.restarts} restart(s), {self.fault_hits} fault "
            f"firing(s), {self.surviving} surviving / {self.lost} lost "
            f"request(s))",
        ]
        for name in sorted(self.checks):
            mark = "ok" if self.checks[name] else "FAIL"
            lines.append(f"  [{mark}] {name}")
        for detail in self.details:
            lines.append(f"  - {detail}")
        return lines


class _Babysitter:
    """Restart the server subprocess every time a fault kills it."""

    def __init__(self, spawn, max_restarts: int = 8) -> None:
        self._spawn = spawn
        self.max_restarts = max_restarts
        self.restarts = 0
        self.process: subprocess.Popen = spawn()
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._watch, name="chaos-babysitter", daemon=True
        )
        self._thread.start()

    def _watch(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                process = self.process
            if process.poll() is not None and not self._stop.is_set():
                if self.restarts >= self.max_restarts:
                    return
                with self._lock:
                    self.restarts += 1
                    self.process = self._spawn()
            time.sleep(0.05)

    def stop(self) -> subprocess.Popen:
        """Stop restarting; returns the (possibly dead) current process."""
        self._stop.set()
        self._thread.join(timeout=5.0)
        with self._lock:
            return self.process


def _compare_transcripts(
    chaos: ReplayResult, baseline: ReplayResult
) -> Tuple[bool, int, int, List[str]]:
    """Surviving chaos records must be bit-identical to the baseline."""
    baseline_by_index = {r["index"]: r for r in baseline.records}
    surviving = 0
    lost = 0
    problems: List[str] = []
    fields = ("tenant", "phase", "kind", "lo", "hi", "status", "value")
    for record in chaos.records:
        if record["status"] not in ("ok", "exhausted"):
            lost += 1
            continue
        surviving += 1
        expected = baseline_by_index.get(record["index"])
        if expected is None:
            problems.append(f"index {record['index']}: not in baseline")
            continue
        for name in fields:
            if record.get(name) != expected.get(name):
                problems.append(
                    f"index {record['index']}: {name} "
                    f"{record.get(name)!r} != baseline "
                    f"{expected.get(name)!r}"
                )
                break
    return not problems, surviving, lost, problems


def run_chaos_replay(
    manifest: ReplayManifest,
    state_dir: Union[str, Path],
    *,
    rules: Optional[List[faults.FaultRule]] = None,
    tenant_budget: float = 100.0,
    retries: int = 8,
    backoff_seconds: float = 0.25,
    max_restarts: int = 8,
    startup_deadline: float = 30.0,
    python: Optional[str] = None,
) -> ChaosReport:
    """Run the kill-mid-replay drill; see the module docstring.

    The server runs as ``python -m repro serve --state-dir …`` in a
    subprocess with the fault plan activated through the environment;
    this process itself must stay fault-free (the baseline replay is
    executed in-process with the plan variable stripped).
    """
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    plan_path = faults.write_plan(
        state_dir / "faultplan.json",
        rules if rules is not None else default_chaos_rules(),
    )
    plan = faults.load_plan(plan_path)
    port = _free_port()
    report = ChaosReport(manifest=manifest.name, state_dir=str(state_dir))

    # -- baseline: uninterrupted, fault-free, fresh state --------------
    saved_plan = os.environ.pop(faults.ENV_VAR, None)
    try:
        baseline = run_replay(
            manifest, time_scale=0.0,
            default_tenant_budget=tenant_budget,
        )
    finally:
        if saved_plan is not None:
            os.environ[faults.ENV_VAR] = saved_plan
    report.baseline_transcript_sha = baseline.transcript_sha()

    # -- the chaos run -------------------------------------------------
    env = dict(os.environ)
    env[faults.ENV_VAR] = str(plan_path)
    command = [
        python or sys.executable, "-m", "repro", "serve",
        "--host", "127.0.0.1", "--port", str(port),
        "--state-dir", str(state_dir),
        "--tenant-budget", str(tenant_budget),
    ]

    def _spawn() -> subprocess.Popen:
        return subprocess.Popen(
            command, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )

    base_url = f"http://127.0.0.1:{port}"
    sitter = _Babysitter(_spawn, max_restarts=max_restarts)
    try:
        ServeClient(base_url).wait_ready(deadline_seconds=startup_deadline)
        chaos = run_replay(
            manifest, base_url=base_url, time_scale=0.0,
            retries=retries, backoff_seconds=backoff_seconds,
        )
        # Authoritative final scrape (run_replay's own scrape can race
        # a just-restarted server; this one waits for readiness).
        final_stats = chaos.server_stats
        try:
            probe = ServeClient(base_url, timeout=10.0)
            probe.wait_ready(deadline_seconds=10.0)
            final_stats = probe.stats()
        except (OSError, TimeoutError):
            pass
    finally:
        process = sitter.stop()
        try:
            ServeClient(base_url, timeout=5.0).shutdown()
        except OSError:
            pass
        try:
            process.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10.0)
    report.restarts = sitter.restarts
    report.fault_hits = faults.total_hits(plan)
    report.chaos_transcript_sha = chaos.transcript_sha()

    # -- invariants ----------------------------------------------------
    budgets = {
        t.name: (tenant_budget if t.budget is None else float(t.budget))
        for t in manifest.tenants
    }
    ledger_replay = LedgerLog(state_dir / "ledger.jsonl").replay()
    spent = ledger_replay.spent_by_tenant()
    report.spent_by_tenant = dict(spent)

    over = {
        name: total for name, total in spent.items()
        if total > budgets.get(name, tenant_budget) + EPS_SLACK
    }
    report.checks["no_overdraft"] = not over
    for name, total in sorted(over.items()):
        report.details.append(
            f"tenant {name}: journaled {total:g} > budget "
            f"{budgets.get(name, tenant_budget):g}"
        )

    server_tenants = (final_stats or {}).get("tenants") or {}
    matches = bool(server_tenants)
    for name, total in spent.items():
        live = server_tenants.get(name, {}).get("spent")
        if live is None or abs(float(live) - total) > 1e-6:
            matches = False
            report.details.append(
                f"tenant {name}: server spent {live!r} != ledger "
                f"replay {total:g}"
            )
    report.checks["spent_matches_ledger"] = matches

    store = ArtifactStore(state_dir / "artifacts")
    stored = store.load(chaos.fingerprint)
    fresh = publish_artifact(manifest.spec)
    identical = (
        stored is not None
        and stored.counts.tobytes() == fresh.counts.tobytes()
    )
    report.checks["artifact_byte_identical"] = identical
    if stored is None:
        report.details.append(
            f"artifact {chaos.fingerprint[:16]}… missing from store"
        )
    elif not identical:
        report.details.append(
            f"artifact {chaos.fingerprint[:16]}… differs from a fresh "
            "publish"
        )

    same, surviving, lost, problems = _compare_transcripts(chaos, baseline)
    report.checks["transcript_deterministic"] = same
    report.surviving = surviving
    report.lost = lost
    report.details.extend(problems[:10])

    report.checks["faults_fired"] = report.fault_hits >= len(
        [r for r in (rules or default_chaos_rules()) if r.action == "kill"]
    )
    report.checks["no_server_5xx"] = not any(
        r["code"] >= 500 and r["code"] != 503 for r in chaos.records
    )

    # Informational: the chaos server writes its access log into the
    # shared state dir; count the lines that validate against the
    # schema (restarts append to the same file).
    access_log = state_dir / "access.log"
    if access_log.exists():
        from repro.serve.telemetry import validate_access_log_line

        count = 0
        for line in access_log.read_text(
            encoding="utf-8"
        ).splitlines():
            if line.strip() and not validate_access_log_line(line):
                count += 1
        report.access_log_lines = count

    # -- CI artifacts --------------------------------------------------
    atomic_write_text(
        state_dir / "chaos_transcript.json",
        json.dumps(chaos.transcript(), indent=2, sort_keys=True) + "\n",
    )
    atomic_write_text(
        state_dir / "chaos_report.json",
        json.dumps(report.to_payload(), indent=2, sort_keys=True) + "\n",
    )
    return report
