"""The query service's application layer (transport-agnostic).

:class:`QueryService` owns the artifact cache, the tenant ledgers, and
the serve metric families; the HTTP layer (:mod:`repro.serve.server`)
is a thin adapter that decodes JSON, calls one method here, and encodes
the ``(status, payload)`` it gets back.  Keeping the logic off the
socket makes the unit/property tests fast (no ports) while the e2e
suite exercises the real wire path.

Budget semantics
----------------
Each *answered* query debits the querying tenant's ledger by the
artifact's publication ε — deliberately worst-case accounting (no
post-processing discount), which gives every tenant a hard quota of
``floor(budget / ε)`` answers per artifact class and makes exhaustion
deterministic and testable.  A refused query spends nothing.  See
docs/serving.md for the full semantics.

Crash-safety (``state_dir``)
----------------------------
With a ``state_dir`` the service becomes durable: every debit is
journaled to a write-ahead ε-ledger (:mod:`repro.serve.ledgerlog`)
*after* the atomic in-memory spend and *before* the answer is released,
and every cold publish is spilled to an on-disk artifact store
(:mod:`repro.serve.store`).  A restart replays the ledger to the exact
spent totals (idempotency keys — tenant-scoped and bound to a digest
of the request content — make client retries exactly-once) and
rehydrates artifacts byte-identically instead of drawing fresh noise.
The charge ordering gives the two invariants the chaos drill asserts:
the journal can never contain an overdraft (only debits that passed
the atomic budget check are written), and a crash between spend and
journal loses only a debit whose answer was never released.

Overload (``publish_slots``)
----------------------------
Cold publishes are the expensive path; ``publish_slots`` bounds how
many run at once.  A saturated publisher degrades instead of hanging:
queries are answered from a stale-but-compatible cached artifact
(flagged ``degraded`` in the response) when one exists, and shed with
:class:`ShedError` (503 + ``Retry-After``) otherwise — all counted in
the ``repro_serve_shed/degraded/recovered`` metric families.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from repro.accounting.budget import PrivacyBudget
from repro.exceptions import BudgetExceededError
from repro.obs.metrics import MetricsRegistry
from repro.robust import faults
from repro.serve.artifacts import PublishedArtifact
from repro.serve.cache import ArtifactCache
from repro.serve.ledgerlog import LedgerLog, scoped_key
from repro.serve.spec import ServeSpec
from repro.serve.store import ArtifactStore
from repro.serve.telemetry import AccessLog, ServeTelemetry, SLOConfig
from repro.serve.tenants import TenantLedgers

__all__ = ["QueryService", "RequestError", "ShedError"]

#: Latency buckets tuned to serving (sub-millisecond hits through
#: seconds-scale cold publishes).
SERVE_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0
)


class RequestError(Exception):
    """A client error the HTTP layer should map to ``status`` (4xx)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = str(message)


class ShedError(RequestError):
    """Load shed: 503 + ``Retry-After`` — an invitation, not a failure."""

    def __init__(
        self,
        message: str,
        retry_after: float = 1.0,
        reason: str = "overloaded",
    ) -> None:
        super().__init__(503, message)
        self.retry_after = float(retry_after)
        self.reason = str(reason)


def _parse_query(
    item: Any, index: int, n_bins: int
) -> Tuple[str, int, int]:
    """Validate one wire query; returns ``(kind, lo, hi)`` half-open.

    Point queries normalize to the one-bin range ``[bin, bin + 1)``.
    """
    if not isinstance(item, dict):
        raise RequestError(
            400, f"query #{index}: must be an object, got "
                 f"{type(item).__name__}"
        )
    has_bin = "bin" in item
    has_range = "lo" in item or "hi" in item
    if has_bin == has_range:
        raise RequestError(
            400, f"query #{index}: give either 'bin' or 'lo'+'hi'"
        )
    def _as_int(value: Any, field: str) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise RequestError(
                400, f"query #{index}: {field} must be an integer"
            )
        return value
    if has_bin:
        bin_index = _as_int(item["bin"], "bin")
        if not 0 <= bin_index < n_bins:
            raise RequestError(
                400, f"query #{index}: bin {bin_index} outside domain "
                     f"of {n_bins} bins"
            )
        return "point", bin_index, bin_index + 1
    if "lo" not in item or "hi" not in item:
        raise RequestError(
            400, f"query #{index}: range needs both 'lo' and 'hi'"
        )
    lo = _as_int(item["lo"], "lo")
    hi = _as_int(item["hi"], "hi")
    if not 0 <= lo <= hi <= n_bins:
        raise RequestError(
            400, f"query #{index}: range [{lo}, {hi}) outside domain "
                 f"of {n_bins} bins"
        )
    return "range", lo, hi


class QueryService:
    """Publish-once, query-many DP histogram serving logic."""

    def __init__(
        self,
        cache_entries: int = 8,
        cache_bytes: Optional[int] = None,
        default_tenant_budget: float = 100.0,
        registry: Optional[MetricsRegistry] = None,
        state_dir: Optional[Union[str, Path]] = None,
        publish_slots: Optional[int] = None,
        retry_after: float = 1.0,
        slo: Optional[SLOConfig] = None,
        access_log: Optional[Union[str, Path, AccessLog]] = None,
        slow_traces: int = 8,
    ) -> None:
        self.cache = ArtifactCache(
            max_entries=cache_entries, max_bytes=cache_bytes
        )
        self.tenants = TenantLedgers(default_budget=default_tenant_budget)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.started = time.time()
        self.retry_after = float(retry_after)
        self._known_specs: Dict[str, ServeSpec] = {}
        self._specs_lock = threading.Lock()
        #: Tenant-scoped idempotency key → ``{"digest", "value",
        #: "pending"}``.  ``pending`` marks a key reserved by an
        #: in-flight charge; racers wait on :attr:`_keys_cond` instead
        #: of charging the same key twice.
        self._seen_keys: Dict[str, Dict[str, Any]] = {}
        self._journaled_tenants: Set[str] = set()
        self._keys_lock = threading.Lock()
        self._keys_cond = threading.Condition(self._keys_lock)
        self._resilience_lock = threading.Lock()
        self._shed_totals: Dict[str, int] = {}
        self._degraded_totals: Dict[str, int] = {}
        self._recovered_totals: Dict[str, int] = {}
        if publish_slots is not None and publish_slots < 0:
            raise ValueError(
                f"publish_slots must be >= 0, got {publish_slots}"
            )
        self._publish_gate = (
            threading.BoundedSemaphore(publish_slots)
            if publish_slots is not None and publish_slots > 0
            else None
        )
        self._publish_closed = publish_slots == 0
        reg = self.registry
        self._requests = reg.counter(
            "repro_serve_requests_total",
            "HTTP requests handled by the query service",
            labelnames=("endpoint", "code"),
        )
        self._queries = reg.counter(
            "repro_serve_queries_total",
            "individual count queries, by outcome",
            labelnames=("status",),
        )
        self._cache_events = reg.counter(
            "repro_serve_cache_events_total",
            "artifact cache hits / misses / evictions / rehydrations",
            labelnames=("event",),
        )
        self._denials = reg.counter(
            "repro_serve_budget_denials_total",
            "queries refused because a tenant's ε budget was exhausted",
            labelnames=("tenant",),
        )
        self._sheds = reg.counter(
            "repro_serve_shed_total",
            "requests shed under overload or drain, by reason",
            labelnames=("reason",),
        )
        self._degraded = reg.counter(
            "repro_serve_degraded_total",
            "queries answered from a stale fallback artifact, by source",
            labelnames=("source",),
        )
        self._recovered = reg.counter(
            "repro_serve_recovered_total",
            "state recovered from disk at startup, by kind",
            labelnames=("kind",),
        )
        self._request_seconds = reg.histogram(
            "repro_serve_request_seconds",
            "request handling latency by endpoint",
            labelnames=("endpoint",),
            buckets=SERVE_BUCKETS,
        )
        self._publish_seconds = reg.histogram(
            "repro_serve_publish_seconds",
            "cold publisher runtime per artifact",
            buckets=SERVE_BUCKETS,
        )
        self._cache_hit_ratio = reg.gauge(
            "repro_serve_cache_hit_ratio",
            "artifact cache hits / (hits + misses), refreshed at scrape",
        )
        self._admission_inflight = reg.gauge(
            "repro_serve_admission_inflight",
            "requests currently executing (admission snapshot)",
        )
        self._admission_queued = reg.gauge(
            "repro_serve_admission_queued",
            "requests currently waiting for an admission slot",
        )
        self._admission_draining = reg.gauge(
            "repro_serve_admission_draining",
            "1 while the server refuses new admissions (drain)",
        )
        self._admission: Optional["AdmissionController"] = None
        # -- request telemetry (docs/observability.md) -----------------
        self.telemetry = ServeTelemetry(
            registry=reg,
            slo=slo,
            access_log=access_log,
            slow_traces=slow_traces,
        )
        # -- durable state (the crash-safety wing) ---------------------
        self.state_dir: Optional[Path] = None
        self.ledger: Optional[LedgerLog] = None
        self.store: Optional[ArtifactStore] = None
        self.recovery: Dict[str, int] = {}
        if state_dir is not None:
            self.state_dir = Path(state_dir)
            self.state_dir.mkdir(parents=True, exist_ok=True)
            self.ledger = LedgerLog(self.state_dir / "ledger.jsonl")
            self.store = ArtifactStore(self.state_dir / "artifacts")
            self._recover()

    # -- recovery ------------------------------------------------------
    def _note_recovered(self, kind: str, count: int = 1) -> None:
        if count <= 0:
            return
        self._recovered.labels(kind=kind).inc(count)
        with self._resilience_lock:
            self._recovered_totals[kind] = (
                self._recovered_totals.get(kind, 0) + count
            )

    def _recover(self) -> None:
        """Replay the ledger + scan the store into fresh in-memory state.

        Never overdrafts: a journaled debit that no longer fits (the
        journal was produced under a different default budget, say) is
        skipped and counted rather than forced through.
        """
        assert self.ledger is not None and self.store is not None
        report = {
            "tenants": 0, "debits": 0, "artifacts": 0,
            "torn_lines": 0, "duplicate_debits": 0,
            "overdraft_skipped": 0, "quarantined": 0,
        }
        replay = self.ledger.replay()
        report["torn_lines"] = replay.torn_lines
        report["duplicate_debits"] = replay.duplicate_debits
        for name, budget in replay.tenants.items():
            try:
                self.tenants.register(name, budget)
            except ValueError:
                continue
            self._journaled_tenants.add(name)
            report["tenants"] += 1
        for debit in replay.debits:
            accountant = self.tenants.register(debit.tenant)
            self._journaled_tenants.add(debit.tenant)
            try:
                accountant.spend(
                    PrivacyBudget(debit.epsilon),
                    purpose=f"recovered/{debit.purpose or 'debit'}",
                )
            except BudgetExceededError:
                report["overdraft_skipped"] += 1
                continue
            report["debits"] += 1
        with self._keys_lock:
            for skey, debit in replay.keys.items():
                self._seen_keys[skey] = {
                    "digest": debit.digest,
                    "value": debit.value,
                    "pending": False,
                }
        for fingerprint, spec in self.store.specs().items():
            with self._specs_lock:
                self._known_specs.setdefault(fingerprint, spec)
            report["artifacts"] += 1
        report["quarantined"] = self.store.stats()["quarantined"]
        self._note_recovered("tenant", report["tenants"])
        self._note_recovered("debit", report["debits"])
        self._note_recovered("artifact", report["artifacts"])
        self.recovery = report

    # -- bookkeeping ---------------------------------------------------
    def attach_admission(self, admission: Any) -> None:
        """Let gauge refreshes read the live admission snapshot.

        Called by the transport layer; the snapshot's queue depth and
        inflight count become ``repro_serve_admission_*`` gauges so
        overload is visible on ``/metrics`` before the first 503.
        """
        self._admission = admission

    def refresh_gauges(self) -> None:
        """Re-derive scrape-time gauges (hit ratio, admission, SLOs)."""
        cache = self.cache.stats()
        probes = cache["hits"] + cache["misses"]
        self._cache_hit_ratio.set(
            cache["hits"] / probes if probes else 0.0
        )
        if self._admission is not None:
            snap = self._admission.snapshot()
            self._admission_inflight.set(snap["inflight"])
            self._admission_queued.set(snap["queued"])
            self._admission_draining.set(1.0 if snap["draining"] else 0.0)
        self.telemetry.refresh_gauges()

    def observe_request(
        self, endpoint: str, code: int, seconds: float
    ) -> None:
        """Per-request accounting (called by the transport layer)."""
        self._requests.labels(endpoint=endpoint, code=str(code)).inc()
        self._request_seconds.labels(endpoint=endpoint).observe(seconds)

    def note_shed(self, reason: str) -> None:
        """Count one shed request (also called by the admission layer)."""
        self._sheds.labels(reason=reason).inc()
        with self._resilience_lock:
            self._shed_totals[reason] = self._shed_totals.get(reason, 0) + 1

    def _note_degraded(self, source: str) -> None:
        self._degraded.labels(source=source).inc()
        with self._resilience_lock:
            self._degraded_totals[source] = (
                self._degraded_totals.get(source, 0) + 1
            )

    def _journal_tenant(self, name: str) -> None:
        """Durably record a tenant's budget the first time it matters."""
        if self.ledger is None:
            return
        with self._keys_lock:
            if name in self._journaled_tenants:
                return
            self._journaled_tenants.add(name)
        accountant = self.tenants.accountant(name)
        budget = (
            accountant.total.epsilon if accountant is not None
            else self.tenants.default_budget
        )
        self.ledger.append_tenant(name, budget)

    @staticmethod
    def _request_digest(
        tenant: str, fingerprint: str, kind: str, lo: int, hi: int
    ) -> str:
        """Content binding for an idempotency key: what was asked."""
        blob = json.dumps(
            [tenant, fingerprint, kind, lo, hi], separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _reserve_key(
        self, skey: str, digest: str
    ) -> Optional[Dict[str, Any]]:
        """Atomically claim a scoped idempotency key, or resolve it.

        Returns ``None`` when this caller now owns the key and must
        charge-and-journal (ending with :meth:`_finalize_key` on
        success or :meth:`_release_key` on failure), or the settled
        record when the key was already answered with a **matching**
        digest (replay the stored value for free).  A concurrent
        request holding the same key is waited out — the loser of the
        race replays the winner's answer instead of double-charging.
        A settled key whose digest disagrees with this request is a
        content mismatch (different tenant/artifact/bounds riding a
        paid key) and is rejected with 409, never answered.
        """
        with self._keys_cond:
            while True:
                record = self._seen_keys.get(skey)
                if record is None:
                    self._seen_keys[skey] = {
                        "digest": digest, "value": None, "pending": True,
                    }
                    return None
                if record.get("pending"):
                    self._keys_cond.wait(timeout=5.0)
                    continue
                if record.get("digest") != digest:
                    raise RequestError(
                        409,
                        "idempotency key was already used for a "
                        "different request (artifact, bounds, or kind "
                        "changed); retries must resend the original "
                        "request unchanged",
                    )
                return record

    def _finalize_key(self, skey: str, value: float) -> None:
        """Settle a reserved key with its released answer."""
        with self._keys_cond:
            record = self._seen_keys.get(skey)
            if record is not None:
                record["value"] = value
                record["pending"] = False
            self._keys_cond.notify_all()

    def _release_key(self, skey: str) -> None:
        """Drop a reservation whose charge never happened."""
        with self._keys_cond:
            self._seen_keys.pop(skey, None)
            self._keys_cond.notify_all()

    def _charge(
        self,
        tenant: str,
        epsilon: float,
        purpose: str,
        key: Optional[str],
        digest: Optional[str] = None,
        value: Optional[float] = None,
    ) -> float:
        """Atomic spend, then durable journal, then (caller) answer.

        The in-memory check-and-spend runs FIRST, so an overdraft can
        never reach the journal; the journal append runs BEFORE the
        answer is released, so a crash after the append is covered by
        the idempotency key (the retry is answered for free).  The
        caller holds the key's reservation (:meth:`_reserve_key`) and
        settles or releases it depending on how this returns.
        """
        with self.telemetry.stage("serve.ledger_charge"):
            remaining = self.tenants.charge(
                tenant, epsilon, purpose=purpose
            )
        if self.ledger is not None:
            with self.telemetry.stage("serve.journal_fsync"):
                self._journal_tenant(tenant)
                faults.maybe_inject_site(
                    "serve.before_journal", key or purpose
                )
                self.ledger.append_debit(tenant, epsilon, key=key,
                                         purpose=purpose, digest=digest,
                                         value=value)
                faults.maybe_inject_site(
                    "serve.after_journal", key or purpose
                )
        return remaining

    # -- artifact resolution -------------------------------------------
    def _rehydrate(self, fingerprint: str) -> Optional[PublishedArtifact]:
        """Warm-restart path: pull a spilled artifact back into cache."""
        if self.store is None or self.cache.inflight(fingerprint):
            return None
        artifact = self.store.load(fingerprint)
        if artifact is None:
            return None
        evicted = self.cache.put(artifact)
        if evicted:
            # Rehydration can push a resident artifact over the entry
            # or byte bound; those evictions count like any other.
            self._cache_events.labels(event="eviction").inc(evicted)
        self._cache_events.labels(event="rehydrate").inc()
        with self._specs_lock:
            self._known_specs.setdefault(fingerprint, artifact.spec)
        return artifact

    def _resolve_artifact(
        self, payload: Dict[str, Any]
    ) -> Tuple[PublishedArtifact, str]:
        """The artifact a request targets, via fingerprint or inline spec.

        Returns ``(artifact, source)`` with source one of ``hit`` /
        ``store`` / ``publish``.
        """
        fingerprint = payload.get("fingerprint")
        spec_payload = payload.get("spec")
        if fingerprint is None and spec_payload is None:
            raise RequestError(400, "give 'fingerprint' or 'spec'")
        if fingerprint is not None:
            if not isinstance(fingerprint, str):
                raise RequestError(400, "fingerprint must be a string")
            with self.telemetry.stage("serve.cache_lookup"):
                artifact = self.cache.get(fingerprint)
                if artifact is None:
                    artifact = self._rehydrate(fingerprint)
                    source = "store"
                else:
                    self._cache_events.labels(event="hit").inc()
                    source = "hit"
            if artifact is not None:
                return artifact, source
            with self._specs_lock:
                spec = self._known_specs.get(fingerprint)
            if spec is None:
                self._cache_events.labels(event="miss").inc()
                raise RequestError(
                    404, f"unknown fingerprint {fingerprint[:16]}…; "
                         "publish its spec first"
                )
            # Known spec, evicted artifact: republish transparently.
            return self._publish_spec(spec, fingerprint)
        try:
            spec = ServeSpec.from_payload(spec_payload)
        except ValueError as exc:
            raise RequestError(400, f"bad spec: {exc}") from exc
        fp = spec.fingerprint()
        if fp not in self.cache and not self.cache.inflight(fp):
            with self.telemetry.stage("serve.cache_lookup"):
                artifact = self._rehydrate(fp)
            if artifact is not None:
                return artifact, "store"
        return self._publish_spec(spec, None)

    def _acquire_publish_slot(self) -> Callable[[], None]:
        """Claim one cold-publish slot; returns its release callable.

        Invoked by the cache *after* this thread has won the per-key
        single-flight slot — i.e. exactly when a cold publish is about
        to run — so the saturation decision can never race an eviction
        or a failing in-flight publish (the gate cannot be bypassed,
        and ``publish_slots=0`` always sheds cold publishes).  Raises
        :class:`ShedError` when no slot is available; the error
        propagates to every request waiting on that publish.
        """
        if self._publish_closed:
            raise ShedError(
                "publisher saturated; retry later",
                retry_after=self.retry_after,
                reason="publish_saturated",
            )
        if self._publish_gate is None:
            return lambda: None
        if not self._publish_gate.acquire(blocking=False):
            raise ShedError(
                "publisher saturated; retry later",
                retry_after=self.retry_after,
                reason="publish_saturated",
            )
        return self._publish_gate.release

    def _publish_spec(
        self, spec: ServeSpec, fingerprint: Optional[str]
    ) -> Tuple[PublishedArtifact, str]:
        try:
            with self.telemetry.stage("serve.publish"):
                artifact, hit, evicted = self.cache.get_or_publish(
                    spec, fingerprint,
                    before_publish=self._acquire_publish_slot,
                )
        except ShedError as exc:
            # Counted here, once per shed *request* — waiters sharing a
            # shed single-flight publish each pass through this path.
            self.note_shed(exc.reason)
            raise
        self._cache_events.labels(event="hit" if hit else "miss").inc()
        if evicted:
            self._cache_events.labels(event="eviction").inc(evicted)
        if not hit:
            self._publish_seconds.observe(artifact.publish_seconds)
            if self.store is not None:
                self.store.save(artifact)
        with self._specs_lock:
            self._known_specs.setdefault(artifact.fingerprint, spec)
        return artifact, ("hit" if hit else "publish")

    def _degraded_fallback(
        self, payload: Dict[str, Any]
    ) -> Optional[PublishedArtifact]:
        """A stale-but-valid resident artifact compatible with the ask.

        Compatible = same dataset, bin count, and total, so every range
        answer is still a valid DP release over the same domain — just
        possibly from a different (ε, publisher) release than requested.
        """
        spec_payload = payload.get("spec")
        fingerprint = payload.get("fingerprint")
        want: Optional[Tuple[str, int, int]] = None
        if isinstance(spec_payload, dict):
            try:
                spec = ServeSpec.from_payload(spec_payload)
                want = (spec.dataset, spec.n_bins, spec.total)
            except ValueError:
                return None
        elif isinstance(fingerprint, str):
            with self._specs_lock:
                spec = self._known_specs.get(fingerprint)
            if spec is not None:
                want = (spec.dataset, spec.n_bins, spec.total)
        if want is None:
            return None
        for artifact in reversed(self.cache.artifacts()):
            have = (
                artifact.spec.dataset, artifact.spec.n_bins,
                artifact.spec.total,
            )
            if have == want:
                return artifact
        return None

    def _request_fingerprint(
        self, payload: Dict[str, Any], artifact: PublishedArtifact
    ) -> str:
        """The fingerprint the request *asked for* (digest binding).

        Degraded answers may be served from a different artifact, so
        the idempotency digest binds to the requested target — the
        payload's fingerprint or its spec's — which stays stable
        across retries even when resolution degrades differently.
        """
        fingerprint = payload.get("fingerprint")
        if isinstance(fingerprint, str):
            return fingerprint
        spec_payload = payload.get("spec")
        if isinstance(spec_payload, dict):
            try:
                return ServeSpec.from_payload(spec_payload).fingerprint()
            except ValueError:  # pragma: no cover - resolution validated
                pass
        return artifact.fingerprint

    def _resolve_for_query(
        self, payload: Dict[str, Any]
    ) -> Tuple[PublishedArtifact, Optional[Dict[str, Any]]]:
        """Resolve, degrading to a stale artifact instead of shedding."""
        try:
            artifact, _source = self._resolve_artifact(payload)
            return artifact, None
        except ShedError as exc:
            fallback = self._degraded_fallback(payload)
            if fallback is None:
                raise
            self._note_degraded("stale_cache")
            return fallback, {
                "reason": exc.reason,
                "served_fingerprint": fallback.fingerprint,
            }

    # -- endpoints -----------------------------------------------------
    def publish(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/publish``: materialize (or re-touch) an artifact."""
        if not isinstance(payload, dict):
            raise RequestError(400, "body must be a JSON object")
        try:
            spec = ServeSpec.from_payload(payload.get("spec", payload))
        except ValueError as exc:
            raise RequestError(400, f"bad spec: {exc}") from exc
        fp = spec.fingerprint()
        artifact = None
        source = "store"
        if fp not in self.cache and not self.cache.inflight(fp):
            artifact = self._rehydrate(fp)
        if artifact is None:
            artifact, source = self._publish_spec(spec, None)
        return 200, {
            "fingerprint": artifact.fingerprint,
            "cached": source != "publish",
            "source": source,
            "n_bins": artifact.n_bins,
            "epsilon": spec.epsilon,
            "epsilon_spent": artifact.epsilon_spent,
            "publish_seconds": artifact.publish_seconds,
            "spec_name": spec.name,
        }

    def register_tenant(
        self, payload: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/tenants``: pre-register a tenant with a budget."""
        if not isinstance(payload, dict):
            raise RequestError(400, "body must be a JSON object")
        name = payload.get("name")
        budget = payload.get("budget")
        if budget is not None and (
            not isinstance(budget, (int, float))
            or isinstance(budget, bool)
        ):
            raise RequestError(400, "budget must be a number")
        try:
            accountant = self.tenants.register(name, budget)
        except ValueError as exc:
            status = 409 if "already registered" in str(exc) else 400
            raise RequestError(status, str(exc)) from exc
        self._journal_tenant(name)
        return 200, {
            "tenant": name,
            "budget": accountant.total.epsilon,
            "remaining": accountant.remaining.epsilon,
        }

    def query(
        self,
        payload: Dict[str, Any],
        idempotency_key: Optional[str] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/query``: answer a batch of point/range queries.

        Queries are processed strictly in order; each successful answer
        debits the tenant's ledger exactly once — *across retries too*,
        when the request carries an idempotency key (header or payload
        field): per-query keys ``{key}#{index}``, scoped to the tenant,
        that were already journaled are answered for free with
        ``replayed: true`` and the **original** answer.  A key is bound
        to its request content (tenant, requested artifact, query kind
        and bounds): resending a paid key with anything changed is a
        409, never a free fresh answer, and two tenants presenting the
        same key string never collide.  Two concurrent requests racing
        one key charge once — the loser replays the winner's answer.
        The response carries one result per query; the HTTP status is
        200 when every query was answered and 429 when at least one was
        refused for budget.
        """
        if not isinstance(payload, dict):
            raise RequestError(400, "body must be a JSON object")
        tenant = payload.get("tenant")
        if not isinstance(tenant, str) or not tenant.strip():
            raise RequestError(400, "tenant must be a non-empty string")
        self.telemetry.annotate(tenant=tenant)
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise RequestError(400, "queries must be a non-empty list")
        base_key = idempotency_key
        if base_key is None:
            raw = payload.get("idempotency_key")
            if raw is not None and not isinstance(raw, str):
                raise RequestError(400, "idempotency_key must be a string")
            base_key = raw
        artifact, degraded = self._resolve_for_query(payload)
        epsilon = artifact.spec.epsilon
        requested_fp = self._request_fingerprint(payload, artifact)
        parsed = [
            _parse_query(item, i, artifact.n_bins)
            for i, item in enumerate(queries)
        ]
        results: List[Dict[str, Any]] = []
        refused = 0
        for index, (kind, lo, hi) in enumerate(parsed):
            key = f"{base_key}#{index}" if base_key else None
            with self.telemetry.stage("serve.answer"):
                value = artifact.range(lo, hi)
            skey = digest = None
            if key is not None:
                skey = scoped_key(tenant, key)
                digest = self._request_digest(
                    tenant, requested_fp, kind, lo, hi
                )
                record = self._reserve_key(skey, digest)
                if record is not None:
                    # Journaled-and-answered (digest verified): the
                    # retry is free and gets the original answer.
                    stored = record.get("value")
                    self.telemetry.annotate(replayed=True)
                    self._queries.labels(status="replayed").inc()
                    results.append({
                        "index": index,
                        "status": "ok",
                        "kind": kind,
                        "value": value if stored is None else stored,
                        "replayed": True,
                    })
                    continue
            try:
                remaining = self._charge(
                    tenant, epsilon,
                    purpose=f"query/{artifact.fingerprint[:12]}",
                    key=key, digest=digest, value=value,
                )
            except BudgetExceededError:
                if skey is not None:
                    self._release_key(skey)
                refused += 1
                self._queries.labels(status="exhausted").inc()
                self._denials.labels(tenant=tenant).inc()
                results.append({
                    "index": index,
                    "status": "exhausted",
                    "error": "tenant budget exhausted",
                })
                continue
            except ValueError as exc:
                if skey is not None:
                    self._release_key(skey)
                raise RequestError(400, str(exc)) from exc
            except BaseException:
                # Journal I/O error or injected fault: the answer is
                # not released, so the key must not look settled.
                if skey is not None:
                    self._release_key(skey)
                raise
            if skey is not None:
                self._finalize_key(skey, value)
            self._queries.labels(status="ok").inc()
            results.append({
                "index": index,
                "status": "ok",
                "kind": kind,
                "value": value,
                "remaining": remaining,
            })
        status = 429 if refused else 200
        response: Dict[str, Any] = {
            "fingerprint": artifact.fingerprint,
            "tenant": tenant,
            "epsilon_per_query": epsilon,
            "answered": len(parsed) - refused,
            "refused": refused,
            "results": results,
        }
        if degraded is not None:
            self.telemetry.annotate(degraded=True)
            response["degraded"] = True
            response["degraded_reason"] = degraded["reason"]
            response["served_fingerprint"] = degraded["served_fingerprint"]
        return status, response

    def resilience(self) -> Dict[str, Any]:
        """Durability/overload counters for ``/v1/stats`` and drills."""
        with self._resilience_lock:
            sheds = dict(self._shed_totals)
            degraded = dict(self._degraded_totals)
            recovered = dict(self._recovered_totals)
        with self._keys_lock:
            seen_keys = len(self._seen_keys)
        return {
            "state_dir": str(self.state_dir) if self.state_dir else None,
            "recovery": dict(self.recovery),
            "seen_keys": seen_keys,
            "ledger_appends": self.ledger.appends if self.ledger else 0,
            "store": self.store.stats() if self.store else {},
            "shed": sheds,
            "degraded": degraded,
            "recovered": recovered,
        }

    def stats(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /v1/stats``: cache occupancy, tenants, uptime, SLOs."""
        self.refresh_gauges()
        return 200, {
            "uptime_seconds": time.time() - self.started,
            "cache": self.cache.stats(),
            "cache_entries": self.cache.entries(),
            "tenants": self.tenants.snapshot(),
            "known_specs": len(self._known_specs),
            "resilience": self.resilience(),
            "slo": self.telemetry.slo.snapshot(),
        }

    def debug(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /v1/debug``: deep introspection for incident triage.

        Admission snapshot, per-entry cache state with event tallies,
        idempotency-key count, the startup recovery report, the SLO
        window, and the slowest recent request traces (populated only
        while tracing is enabled — enable with ``--trace`` or the
        ``REPRO_TRACE`` environment variable).
        """
        from repro.obs import trace

        with self._keys_lock:
            seen_keys = len(self._seen_keys)
        access_log = self.telemetry.access_log
        return 200, {
            "admission": (
                self._admission.snapshot()
                if self._admission is not None else None
            ),
            "cache": {
                "stats": self.cache.stats(),
                "entries": self.cache.entries(),
            },
            "seen_keys": seen_keys,
            "recovery": dict(self.recovery),
            "slo": self.telemetry.slo.snapshot(),
            "trace_enabled": trace.enabled(),
            "slowest_requests": self.telemetry.slowest(),
            "access_log": (
                access_log.info() if access_log is not None else None
            ),
        }

    def health(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /healthz``."""
        return 200, {"status": "ok"}

    def metrics_text(self) -> str:
        """``GET /metrics``: Prometheus exposition of the registry."""
        self.refresh_gauges()
        return self.registry.render_prometheus()
