"""The query service's application layer (transport-agnostic).

:class:`QueryService` owns the artifact cache, the tenant ledgers, and
the serve metric families; the HTTP layer (:mod:`repro.serve.server`)
is a thin adapter that decodes JSON, calls one method here, and encodes
the ``(status, payload)`` it gets back.  Keeping the logic off the
socket makes the unit/property tests fast (no ports) while the e2e
suite exercises the real wire path.

Budget semantics
----------------
Each *answered* query debits the querying tenant's ledger by the
artifact's publication ε — deliberately worst-case accounting (no
post-processing discount), which gives every tenant a hard quota of
``floor(budget / ε)`` answers per artifact class and makes exhaustion
deterministic and testable.  A refused query spends nothing.  See
docs/serving.md for the full semantics.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import BudgetExceededError
from repro.obs.metrics import MetricsRegistry
from repro.serve.artifacts import PublishedArtifact
from repro.serve.cache import ArtifactCache
from repro.serve.spec import ServeSpec
from repro.serve.tenants import TenantLedgers

__all__ = ["QueryService", "RequestError"]

#: Latency buckets tuned to serving (sub-millisecond hits through
#: seconds-scale cold publishes).
SERVE_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0
)


class RequestError(Exception):
    """A client error the HTTP layer should map to ``status`` (4xx)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = str(message)


def _parse_query(
    item: Any, index: int, n_bins: int
) -> Tuple[str, int, int]:
    """Validate one wire query; returns ``(kind, lo, hi)`` half-open.

    Point queries normalize to the one-bin range ``[bin, bin + 1)``.
    """
    if not isinstance(item, dict):
        raise RequestError(
            400, f"query #{index}: must be an object, got "
                 f"{type(item).__name__}"
        )
    has_bin = "bin" in item
    has_range = "lo" in item or "hi" in item
    if has_bin == has_range:
        raise RequestError(
            400, f"query #{index}: give either 'bin' or 'lo'+'hi'"
        )
    def _as_int(value: Any, field: str) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise RequestError(
                400, f"query #{index}: {field} must be an integer"
            )
        return value
    if has_bin:
        bin_index = _as_int(item["bin"], "bin")
        if not 0 <= bin_index < n_bins:
            raise RequestError(
                400, f"query #{index}: bin {bin_index} outside domain "
                     f"of {n_bins} bins"
            )
        return "point", bin_index, bin_index + 1
    if "lo" not in item or "hi" not in item:
        raise RequestError(
            400, f"query #{index}: range needs both 'lo' and 'hi'"
        )
    lo = _as_int(item["lo"], "lo")
    hi = _as_int(item["hi"], "hi")
    if not 0 <= lo <= hi <= n_bins:
        raise RequestError(
            400, f"query #{index}: range [{lo}, {hi}) outside domain "
                 f"of {n_bins} bins"
        )
    return "range", lo, hi


class QueryService:
    """Publish-once, query-many DP histogram serving logic."""

    def __init__(
        self,
        cache_entries: int = 8,
        cache_bytes: Optional[int] = None,
        default_tenant_budget: float = 100.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.cache = ArtifactCache(
            max_entries=cache_entries, max_bytes=cache_bytes
        )
        self.tenants = TenantLedgers(default_budget=default_tenant_budget)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.started = time.time()
        self._known_specs: Dict[str, ServeSpec] = {}
        self._specs_lock = threading.Lock()
        reg = self.registry
        self._requests = reg.counter(
            "repro_serve_requests_total",
            "HTTP requests handled by the query service",
            labelnames=("endpoint", "code"),
        )
        self._queries = reg.counter(
            "repro_serve_queries_total",
            "individual count queries, by outcome",
            labelnames=("status",),
        )
        self._cache_events = reg.counter(
            "repro_serve_cache_events_total",
            "artifact cache hits / misses / evictions",
            labelnames=("event",),
        )
        self._denials = reg.counter(
            "repro_serve_budget_denials_total",
            "queries refused because a tenant's ε budget was exhausted",
            labelnames=("tenant",),
        )
        self._request_seconds = reg.histogram(
            "repro_serve_request_seconds",
            "request handling latency by endpoint",
            labelnames=("endpoint",),
            buckets=SERVE_BUCKETS,
        )
        self._publish_seconds = reg.histogram(
            "repro_serve_publish_seconds",
            "cold publisher runtime per artifact",
            buckets=SERVE_BUCKETS,
        )

    # -- bookkeeping ---------------------------------------------------
    def observe_request(
        self, endpoint: str, code: int, seconds: float
    ) -> None:
        """Per-request accounting (called by the transport layer)."""
        self._requests.labels(endpoint=endpoint, code=str(code)).inc()
        self._request_seconds.labels(endpoint=endpoint).observe(seconds)

    def _resolve_artifact(
        self, payload: Dict[str, Any]
    ) -> Tuple[PublishedArtifact, bool]:
        """The artifact a request targets, via fingerprint or inline spec."""
        fingerprint = payload.get("fingerprint")
        spec_payload = payload.get("spec")
        if fingerprint is None and spec_payload is None:
            raise RequestError(400, "give 'fingerprint' or 'spec'")
        if fingerprint is not None:
            if not isinstance(fingerprint, str):
                raise RequestError(400, "fingerprint must be a string")
            artifact = self.cache.get(fingerprint)
            if artifact is not None:
                self._cache_events.labels(event="hit").inc()
                return artifact, True
            with self._specs_lock:
                spec = self._known_specs.get(fingerprint)
            if spec is None:
                self._cache_events.labels(event="miss").inc()
                raise RequestError(
                    404, f"unknown fingerprint {fingerprint[:16]}…; "
                         "publish its spec first"
                )
            # Known spec, evicted artifact: republish transparently.
            return self._publish_spec(spec, fingerprint)
        try:
            spec = ServeSpec.from_payload(spec_payload)
        except ValueError as exc:
            raise RequestError(400, f"bad spec: {exc}") from exc
        return self._publish_spec(spec, None)

    def _publish_spec(
        self, spec: ServeSpec, fingerprint: Optional[str]
    ) -> Tuple[PublishedArtifact, bool]:
        artifact, hit, evicted = self.cache.get_or_publish(
            spec, fingerprint
        )
        self._cache_events.labels(event="hit" if hit else "miss").inc()
        if evicted:
            self._cache_events.labels(event="eviction").inc(evicted)
        if not hit:
            self._publish_seconds.observe(artifact.publish_seconds)
        with self._specs_lock:
            self._known_specs.setdefault(artifact.fingerprint, spec)
        return artifact, hit

    # -- endpoints -----------------------------------------------------
    def publish(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/publish``: materialize (or re-touch) an artifact."""
        if not isinstance(payload, dict):
            raise RequestError(400, "body must be a JSON object")
        try:
            spec = ServeSpec.from_payload(payload.get("spec", payload))
        except ValueError as exc:
            raise RequestError(400, f"bad spec: {exc}") from exc
        artifact, hit = self._publish_spec(spec, None)
        return 200, {
            "fingerprint": artifact.fingerprint,
            "cached": hit,
            "n_bins": artifact.n_bins,
            "epsilon": spec.epsilon,
            "epsilon_spent": artifact.epsilon_spent,
            "publish_seconds": artifact.publish_seconds,
            "spec_name": spec.name,
        }

    def register_tenant(
        self, payload: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/tenants``: pre-register a tenant with a budget."""
        if not isinstance(payload, dict):
            raise RequestError(400, "body must be a JSON object")
        name = payload.get("name")
        budget = payload.get("budget")
        if budget is not None and (
            not isinstance(budget, (int, float))
            or isinstance(budget, bool)
        ):
            raise RequestError(400, "budget must be a number")
        try:
            accountant = self.tenants.register(name, budget)
        except ValueError as exc:
            status = 409 if "already registered" in str(exc) else 400
            raise RequestError(status, str(exc)) from exc
        return 200, {
            "tenant": name,
            "budget": accountant.total.epsilon,
            "remaining": accountant.remaining.epsilon,
        }

    def query(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/query``: answer a batch of point/range queries.

        Queries are processed strictly in order; each successful answer
        debits the tenant's ledger exactly once.  The response carries
        one result per query; the HTTP status is 200 when every query
        was answered and 429 when at least one was refused for budget.
        """
        if not isinstance(payload, dict):
            raise RequestError(400, "body must be a JSON object")
        tenant = payload.get("tenant")
        if not isinstance(tenant, str) or not tenant.strip():
            raise RequestError(400, "tenant must be a non-empty string")
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise RequestError(400, "queries must be a non-empty list")
        artifact, _hit = self._resolve_artifact(payload)
        epsilon = artifact.spec.epsilon
        parsed = [
            _parse_query(item, i, artifact.n_bins)
            for i, item in enumerate(queries)
        ]
        results: List[Dict[str, Any]] = []
        refused = 0
        for index, (kind, lo, hi) in enumerate(parsed):
            try:
                remaining = self.tenants.charge(
                    tenant, epsilon,
                    purpose=f"query/{artifact.fingerprint[:12]}",
                )
            except BudgetExceededError:
                refused += 1
                self._queries.labels(status="exhausted").inc()
                self._denials.labels(tenant=tenant).inc()
                results.append({
                    "index": index,
                    "status": "exhausted",
                    "error": "tenant budget exhausted",
                })
                continue
            except ValueError as exc:
                raise RequestError(400, str(exc)) from exc
            value = artifact.range(lo, hi)
            self._queries.labels(status="ok").inc()
            results.append({
                "index": index,
                "status": "ok",
                "kind": kind,
                "value": value,
                "remaining": remaining,
            })
        status = 429 if refused else 200
        return status, {
            "fingerprint": artifact.fingerprint,
            "tenant": tenant,
            "epsilon_per_query": epsilon,
            "answered": len(parsed) - refused,
            "refused": refused,
            "results": results,
        }

    def stats(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /v1/stats``: cache occupancy, tenants, uptime."""
        return 200, {
            "uptime_seconds": time.time() - self.started,
            "cache": self.cache.stats(),
            "tenants": self.tenants.snapshot(),
            "known_specs": len(self._known_specs),
        }

    def health(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /healthz``."""
        return 200, {"status": "ok"}

    def metrics_text(self) -> str:
        """``GET /metrics``: Prometheus exposition of the registry."""
        return self.registry.render_prometheus()
