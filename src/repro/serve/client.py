"""Minimal stdlib HTTP client for the query service.

Used by the replay driver, the e2e tests, and anyone scripting against
a running ``python -m repro serve``.  Every call returns the decoded
JSON payload; expected application statuses (429 budget refusals, 404
unknown fingerprints) come back as ``(status, payload)`` rather than
exceptions so callers can treat refusal as data — transport failures
(connection refused, timeouts) still raise ``URLError``/``OSError``.

Overload behavior mirrors the robust executor's supervision: a 503
answer is an *invitation to retry*, honored with capped exponential
backoff seeded by the server's ``Retry-After`` hint.  The sleep is
injectable so tests assert the exact delay sequence without waiting.
Query retries are safe because every ``query()`` call carries an
``Idempotency-Key`` header (caller-provided or a generated UUID) that
is stable across the retries of one logical request — the server
answers an already-charged key for free instead of double-spending ε.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
import uuid
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["ServeClient"]


class ServeClient:
    """Talk to one server; thread-safe (no shared mutable state)."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        max_retries: int = 4,
        backoff_seconds: float = 0.1,
        max_backoff_seconds: float = 2.0,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.max_retries = int(max_retries)
        self.backoff_seconds = float(backoff_seconds)
        self.max_backoff_seconds = float(max_backoff_seconds)
        self._sleep = time.sleep if sleep is None else sleep

    # -- wire ----------------------------------------------------------
    def _request_once(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        data = None
        send_headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        send_headers.update(headers or {})
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=send_headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                body = response.read()
                status = response.status
                resp_headers = dict(response.headers.items())
        except urllib.error.HTTPError as exc:
            # 4xx/5xx with a JSON body: surface as data, not exception.
            body = exc.read()
            status = exc.code
            resp_headers = dict(exc.headers.items()) if exc.headers else {}
        try:
            decoded = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = {"error": body.decode("utf-8", "replace")}
        if not isinstance(decoded, dict):
            decoded = {"value": decoded}
        return status, decoded, resp_headers

    def _retry_delay(
        self,
        attempt: int,
        payload: Dict[str, Any],
        headers: Dict[str, str],
    ) -> float:
        """Backoff for one 503: server hint first, exponential fallback."""
        hint: Optional[float] = None
        raw = headers.get("Retry-After")
        if raw is not None:
            try:
                hint = float(raw)
            except ValueError:
                hint = None
        if hint is None:
            value = payload.get("retry_after")
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                hint = float(value)
        delay = (
            hint if hint is not None and hint > 0
            else self.backoff_seconds * (2 ** attempt)
        )
        return min(self.max_backoff_seconds, max(0.0, delay))

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
        request_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One logical request (503s retried), correlation-id aware.

        When a ``request_id`` is given it rides every attempt as
        ``X-Request-Id``; a transport failure that exhausts the caller
        gets the id attached as ``exc.request_id``, and any error
        payload (4xx/5xx) is guaranteed a ``request_id`` field (the
        server's echo, falling back to ours) — so client-side failure
        records stay joinable against the server's access log.
        """
        if request_id is not None:
            headers = dict(headers or {})
            headers.setdefault("X-Request-Id", request_id)
        attempt = 0
        while True:
            try:
                status, decoded, resp_headers = self._request_once(
                    method, path, payload, headers
                )
            except (OSError, http.client.HTTPException) as exc:
                if request_id is not None:
                    exc.request_id = request_id
                raise
            if status != 503 or attempt >= self.max_retries:
                if status >= 400:
                    rid = resp_headers.get("X-Request-Id", request_id)
                    if rid is not None:
                        decoded.setdefault("request_id", rid)
                return status, decoded
            self._sleep(self._retry_delay(attempt, decoded, resp_headers))
            attempt += 1

    def _text(self, path: str) -> str:
        request = urllib.request.Request(
            self.base_url + path, method="GET"
        )
        with urllib.request.urlopen(
            request, timeout=self.timeout
        ) as response:
            return response.read().decode("utf-8")

    # -- API -----------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        status, payload, _headers = self._request_once("GET", "/healthz")
        payload["_status"] = status
        return payload

    def wait_ready(self, deadline_seconds: float = 10.0) -> None:
        """Poll ``/healthz`` until the server answers (startup races)."""
        deadline = time.monotonic() + deadline_seconds
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                if self.health().get("status") == "ok":
                    return
            except (urllib.error.URLError, OSError) as exc:
                last = exc
            time.sleep(0.05)
        raise TimeoutError(
            f"server at {self.base_url} not ready after "
            f"{deadline_seconds}s: {last}"
        )

    def publish(self, spec: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        return self._request("POST", "/v1/publish", {"spec": spec})

    def register_tenant(
        self, name: str, budget: Optional[float] = None
    ) -> Tuple[int, Dict[str, Any]]:
        body: Dict[str, Any] = {"name": name}
        if budget is not None:
            body["budget"] = budget
        return self._request("POST", "/v1/tenants", body)

    def query(
        self,
        tenant: str,
        queries: List[Dict[str, Any]],
        fingerprint: Optional[str] = None,
        spec: Optional[Dict[str, Any]] = None,
        idempotency_key: Optional[str] = None,
        request_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """Query with an idempotency key stable across this call's retries.

        A caller that retries at a *higher* level (the replay driver
        spanning server restarts) should pass its own deterministic
        ``idempotency_key`` so the whole logical request stays
        exactly-once; otherwise a fresh UUID covers the retries inside
        this one call.  The ``request_id`` (default: the idempotency
        key, so logs and ledgers join on one string) is sent as
        ``X-Request-Id`` and surfaced on failures — see
        :meth:`_request`.
        """
        body: Dict[str, Any] = {"tenant": tenant, "queries": queries}
        if fingerprint is not None:
            body["fingerprint"] = fingerprint
        if spec is not None:
            body["spec"] = spec
        key = idempotency_key or str(uuid.uuid4())
        return self._request(
            "POST", "/v1/query", body,
            headers={"Idempotency-Key": key},
            request_id=request_id or key,
        )

    def stats(self) -> Dict[str, Any]:
        _status, payload = self._request("GET", "/v1/stats")
        return payload

    def metrics_text(self) -> str:
        return self._text("/metrics")

    def shutdown(self) -> Tuple[int, Dict[str, Any]]:
        status, payload, _headers = self._request_once(
            "POST", "/v1/shutdown", {}
        )
        return status, payload
