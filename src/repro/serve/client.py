"""Minimal stdlib HTTP client for the query service.

Used by the replay driver, the e2e tests, and anyone scripting against
a running ``python -m repro serve``.  Every call returns the decoded
JSON payload; expected application statuses (429 budget refusals, 404
unknown fingerprints) come back as ``(status, payload)`` rather than
exceptions so callers can treat refusal as data — transport failures
(connection refused, timeouts) still raise ``URLError``/``OSError``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ServeClient"]


class ServeClient:
    """Talk to one server; thread-safe (no shared mutable state)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # -- wire ----------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                body = response.read()
                status = response.status
        except urllib.error.HTTPError as exc:
            # 4xx/5xx with a JSON body: surface as data, not exception.
            body = exc.read()
            status = exc.code
        try:
            decoded = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = {"error": body.decode("utf-8", "replace")}
        if not isinstance(decoded, dict):
            decoded = {"value": decoded}
        return status, decoded

    def _text(self, path: str) -> str:
        request = urllib.request.Request(
            self.base_url + path, method="GET"
        )
        with urllib.request.urlopen(
            request, timeout=self.timeout
        ) as response:
            return response.read().decode("utf-8")

    # -- API -----------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        status, payload = self._request("GET", "/healthz")
        payload["_status"] = status
        return payload

    def wait_ready(self, deadline_seconds: float = 10.0) -> None:
        """Poll ``/healthz`` until the server answers (startup races)."""
        deadline = time.monotonic() + deadline_seconds
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                if self.health().get("status") == "ok":
                    return
            except (urllib.error.URLError, OSError) as exc:
                last = exc
            time.sleep(0.05)
        raise TimeoutError(
            f"server at {self.base_url} not ready after "
            f"{deadline_seconds}s: {last}"
        )

    def publish(self, spec: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        return self._request("POST", "/v1/publish", {"spec": spec})

    def register_tenant(
        self, name: str, budget: Optional[float] = None
    ) -> Tuple[int, Dict[str, Any]]:
        body: Dict[str, Any] = {"name": name}
        if budget is not None:
            body["budget"] = budget
        return self._request("POST", "/v1/tenants", body)

    def query(
        self,
        tenant: str,
        queries: List[Dict[str, Any]],
        fingerprint: Optional[str] = None,
        spec: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        body: Dict[str, Any] = {"tenant": tenant, "queries": queries}
        if fingerprint is not None:
            body["fingerprint"] = fingerprint
        if spec is not None:
            body["spec"] = spec
        return self._request("POST", "/v1/query", body)

    def stats(self) -> Dict[str, Any]:
        _status, payload = self._request("GET", "/v1/stats")
        return payload

    def metrics_text(self) -> str:
        return self._text("/metrics")

    def shutdown(self) -> Tuple[int, Dict[str, Any]]:
        return self._request("POST", "/v1/shutdown", {})
