"""Serving-path telemetry: request IDs, stage timing, access logs, SLOs.

The serving wing's observability substrate (docs/observability.md,
"Serving telemetry").  Four concerns live here, all strictly off the
deterministic response path — nothing in this module may change a
success body, which is what the replay transcript bit-identity
guarantee is stated against:

* **Correlation IDs.**  Every request carries an ``X-Request-Id``: the
  client's, or one minted here.  The ID is echoed as a response header
  on every reply and threaded into error bodies, shed bodies, access
  log lines, and slow-request traces, so a client-side failure record
  is joinable against the server's logs.
* **Stage attribution.**  The request lifecycle is cut into the
  documented :data:`STAGES` vocabulary.  Each stage is timed with
  ``time.perf_counter`` and lands twice: in the per-request access-log
  line, and in the ``repro_serve_stage_seconds{endpoint,stage}``
  histogram family.  When ``REPRO_TRACE`` is on, every stage also opens
  an :mod:`repro.obs.trace` span under a per-request root capture, so
  ``/v1/debug`` can show full span trees for the slowest requests.
* **Structured access log.**  One sorted-key JSON line per request
  (schema: :data:`ACCESS_LOG_SCHEMA`), size-rotated, write failures
  swallowed and counted — the log must never take down the serving
  path.
* **SLO burn rates.**  :class:`SLOMonitor` evaluates latency / error /
  shed objectives over a sliding window and exports
  ``repro_serve_slo_*`` gauges; ``burn = bad_fraction / (1 - target)``,
  so burn 1.0 means "exactly spending the error budget" and anything
  above it is overspend (the dashboard flags > ``6.0`` as drift).

Overhead contract: with tracing disabled, a stage on the query hot
path costs one null-span lookup, two clock reads, and a dict update —
``tests/serve/test_telemetry.py`` guards the total below 5% of a
served cache-hit query, mirroring the PR-4 disabled-overhead guard.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro.obs import trace
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "ACCESS_LOG_SCHEMA",
    "AccessLog",
    "STAGES",
    "SLOConfig",
    "SLOMonitor",
    "ServeTelemetry",
    "validate_access_log_line",
]

#: The documented stage vocabulary (docs/observability.md).  Stages are
#: non-overlapping regions nested inside one request, so per request
#: ``sum(stages) <= duration_seconds`` up to clock jitter.
STAGES = (
    "serve.admission_wait",   # queued for an admission slot
    "serve.cache_lookup",     # artifact cache probe + store rehydrate
    "serve.publish",          # cold publish (or single-flight wait)
    "serve.ledger_charge",    # atomic in-memory epsilon spend
    "serve.journal_fsync",    # durable WAL append (fsync included)
    "serve.answer",           # range/point answers off the prefix sums
    "serve.serialize",        # JSON render + socket write
)


# ---------------------------------------------------------------------------
# Access log
# ---------------------------------------------------------------------------

#: JSON-Schema (draft-07 style) for one access-log line.  ``stages``
#: maps stage names to seconds; ``shed`` is the shed reason or null;
#: ``ts`` is wall-clock epoch seconds (timings never feed transcripts).
ACCESS_LOG_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro serve access log line",
    "type": "object",
    "additionalProperties": False,
    "required": [
        "code", "degraded", "duration_seconds", "endpoint", "method",
        "path", "replayed", "request_id", "shed", "stages", "tenant",
        "ts",
    ],
    "properties": {
        "code": {"type": "integer", "minimum": 0, "maximum": 599},
        "degraded": {"type": "boolean"},
        "duration_seconds": {"type": "number", "minimum": 0},
        "endpoint": {"type": "string", "minLength": 1},
        "method": {"type": "string", "enum": ["GET", "POST"]},
        "path": {"type": "string", "minLength": 1},
        "replayed": {"type": "boolean"},
        "request_id": {"type": "string", "minLength": 1},
        "shed": {"type": ["string", "null"]},
        "stages": {
            "type": "object",
            "additionalProperties": {"type": "number", "minimum": 0},
        },
        "tenant": {"type": ["string", "null"]},
        "ts": {"type": "number", "minimum": 0},
    },
}

_TYPE_CHECKS = {
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (
        isinstance(v, (int, float)) and not isinstance(v, bool)
    ),
    "string": lambda v: isinstance(v, str),
    "boolean": lambda v: isinstance(v, bool),
    "object": lambda v: isinstance(v, dict),
    "null": lambda v: v is None,
}


def validate_access_log_line(line: Union[str, Dict[str, Any]]) -> List[str]:
    """Problems with one access-log line against :data:`ACCESS_LOG_SCHEMA`.

    Returns an empty list for a valid line.  Hand-rolled (stdlib-only —
    no ``jsonschema`` dependency) but covers what the schema states:
    required fields, field types, value bounds, no extra fields, and
    numeric non-negative stage timings.
    """
    if isinstance(line, str):
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"]
    else:
        payload = line
    if not isinstance(payload, dict):
        return [f"line must be an object, got {type(payload).__name__}"]
    problems: List[str] = []
    props = ACCESS_LOG_SCHEMA["properties"]
    for field in ACCESS_LOG_SCHEMA["required"]:
        if field not in payload:
            problems.append(f"missing field: {field}")
    for field in sorted(set(payload) - set(props)):
        problems.append(f"unexpected field: {field}")
    for field, value in payload.items():
        spec = props.get(field)
        if spec is None:
            continue
        types = spec.get("type", "string")
        if spec.get("enum") is not None and value not in spec["enum"]:
            problems.append(f"{field}: {value!r} not in {spec['enum']}")
            continue
        if isinstance(types, str):
            types = [types]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            problems.append(
                f"{field}: expected {'/'.join(types)}, got "
                f"{type(value).__name__}"
            )
            continue
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            low = spec.get("minimum")
            high = spec.get("maximum")
            if low is not None and value < low:
                problems.append(f"{field}: {value} < minimum {low}")
            if high is not None and value > high:
                problems.append(f"{field}: {value} > maximum {high}")
        if isinstance(value, str) and spec.get("minLength") and not value:
            problems.append(f"{field}: must be non-empty")
        if field == "stages" and isinstance(value, dict):
            for stage, seconds in value.items():
                ok = _TYPE_CHECKS["number"](seconds) and seconds >= 0
                if not ok:
                    problems.append(
                        f"stages.{stage}: expected non-negative number, "
                        f"got {seconds!r}"
                    )
    return problems


class AccessLog:
    """Size-rotated JSONL access log; failures never reach the caller.

    One ``json.dumps(record, sort_keys=True)`` line per request.  When
    the file exceeds ``max_bytes`` it rotates to ``<name>.1`` …
    ``<name>.<backups>`` (oldest dropped).  Write errors are swallowed
    and counted in :attr:`errors` — losing a log line is strictly
    better than failing a request over it.
    """

    def __init__(
        self,
        path: Union[str, Path],
        max_bytes: int = 4 * 1024 * 1024,
        backups: int = 2,
    ) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if backups < 0:
            raise ValueError(f"backups must be >= 0, got {backups}")
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self.lines = 0
        self.rotations = 0
        self.errors = 0
        self._lock = threading.Lock()

    def _rotate_locked(self) -> None:
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
        else:
            oldest = self.path.with_name(
                f"{self.path.name}.{self.backups}"
            )
            oldest.unlink(missing_ok=True)
            for i in range(self.backups - 1, 0, -1):
                src = self.path.with_name(f"{self.path.name}.{i}")
                if src.exists():
                    src.rename(
                        self.path.with_name(f"{self.path.name}.{i + 1}")
                    )
            if self.path.exists():
                self.path.rename(
                    self.path.with_name(f"{self.path.name}.1")
                )
        self.rotations += 1

    def write(self, record: Dict[str, Any]) -> None:
        """Append one line (sorted keys); never raises."""
        try:
            line = json.dumps(record, sort_keys=True) + "\n"
        except (TypeError, ValueError):
            with self._lock:
                self.errors += 1
            return
        with self._lock:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                try:
                    size = self.path.stat().st_size
                except OSError:
                    size = 0
                if size + len(line) > self.max_bytes and size > 0:
                    self._rotate_locked()
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line)
                self.lines += 1
            except OSError:
                self.errors += 1

    def info(self) -> Dict[str, Any]:
        """Introspection snapshot for ``/v1/debug``."""
        with self._lock:
            return {
                "path": str(self.path),
                "lines": self.lines,
                "rotations": self.rotations,
                "errors": self.errors,
            }


# ---------------------------------------------------------------------------
# SLO burn-rate monitors
# ---------------------------------------------------------------------------

class SLOConfig:
    """Serving objectives evaluated over a sliding window.

    ``latency``: a request is *bad* when it takes longer than
    ``latency_threshold`` seconds; the target is the good fraction.
    ``error``: bad = 5xx (client errors are the client's problem).
    ``shed``: bad = refused by admission/overload (503 shed).
    """

    __slots__ = (
        "window_seconds", "latency_threshold", "latency_target",
        "error_target", "shed_target",
    )

    def __init__(
        self,
        window_seconds: float = 60.0,
        latency_threshold: float = 0.25,
        latency_target: float = 0.99,
        error_target: float = 0.999,
        shed_target: float = 0.99,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be > 0, got {window_seconds}"
            )
        if latency_threshold <= 0:
            raise ValueError(
                f"latency_threshold must be > 0, got {latency_threshold}"
            )
        for name, target in (
            ("latency_target", latency_target),
            ("error_target", error_target),
            ("shed_target", shed_target),
        ):
            if not 0.0 < float(target) < 1.0:
                raise ValueError(
                    f"{name} must be in (0, 1), got {target}"
                )
        self.window_seconds = float(window_seconds)
        self.latency_threshold = float(latency_threshold)
        self.latency_target = float(latency_target)
        self.error_target = float(error_target)
        self.shed_target = float(shed_target)

    def to_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self.__slots__}


class SLOMonitor:
    """Sliding-window burn rates for the three serving objectives.

    ``burn_rate = bad_fraction / (1 - target)`` — the SRE convention:
    1.0 consumes the error budget exactly as fast as allowed; the
    dashboard badges ``<= 1`` ok, ``<= 6`` watch, ``> 6`` drift.  The
    clock is injectable so tests drive the window deterministically.
    """

    def __init__(
        self,
        config: Optional[SLOConfig] = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config if config is not None else SLOConfig()
        self._clock = clock
        self._lock = threading.Lock()
        #: (ts, slow, error, shed) per observed request.
        self._window: Deque[Tuple[float, bool, bool, bool]] = deque()

    def record(
        self, duration_seconds: float, code: int, shed: bool
    ) -> None:
        now = self._clock()
        slow = duration_seconds > self.config.latency_threshold
        error = code >= 500 and not shed
        with self._lock:
            self._window.append((now, slow, error, shed))
            self._prune_locked(now)

    def _prune_locked(self, now: float) -> None:
        horizon = now - self.config.window_seconds
        while self._window and self._window[0][0] < horizon:
            self._window.popleft()

    def snapshot(self) -> Dict[str, Any]:
        """Per-objective window counts, bad fractions, and burn rates."""
        with self._lock:
            self._prune_locked(self._clock())
            total = len(self._window)
            slow = sum(1 for _, s, _, _ in self._window if s)
            errors = sum(1 for _, _, e, _ in self._window if e)
            sheds = sum(1 for _, _, _, d in self._window if d)
        cfg = self.config
        objectives: Dict[str, Dict[str, float]] = {}
        for name, bad, target in (
            ("latency", slow, cfg.latency_target),
            ("error", errors, cfg.error_target),
            ("shed", sheds, cfg.shed_target),
        ):
            bad_fraction = (bad / total) if total else 0.0
            objectives[name] = {
                "bad": float(bad),
                "bad_fraction": bad_fraction,
                "target": target,
                "burn_rate": bad_fraction / (1.0 - target),
            }
        return {
            "window_seconds": cfg.window_seconds,
            "window_requests": total,
            "latency_threshold": cfg.latency_threshold,
            "objectives": objectives,
        }


# ---------------------------------------------------------------------------
# Per-request telemetry
# ---------------------------------------------------------------------------

class _RequestContext:
    __slots__ = (
        "request_id", "method", "path", "t0", "stages", "tenant",
        "shed", "degraded", "replayed", "capture_cm", "root",
    )

    def __init__(self, request_id: str, method: str, path: str) -> None:
        self.request_id = request_id
        self.method = method
        self.path = path
        self.t0 = time.perf_counter()
        self.stages: Dict[str, float] = {}
        self.tenant: Optional[str] = None
        self.shed: Optional[str] = None
        self.degraded = False
        self.replayed = False
        self.capture_cm = None
        self.root = None


class _NullStage:
    """Shared no-op stage (no request context, tracing off)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_STAGE = _NullStage()


class _StageContext:
    """Times one stage; accumulates into the active request context."""

    __slots__ = ("_telemetry", "_name", "_span", "_t0")

    def __init__(self, telemetry: "ServeTelemetry", name: str) -> None:
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> None:
        self._span = trace.span(self._name)
        self._span.__enter__()
        self._t0 = time.perf_counter()
        return None

    def __exit__(self, *exc: Any) -> bool:
        elapsed = time.perf_counter() - self._t0
        self._span.__exit__(*exc)
        ctx = getattr(self._telemetry._local, "ctx", None)
        if ctx is not None:
            ctx.stages[self._name] = (
                ctx.stages.get(self._name, 0.0) + elapsed
            )
        return False


class ServeTelemetry:
    """Per-request correlation, stage attribution, logging, and SLOs.

    One instance per :class:`~repro.serve.service.QueryService`.  The
    transport opens a request with :meth:`begin_request` and closes it
    with :meth:`end_request` (in a ``finally``); the service layer
    wraps its hot-path regions in :meth:`stage` and annotates
    request-scoped facts with :meth:`annotate`.  All state is
    thread-local per request, so concurrent handler threads never
    share a context.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        slo: Optional[SLOConfig] = None,
        access_log: Optional[Union[str, Path, AccessLog]] = None,
        slow_traces: int = 8,
        recent_traces: int = 32,
    ) -> None:
        if slow_traces < 0:
            raise ValueError(
                f"slow_traces must be >= 0, got {slow_traces}"
            )
        self.registry = registry
        self.slo = SLOMonitor(slo)
        if isinstance(access_log, AccessLog) or access_log is None:
            self.access_log = access_log
        else:
            self.access_log = AccessLog(access_log)
        self.slow_traces = int(slow_traces)
        self._local = threading.local()
        self._ring_lock = threading.Lock()
        self._recent: Deque[Dict[str, Any]] = deque(
            maxlen=max(1, int(recent_traces))
        )
        from repro.serve.service import SERVE_BUCKETS

        self._stage_seconds = registry.histogram(
            "repro_serve_stage_seconds",
            "per-stage request latency attribution "
            "(docs/observability.md stage vocabulary)",
            labelnames=("endpoint", "stage"),
            buckets=SERVE_BUCKETS,
        )
        self._slo_burn = registry.gauge(
            "repro_serve_slo_burn_rate",
            "SLO burn rate per objective over the sliding window "
            "(1.0 = spending error budget exactly at the allowed rate)",
            labelnames=("objective",),
        )
        self._slo_bad = registry.gauge(
            "repro_serve_slo_bad_fraction",
            "fraction of windowed requests violating each objective",
            labelnames=("objective",),
        )
        self._slo_target = registry.gauge(
            "repro_serve_slo_target",
            "configured good-fraction target per objective",
            labelnames=("objective",),
        )
        self._slo_window = registry.gauge(
            "repro_serve_slo_window_requests",
            "requests currently inside the SLO sliding window",
        )

    # -- request lifecycle ---------------------------------------------
    def begin_request(
        self,
        method: str,
        path: str,
        request_id: Optional[str] = None,
    ) -> str:
        """Open the per-thread request context; returns the request id.

        A falsy/absent client ``X-Request-Id`` gets a minted UUID hex.
        With tracing enabled, a root span capture is installed so every
        :meth:`stage` also records into a span tree.
        """
        rid = request_id.strip() if isinstance(request_id, str) else ""
        if not rid:
            rid = uuid.uuid4().hex
        ctx = _RequestContext(rid, method, path)
        if trace.enabled():
            ctx.capture_cm = trace.capture(
                "serve.request", request_id=rid, method=method, path=path
            )
            ctx.root = ctx.capture_cm.__enter__()
        self._local.ctx = ctx
        return rid

    def current_request_id(self) -> Optional[str]:
        ctx = getattr(self._local, "ctx", None)
        return ctx.request_id if ctx is not None else None

    def stage(self, name: str):
        """Time one stage of the active request (near-free off-path).

        Without an active request context *and* with tracing disabled
        (direct service calls in unit tests) this returns a shared
        no-op so the library path stays unobserved and cheap.
        """
        if getattr(self._local, "ctx", None) is None \
                and not trace.enabled():
            return _NULL_STAGE
        return _StageContext(self, name)

    def record_stage(self, name: str, seconds: float) -> None:
        """Attribute externally-measured time (admission queue waits)."""
        ctx = getattr(self._local, "ctx", None)
        if ctx is not None and seconds > 0:
            ctx.stages[name] = ctx.stages.get(name, 0.0) + float(seconds)

    def annotate(
        self,
        tenant: Optional[str] = None,
        shed: Optional[str] = None,
        degraded: Optional[bool] = None,
        replayed: Optional[bool] = None,
    ) -> None:
        """Attach request-scoped facts for the access-log line."""
        ctx = getattr(self._local, "ctx", None)
        if ctx is None:
            return
        if tenant is not None:
            ctx.tenant = str(tenant)
        if shed is not None:
            ctx.shed = str(shed)
        if degraded is not None:
            ctx.degraded = bool(degraded)
        if replayed is not None:
            ctx.replayed = bool(replayed)

    def end_request(self, endpoint: str, code: int) -> None:
        """Close the context: histograms, SLO window, log line, ring."""
        ctx = getattr(self._local, "ctx", None)
        if ctx is None:
            return
        self._local.ctx = None
        duration = time.perf_counter() - ctx.t0
        if ctx.capture_cm is not None:
            ctx.capture_cm.__exit__(None, None, None)
        for stage, seconds in ctx.stages.items():
            self._stage_seconds.labels(
                endpoint=endpoint, stage=stage
            ).observe(seconds)
        self.slo.record(duration, int(code), ctx.shed is not None)
        if self.access_log is not None:
            self.access_log.write({
                "code": int(code),
                "degraded": ctx.degraded,
                "duration_seconds": duration,
                "endpoint": endpoint,
                "method": ctx.method,
                "path": ctx.path,
                "replayed": ctx.replayed,
                "request_id": ctx.request_id,
                "shed": ctx.shed,
                "stages": dict(ctx.stages),
                "tenant": ctx.tenant,
                "ts": time.time(),
            })
        if ctx.root is not None:
            tree = ctx.root.to_dict()
            entry = {
                "request_id": ctx.request_id,
                "endpoint": endpoint,
                "code": int(code),
                "seconds": float(ctx.root.seconds),
                "unattributed_seconds": trace.self_seconds(tree),
                "trace": tree,
            }
            with self._ring_lock:
                self._recent.append(entry)

    # -- introspection -------------------------------------------------
    def slowest(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The slowest-N recent traced requests (``Span.to_dict`` form).

        Empty unless tracing was enabled for some requests — the ring
        only holds requests that carried a root span.
        """
        limit = self.slow_traces if n is None else int(n)
        with self._ring_lock:
            entries = list(self._recent)
        entries.sort(key=lambda e: e["seconds"], reverse=True)
        return entries[:max(0, limit)]

    def refresh_gauges(self) -> Dict[str, Any]:
        """Re-export the SLO window as gauges (called at scrape time)."""
        snap = self.slo.snapshot()
        for objective, values in snap["objectives"].items():
            self._slo_burn.labels(objective=objective).set(
                values["burn_rate"]
            )
            self._slo_bad.labels(objective=objective).set(
                values["bad_fraction"]
            )
            self._slo_target.labels(objective=objective).set(
                values["target"]
            )
        self._slo_window.set(snap["window_requests"])
        return snap
