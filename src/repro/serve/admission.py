"""Admission control: bounded queue, deadlines, load shedding, drain.

The OS accept queue gives a saturated server exactly one overload
behavior — silent latency growth until clients time out.  The
:class:`AdmissionController` replaces that with an explicit contract:

* at most ``max_inflight`` requests execute concurrently;
* at most ``max_queue`` more may *wait* for a slot, each for at most
  ``queue_timeout`` seconds;
* everything beyond that is **shed immediately** with a structured
  reason (``queue_full`` / ``queue_timeout`` / ``draining``), which the
  server turns into ``503`` + ``Retry-After`` — never a hang, never a
  500.

Draining (graceful shutdown) flips the controller into
refuse-new-admissions mode while :meth:`wait_drained` gives in-flight
requests a bounded deadline to finish.  The controller is pure
bookkeeping — it never touches sockets — so it is trivially testable
without a live server.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["AdmissionController", "AdmissionDecision"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt."""

    admitted: bool
    #: Shed reason when not admitted: queue_full | queue_timeout | draining.
    reason: Optional[str] = None
    #: Seconds the request waited for a slot (0.0 for immediate grants).
    waited_seconds: float = 0.0


class AdmissionController:
    """Bounded-concurrency gate with a bounded, deadline-capped queue."""

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 16,
        queue_timeout: float = 1.0,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if queue_timeout < 0:
            raise ValueError("queue_timeout must be >= 0")
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.queue_timeout = float(queue_timeout)
        self._cond = threading.Condition()
        self._inflight = 0
        self._queued = 0
        self._draining = False
        self._shed: Dict[str, int] = {
            "queue_full": 0, "queue_timeout": 0, "draining": 0,
        }
        self._admitted = 0

    # -- admission -----------------------------------------------------
    def try_admit(
        self, timeout: Optional[float] = None
    ) -> AdmissionDecision:
        """Claim an execution slot, waiting up to ``timeout`` seconds.

        Callers that receive ``admitted=True`` MUST pair it with
        :meth:`release` (use ``try/finally``).
        """
        deadline_wait = self.queue_timeout if timeout is None else timeout
        with self._cond:
            if self._draining:
                self._shed["draining"] += 1
                return AdmissionDecision(False, "draining")
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self._admitted += 1
                return AdmissionDecision(True)
            if self._queued >= self.max_queue:
                self._shed["queue_full"] += 1
                return AdmissionDecision(False, "queue_full")
            self._queued += 1
            waited = 0.0
            try:
                while True:
                    if self._draining:
                        self._shed["draining"] += 1
                        return AdmissionDecision(
                            False, "draining", waited_seconds=waited
                        )
                    if self._inflight < self.max_inflight:
                        self._inflight += 1
                        self._admitted += 1
                        return AdmissionDecision(
                            True, waited_seconds=waited
                        )
                    remaining = deadline_wait - waited
                    if remaining <= 0:
                        self._shed["queue_timeout"] += 1
                        return AdmissionDecision(
                            False, "queue_timeout", waited_seconds=waited
                        )
                    start = time.monotonic()
                    self._cond.wait(timeout=remaining)
                    waited += time.monotonic() - start
            finally:
                self._queued -= 1

    def release(self) -> None:
        """Return an execution slot (wakes one queued waiter)."""
        with self._cond:
            if self._inflight <= 0:  # pragma: no cover - misuse guard
                raise RuntimeError("release() without matching try_admit()")
            self._inflight -= 1
            self._cond.notify_all()

    # -- drain ---------------------------------------------------------
    def begin_drain(self) -> None:
        """Refuse all new admissions from now on; wake queued waiters."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    def wait_drained(self, deadline_seconds: float = 5.0) -> bool:
        """Block until in-flight work finishes, or the deadline passes.

        Returns ``True`` if the server drained cleanly, ``False`` if
        requests were still running when the deadline expired (the
        caller shuts down anyway — the deadline is the whole point).
        """
        end = time.monotonic() + max(0.0, deadline_seconds)
        with self._cond:
            while self._inflight > 0:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining)
            return True

    # -- introspection -------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        with self._cond:
            return {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "queue_timeout": self.queue_timeout,
                "inflight": self._inflight,
                "queued": self._queued,
                "draining": self._draining,
                "admitted": self._admitted,
                "shed": dict(self._shed),
            }
