"""The serving wing: a DP histogram query service plus trace replay.

``python -m repro serve`` stands up a long-lived HTTP/JSON service that
publishes once per (dataset, publisher, ε, k) spec, caches artifacts in
a size-bounded LRU keyed by the journal's SHA-256 spec fingerprint, and
answers point/range count queries under per-tenant ε-budget ledgers.
``python -m repro replay <manifest>`` drives it with a deterministic
workload trace and lands p50/p99 latency + throughput in the metrics
registry and the run-history store.  See docs/serving.md.

The crash-safety wing (``--state-dir``): a write-ahead ε-ledger
(:mod:`repro.serve.ledgerlog`), an atomic on-disk artifact store
(:mod:`repro.serve.store`), admission control with bounded queueing
(:mod:`repro.serve.admission`), and a kill-and-restart chaos drill
(:mod:`repro.serve.chaos`) that proves no-overdraft / no-double-spend /
deterministic-transcript invariants end to end.
"""

from repro.serve.admission import AdmissionController
from repro.serve.artifacts import PublishedArtifact, publish_artifact
from repro.serve.cache import ArtifactCache
from repro.serve.chaos import ChaosReport, run_chaos_replay
from repro.serve.client import ServeClient
from repro.serve.ledgerlog import LedgerDebit, LedgerLog, LedgerReplay
from repro.serve.replay import (
    ReplayManifest,
    ReplayResult,
    build_schedule,
    load_manifest,
    record_replay_metrics,
    run_replay,
)
from repro.serve.server import HistogramHTTPServer, make_server, run_server
from repro.serve.service import QueryService, RequestError, ShedError
from repro.serve.spec import SERVE_DATASETS, ServeSpec, serve_roster
from repro.serve.store import ArtifactStore
from repro.serve.telemetry import (
    STAGES,
    AccessLog,
    ServeTelemetry,
    SLOConfig,
    SLOMonitor,
    validate_access_log_line,
)
from repro.serve.tenants import TenantLedgers

__all__ = [
    "SERVE_DATASETS",
    "STAGES",
    "AccessLog",
    "AdmissionController",
    "ArtifactCache",
    "ArtifactStore",
    "ChaosReport",
    "HistogramHTTPServer",
    "LedgerDebit",
    "LedgerLog",
    "LedgerReplay",
    "PublishedArtifact",
    "QueryService",
    "ReplayManifest",
    "ReplayResult",
    "RequestError",
    "SLOConfig",
    "SLOMonitor",
    "ServeClient",
    "ServeSpec",
    "ServeTelemetry",
    "ShedError",
    "TenantLedgers",
    "build_schedule",
    "load_manifest",
    "make_server",
    "publish_artifact",
    "record_replay_metrics",
    "run_chaos_replay",
    "run_replay",
    "run_server",
    "serve_roster",
    "validate_access_log_line",
]
