"""Per-tenant ε-budget ledgers for the query service.

Every tenant of the service owns an :class:`~repro.accounting.Accountant`
with a fixed total budget.  The service debits it once per *answered*
query (see docs/serving.md for the worst-case accounting rationale);
an overdraft raises :class:`~repro.exceptions.BudgetExceededError`,
which the HTTP layer maps to a 429-style refusal.  The accountant
itself is thread-safe (check-and-append is atomic), so concurrent
requests can never double-spend a tenant past its ε.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro.accounting.accountant import Accountant
from repro.accounting.budget import EPS_TOL, PrivacyBudget

__all__ = ["TenantLedgers"]


class TenantLedgers:
    """A registry of tenant accountants, created on first touch.

    ``register`` with an explicit budget is idempotent for an equal
    budget and a :class:`ValueError` for a conflicting one — a tenant's
    ε cap is a promise, not a mutable setting.
    """

    def __init__(self, default_budget: float = 100.0) -> None:
        if default_budget <= 0:
            raise ValueError(
                f"default_budget must be > 0, got {default_budget}"
            )
        self.default_budget = float(default_budget)
        self._lock = threading.Lock()
        self._accountants: Dict[str, Accountant] = {}
        self._queries: Dict[str, int] = {}

    @staticmethod
    def _check_name(name: str) -> str:
        if not isinstance(name, str) or not name.strip():
            raise ValueError("tenant name must be a non-empty string")
        return name

    def register(
        self, name: str, budget: Optional[float] = None
    ) -> Accountant:
        """Create (or fetch) the tenant's accountant."""
        name = self._check_name(name)
        total = self.default_budget if budget is None else float(budget)
        if total <= 0:
            raise ValueError(f"tenant budget must be > 0, got {budget}")
        with self._lock:
            existing = self._accountants.get(name)
            if existing is not None:
                if budget is not None and abs(
                    existing.total.epsilon - total
                ) > EPS_TOL:
                    raise ValueError(
                        f"tenant {name!r} already registered with budget "
                        f"eps={existing.total.epsilon:g}; cannot change "
                        f"to eps={total:g}"
                    )
                return existing
            accountant = Accountant(PrivacyBudget(total))
            self._accountants[name] = accountant
            self._queries[name] = 0
            return accountant

    def charge(self, name: str, epsilon: float, purpose: str) -> float:
        """Debit one query's ε; raises ``BudgetExceededError`` when broke.

        Unregistered tenants are auto-registered at the default budget
        (the open-enrollment mode the replay driver relies on).
        Returns the tenant's remaining ε after the debit.
        """
        accountant = self.register(name)
        accountant.spend(PrivacyBudget(float(epsilon)), purpose=purpose)
        with self._lock:
            self._queries[name] = self._queries.get(name, 0) + 1
        return accountant.remaining.epsilon

    def accountant(self, name: str) -> Optional[Accountant]:
        """The tenant's accountant, or ``None`` if never seen."""
        with self._lock:
            return self._accountants.get(name)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Stable per-tenant budget summary for ``/v1/stats``."""
        with self._lock:
            names = sorted(self._accountants)
            out: Dict[str, Dict[str, Any]] = {}
            for name in names:
                acc = self._accountants[name]
                out[name] = {
                    "budget": acc.total.epsilon,
                    "spent": acc.spent.epsilon,
                    "remaining": acc.remaining.epsilon,
                    "queries": self._queries.get(name, 0),
                    "spends": len(acc.ledger),
                }
            return out
