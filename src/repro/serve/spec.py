"""Serving specs: what exactly does one published artifact contain?

A :class:`ServeSpec` pins down everything that determines a served
histogram — dataset (name, domain size, total), publisher, epsilon,
the structure parameter ``k``, and the publish seed.  Its SHA-256
fingerprint is computed through the *same* machinery the checkpoint
journal uses (:func:`repro.robust.journal.spec_fingerprint`), so an
artifact cache key covers the exact dataset bytes, not just the
request's field values: two specs that name the same dataset but
produce different counts can never collide.

Specs cross the wire as flat JSON objects (:meth:`ServeSpec.to_payload`
/ :meth:`ServeSpec.from_payload`); validation happens on construction
so a malformed request dies with a :class:`ValueError` the HTTP layer
turns into a 400 long before any budget is touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Dict, Optional

from repro.experiments.spec import ExperimentSpec
from repro.hist.histogram import Histogram

__all__ = [
    "SERVE_DATASETS",
    "ServeSpec",
    "serve_roster",
    "publisher_factory",
]

#: Datasets the service can publish; values come from
#: :mod:`repro.datasets.standard` with (n_bins, total) applied.
SERVE_DATASETS = ("age", "nettrace", "searchlogs", "socialnetwork")

#: Publishers that accept the structure parameter ``k``.
_K_PUBLISHERS = ("noisefirst", "structurefirst", "dawa-lite")


def serve_roster() -> Dict[str, Callable[..., object]]:
    """Publishers the service can run, by stable wire name."""
    from repro.baselines import (
        Ahp,
        Boost,
        DawaLite,
        DworkIdentity,
        FourierPublisher,
        Privelet,
        UniformFlat,
    )
    from repro.core import NoiseFirst, StructureFirst

    return {
        "dwork": DworkIdentity,
        "uniform": UniformFlat,
        "boost": Boost,
        "privelet": Privelet,
        "ahp": Ahp,
        "fourier": FourierPublisher,
        "noisefirst": NoiseFirst,
        "structurefirst": StructureFirst,
        "dawa-lite": DawaLite,
    }


def publisher_factory(
    publisher: str, k: Optional[int] = None
) -> Callable[[], object]:
    """A zero-argument factory for ``publisher`` with ``k`` applied.

    ``k`` is only legal for the structure publishers
    (``noisefirst``/``structurefirst``/``dawa-lite``); passing it to an
    identity-style baseline is a spec error, not a silent ignore.
    """
    roster = serve_roster()
    if publisher not in roster:
        raise ValueError(
            f"unknown publisher {publisher!r}; available: "
            f"{', '.join(sorted(roster))}"
        )
    cls = roster[publisher]
    if k is None:
        return cls
    if publisher not in _K_PUBLISHERS:
        raise ValueError(
            f"publisher {publisher!r} does not take k "
            f"(k-publishers: {', '.join(_K_PUBLISHERS)})"
        )
    return lambda: cls(k=k)


@lru_cache(maxsize=32)
def _dataset_histogram(dataset: str, n_bins: int, total: int) -> Histogram:
    """The (deterministic, seeded) standard dataset for one serve spec.

    Cached because fingerprinting re-reads the full count vector and the
    standard generators rebuild it from scratch each call.
    """
    from repro.datasets import standard

    if dataset not in SERVE_DATASETS:
        raise ValueError(
            f"unknown dataset {dataset!r}; available: "
            f"{', '.join(SERVE_DATASETS)}"
        )
    return getattr(standard, dataset)(n_bins=n_bins, total=total)


@dataclass(frozen=True)
class ServeSpec:
    """One publishable cell: (dataset, publisher, ε, k, seed).

    ``seed`` is the root of the publish's random stream, so the same
    spec always yields a bit-identical artifact — the contract the
    replay determinism tests pin down.
    """

    dataset: str
    publisher: str
    epsilon: float
    k: Optional[int] = None
    n_bins: int = 64
    total: int = 50_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dataset not in SERVE_DATASETS:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; available: "
                f"{', '.join(SERVE_DATASETS)}"
            )
        if not isinstance(self.epsilon, (int, float)) or isinstance(
            self.epsilon, bool
        ):
            raise ValueError("epsilon must be a number")
        if float(self.epsilon) <= 0:
            raise ValueError(f"epsilon must be > 0, got {self.epsilon}")
        object.__setattr__(self, "epsilon", float(self.epsilon))
        for name, minimum in (("n_bins", 2), ("total", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"{name} must be an int")
            if value < minimum:
                raise ValueError(f"{name} must be >= {minimum}, got {value}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError("seed must be an int")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if self.k is not None:
            if not isinstance(self.k, int) or isinstance(self.k, bool):
                raise ValueError("k must be an int or null")
            if self.k < 1:
                raise ValueError(f"k must be >= 1, got {self.k}")
        # Fails fast on unknown publisher / illegal (publisher, k) pairs.
        publisher_factory(self.publisher, self.k)

    @property
    def name(self) -> str:
        """Stable display name, mirroring the sweep naming convention."""
        k_text = "auto" if self.k is None else str(self.k)
        return (
            f"serve/{self.dataset}/{self.publisher}/eps={self.epsilon:g}"
            f"/k={k_text}/n={self.n_bins}/seed={self.seed}"
        )

    def histogram(self) -> Histogram:
        """The true (pre-noise) dataset histogram for this spec."""
        return _dataset_histogram(self.dataset, self.n_bins, self.total)

    def to_experiment_spec(self) -> ExperimentSpec:
        """Bridge into the experiment-runner world (fingerprinting)."""
        return ExperimentSpec(
            name=self.name,
            histogram=self.histogram(),
            publisher_factory=publisher_factory(self.publisher, self.k),
            epsilon=self.epsilon,
            workloads=(),
            seeds=(self.seed,),
        )

    def fingerprint(self) -> str:
        """SHA-256 identity over the spec *and* the dataset bytes."""
        return self.to_experiment_spec().fingerprint()

    def to_payload(self) -> Dict[str, Any]:
        """Wire representation (inverse of :meth:`from_payload`)."""
        return {
            "dataset": self.dataset,
            "publisher": self.publisher,
            "epsilon": self.epsilon,
            "k": self.k,
            "n_bins": self.n_bins,
            "total": self.total,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ServeSpec":
        """Build a validated spec from a request body dict."""
        if not isinstance(payload, dict):
            raise ValueError(
                f"spec must be an object, got {type(payload).__name__}"
            )
        known = {
            "dataset", "publisher", "epsilon", "k", "n_bins", "total",
            "seed",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown spec field(s): {', '.join(unknown)}")
        missing = [f for f in ("dataset", "publisher", "epsilon")
                   if f not in payload]
        if missing:
            raise ValueError(
                f"spec missing required field(s): {', '.join(missing)}"
            )
        return cls(
            dataset=payload["dataset"],
            publisher=payload["publisher"],
            epsilon=payload["epsilon"],
            k=payload.get("k"),
            n_bins=payload.get("n_bins", 64),
            total=payload.get("total", 50_000),
            seed=payload.get("seed", 0),
        )
