"""Published artifacts: an immutable histogram plus its prefix sums.

Publishing is the expensive, budget-consuming step; answering queries
is free post-processing.  A :class:`PublishedArtifact` therefore
precomputes the length ``n + 1`` prefix-sum array once at publish time
so every point/range query afterwards is O(1), and freezes both arrays
(numpy ``writeable=False``) so the ThreadingHTTPServer's handler
threads can share one artifact with no locks and no torn reads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

from repro.hist.ranges import prefix_sums
from repro.serve.spec import ServeSpec

__all__ = ["PublishedArtifact", "publish_artifact"]


@dataclass(frozen=True)
class PublishedArtifact:
    """One published histogram, ready to answer count queries.

    ``counts`` is the sanitized (noisy) count vector; ``prefix`` its
    prefix sums (``prefix[j] = counts[:j].sum()``), so a half-open
    range ``[lo, hi)`` answers as ``prefix[hi] - prefix[lo]``.
    """

    spec: ServeSpec
    fingerprint: str
    counts: np.ndarray
    prefix: np.ndarray
    epsilon_spent: float
    publish_seconds: float
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        counts = np.ascontiguousarray(self.counts, dtype=np.float64)
        counts.setflags(write=False)
        prefix = np.ascontiguousarray(self.prefix, dtype=np.float64)
        prefix.setflags(write=False)
        if len(prefix) != len(counts) + 1:
            raise ValueError(
                f"prefix has {len(prefix)} entries for {len(counts)} bins"
            )
        object.__setattr__(self, "counts", counts)
        object.__setattr__(self, "prefix", prefix)

    @property
    def n_bins(self) -> int:
        return len(self.counts)

    @property
    def nbytes(self) -> int:
        """Approximate resident size (cache byte-bound accounting)."""
        return int(self.counts.nbytes + self.prefix.nbytes)

    def point(self, bin_index: int) -> float:
        """The published count of one bin."""
        if not 0 <= bin_index < self.n_bins:
            raise ValueError(
                f"bin {bin_index} outside domain of {self.n_bins} bins"
            )
        return float(self.counts[bin_index])

    def range(self, lo: int, hi: int) -> float:
        """Sum over the half-open bin range ``[lo, hi)``.

        ``lo == hi`` is the legal empty range (answer 0.0); ``hi`` may
        equal ``n_bins`` for the full-domain query.
        """
        if not 0 <= lo <= hi <= self.n_bins:
            raise ValueError(
                f"range [{lo}, {hi}) outside domain of {self.n_bins} bins"
            )
        return float(self.prefix[hi] - self.prefix[lo])


def publish_artifact(spec: ServeSpec) -> PublishedArtifact:
    """Run the spec's publisher once, deterministically.

    The random stream is ``np.random.default_rng(spec.seed)``, so the
    same spec always produces a bit-identical artifact — the anchor of
    the replay determinism guarantee (docs/serving.md).
    """
    publisher = spec.to_experiment_spec().publisher_factory()
    rng = np.random.default_rng(spec.seed)
    started = time.perf_counter()
    result = publisher.publish(spec.histogram(), spec.epsilon, rng)
    elapsed = time.perf_counter() - started
    counts = result.histogram.counts
    return PublishedArtifact(
        spec=spec,
        fingerprint=spec.fingerprint(),
        counts=counts,
        prefix=prefix_sums(counts),
        epsilon_spent=float(result.epsilon_spent),
        publish_seconds=float(elapsed),
        meta={"publisher": getattr(publisher, "name", spec.publisher)},
    )
