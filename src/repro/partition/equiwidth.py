"""Equi-width partitioning.

The simplest structure: ``k`` buckets of (nearly) equal width, computed
without looking at the data.  Because it is data-independent it costs no
privacy budget, which makes it a useful control in the structure ablation
bench (``abl_sf_sampling``).
"""

from __future__ import annotations

from repro._validation import check_integer
from repro.partition.partition import Partition

__all__ = ["equiwidth_partition"]


def equiwidth_partition(n: int, k: int) -> Partition:
    """Split ``n`` bins into ``k`` buckets whose widths differ by <= 1.

    The first ``n % k`` buckets get the extra bin so widths are as even
    as possible.
    """
    check_integer(n, "n", minimum=1)
    check_integer(k, "k", minimum=1)
    if k > n:
        raise ValueError(f"k ({k}) cannot exceed n ({n})")
    base, extra = divmod(n, k)
    sizes = [base + 1] * extra + [base] * (k - extra)
    return Partition.from_bucket_sizes(sizes)
