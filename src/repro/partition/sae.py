"""L1 (absolute-error) segment costs and the L1 v-optimal DP.

The SAE of a segment is ``min_m sum_i |c_i - m|`` — attained at the
segment median.  Its key property for differential privacy: it is
**1-Lipschitz in every count** (``g(c, m) = sum |c_i - m|`` changes by at
most 1 when one count changes by 1, for every ``m``, so the min does
too), which makes SAE-scored exponential mechanisms usable with
sensitivity exactly 1 — no data-dependent cap needed.  StructureFirst's
boundary sampling is built on this (see DESIGN.md's substitution table).

``sae_matrix`` precomputes every segment's SAE in ``O(n^2 log n)`` with
an incremental two-heap median; ``l1_voptimal_table`` then runs the same
prefix DP as the SSE version over the precomputed matrix.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro._validation import check_counts, check_integer
from repro.partition.partition import Partition
from repro.perf.approx import ApproxDP, approx_tables
from repro.perf.costrows import DenseCost
from repro.perf.kernels import dp_tables, resolve_table_kernel

__all__ = [
    "sae_matrix",
    "L1VOptimalResult",
    "ApproxL1VOptimalResult",
    "l1_voptimal_table",
    "partition_sae",
]


def sae_matrix(counts: Sequence[float]) -> np.ndarray:
    """Matrix ``M`` with ``M[i, j] = SAE(counts[i:j])`` (0 where ``j <= i``).

    Shape ``(n, n + 1)``.  For each left endpoint ``i`` the right endpoint
    is extended one bin at a time while a two-heap running median keeps
    the SAE update O(log n).
    """
    arr = check_counts(counts, "counts")
    n = len(arr)
    matrix = np.zeros((n, n + 1), dtype=np.float64)
    for i in range(n):
        low: List[float] = []  # max-heap (negated): values <= median
        high: List[float] = []  # min-heap: values >= median
        low_sum = 0.0
        high_sum = 0.0
        for j in range(i, n):
            value = float(arr[j])
            if not low or value <= -low[0]:
                heapq.heappush(low, -value)
                low_sum += value
            else:
                heapq.heappush(high, value)
                high_sum += value
            # Rebalance so len(low) == len(high) or len(low) == len(high)+1.
            if len(low) > len(high) + 1:
                moved = -heapq.heappop(low)
                low_sum -= moved
                heapq.heappush(high, moved)
                high_sum += moved
            elif len(high) > len(low):
                moved = heapq.heappop(high)
                high_sum -= moved
                heapq.heappush(low, -moved)
                low_sum += moved
            median = -low[0]
            # SAE = sum(high) - sum(low) + median * (len(low) - len(high)).
            sae = (high_sum - len(high) * median) + (len(low) * median - low_sum)
            matrix[i, j + 1] = max(sae, 0.0)
    return matrix


@dataclass(frozen=True)
class L1VOptimalResult:
    """L1 analogue of :class:`~repro.partition.voptimal.VOptimalResult`."""

    n: int
    max_k: int
    sae_by_k: np.ndarray
    _choices: np.ndarray
    _opt: np.ndarray

    def sae_prefix_table(self) -> np.ndarray:
        """DP table ``opt[k][j]``: min total SAE of first j bins in k buckets."""
        view = self._opt.view()
        view.setflags(write=False)
        return view

    def partition_for(self, k: int) -> Partition:
        """Reconstruct the optimal ``k``-bucket L1 partition."""
        check_integer(k, "k", minimum=1)
        if k > self.max_k:
            raise ValueError(f"k={k} exceeds computed max_k={self.max_k}")
        from repro.partition.voptimal import backtrack_boundaries

        return Partition(
            n=self.n, boundaries=backtrack_boundaries(self._choices, self.n, k)
        )


@dataclass(frozen=True)
class ApproxL1VOptimalResult:
    """Sparse L1 result from the approximate (1+delta) kernel.

    Duck-types :class:`L1VOptimalResult` minus the dense prefix table
    (mirrors :class:`repro.partition.voptimal.ApproxVOptimalResult`).
    """

    n: int
    max_k: int
    sae_by_k: np.ndarray
    _dp: ApproxDP

    @property
    def delta(self) -> float:
        return self._dp.delta

    @property
    def delta_certified_by_k(self) -> np.ndarray:
        return self._dp.delta_certified_by_k

    def sae_prefix_table(self) -> np.ndarray:
        raise NotImplementedError(
            "the approx kernel keeps no dense prefix table; use an exact "
            "kernel when the full opt[k][j] table is required"
        )

    def partition_for(self, k: int) -> Partition:
        """Materialize the approx ``k``-bucket L1 partition."""
        check_integer(k, "k", minimum=1)
        if k > self.max_k:
            raise ValueError(f"k={k} exceeds computed max_k={self.max_k}")
        return Partition(n=self.n, boundaries=self._dp.boundaries_for(k))


def l1_voptimal_table(
    counts: Sequence[float],
    max_k: int,
    matrix: "np.ndarray | None" = None,
    kernel: Optional[str] = None,
) -> "L1VOptimalResult | ApproxL1VOptimalResult":
    """Prefix DP minimizing total SAE; same recurrence as the SSE DP.

    ``matrix`` may be a precomputed :func:`sae_matrix` to share work
    across calls.  ``kernel`` dispatches the DP engine exactly as in
    :func:`repro.partition.voptimal.voptimal_table` — the SAE cost also
    satisfies the concave quadrangle inequality, so the
    divide-and-conquer kernel returns bit-identical tables; ``"auto"``
    beyond the threshold and ``"approx"`` return the sparse
    :class:`ApproxL1VOptimalResult` (SAE's single-bin cost is zero, so
    the (1+delta) wavefront bound applies verbatim).
    """
    arr = check_counts(counts, "counts")
    n = len(arr)
    check_integer(max_k, "max_k", minimum=1)
    if max_k > n:
        raise ValueError(f"max_k ({max_k}) cannot exceed the number of bins ({n})")
    if matrix is None:
        matrix = sae_matrix(arr)
    if matrix.shape != (n, n + 1):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match counts of length {n}"
        )

    if resolve_table_kernel(kernel, n) == "approx":
        from repro.obs.trace import span

        with span("kernel.dp", kernel="approx", n=n, k=max_k):
            dp = approx_tables(DenseCost(matrix), max_k)
        return ApproxL1VOptimalResult(
            n=n, max_k=max_k, sae_by_k=dp.sse_by_k, _dp=dp
        )
    opt, choices = dp_tables(DenseCost(matrix), max_k, kernel=kernel)

    sae_by_k = np.full(max_k + 1, np.inf, dtype=np.float64)
    sae_by_k[1 : max_k + 1] = opt[1 : max_k + 1, n]
    return L1VOptimalResult(
        n=n, max_k=max_k, sae_by_k=sae_by_k, _choices=choices, _opt=opt
    )


def partition_sae(counts: Sequence[float], partition: Partition) -> float:
    """Total SAE of ``counts`` under ``partition`` (median per bucket)."""
    arr = check_counts(counts, "counts")
    if len(arr) != partition.n:
        raise ValueError(
            f"counts has {len(arr)} bins but partition covers {partition.n}"
        )
    total = 0.0
    for start, stop in partition.buckets():
        segment = arr[start:stop]
        total += float(np.abs(segment - np.median(segment)).sum())
    return total
