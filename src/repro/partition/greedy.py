"""Greedy (merge-based) approximate partitioning.

For very wide domains the exact ``O(n^2 k)`` v-optimal DP gets expensive;
the greedy partitioner starts from singleton buckets and repeatedly
merges the adjacent pair whose merge increases total SSE the least, until
``k`` buckets remain.  It is ``O(n log n)`` with a heap and typically
within a small factor of optimal — the scalability bench
(``fig_scalability``) quantifies the speed/quality trade.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

from repro._validation import check_counts, check_integer
from repro.partition.partition import Partition
from repro.partition.sse import SegmentStats

__all__ = ["greedy_partition"]


def greedy_partition(counts: Sequence[float], k: int) -> Tuple[Partition, float]:
    """Greedy bottom-up merge into ``k`` buckets; returns (partition, SSE).

    Uses a lazy-deletion heap keyed by the SSE increase of merging each
    adjacent bucket pair.  Stale heap entries are detected via a version
    counter per bucket.
    """
    arr = check_counts(counts, "counts")
    n = len(arr)
    check_integer(k, "k", minimum=1)
    if k > n:
        raise ValueError(f"k ({k}) cannot exceed the number of bins ({n})")

    stats = SegmentStats(arr)
    # Doubly linked list of live buckets, each a (start, stop) segment.
    starts: List[int] = list(range(n))
    stops: List[int] = [i + 1 for i in range(n)]
    prev: List[int] = [i - 1 for i in range(n)]
    nxt: List[int] = [i + 1 if i + 1 < n else -1 for i in range(n)]
    version: List[int] = [0] * n
    alive: List[bool] = [True] * n

    def merge_cost(a: int, b: int) -> float:
        merged = stats.segment_sse(starts[a], stops[b])
        return merged - stats.segment_sse(starts[a], stops[a]) - stats.segment_sse(
            starts[b], stops[b]
        )

    heap: List[Tuple[float, int, int, int, int]] = []
    for i in range(n - 1):
        heapq.heappush(heap, (merge_cost(i, i + 1), i, i + 1, 0, 0))

    buckets_left = n
    while buckets_left > k:
        cost, a, b, va, vb = heapq.heappop(heap)
        if not (alive[a] and alive[b]) or version[a] != va or version[b] != vb:
            continue  # stale entry
        # Merge b into a.
        stops[a] = stops[b]
        alive[b] = False
        version[a] += 1
        nxt[a] = nxt[b]
        if nxt[b] != -1:
            prev[nxt[b]] = a
        buckets_left -= 1
        if prev[a] != -1:
            p = prev[a]
            heapq.heappush(heap, (merge_cost(p, a), p, a, version[p], version[a]))
        if nxt[a] != -1:
            q = nxt[a]
            heapq.heappush(heap, (merge_cost(a, q), a, q, version[a], version[q]))

    boundaries = sorted(starts[i] for i in range(n) if alive[i] and starts[i] > 0)
    partition = Partition(n=n, boundaries=tuple(boundaries))
    total_sse = sum(
        stats.segment_sse(start, stop) for start, stop in partition.buckets()
    )
    return partition, float(total_sse)
