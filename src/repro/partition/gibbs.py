"""Exact exponential-mechanism sampling over the partition space.

The exponential mechanism over all ``C(n-1, k-1)`` contiguous k-bucket
partitions with utility ``u(P) = -cost(P)`` assigns

    Pr[P]  proportional to  exp(-alpha * cost(P)),
    alpha = eps / (2 * sensitivity(cost))

— a Gibbs distribution over segmentations.  Enumerating partitions is
intractable, but because the cost is additive over buckets the partition
function factorizes along a prefix dynamic program: replace the min of
the v-optimal DP with a log-sum-exp, then sample boundaries backward from
the softmax weights.  This draws from the Gibbs distribution *exactly*
(standard forward-filter backward-sample), in ``O(n^2 k)`` time — the
same cost as the v-optimal DP itself.

Costs are consumed **one column at a time** through the cost-rows
protocol (:mod:`repro.perf.costrows`): the forward filter only ever
needs ``cost(i, j)`` for the current prefix ``j``, and the backward
sampler touches ``k - 1`` columns.  Passing a lazy provider
(:class:`~repro.perf.costrows.LazySAECost`,
:class:`~repro.perf.costrows.PrefixSSECost`) therefore runs the whole
draw in ``O(n k)`` memory instead of materializing the dense
``(n, n + 1)`` cost matrix (``O(n^2)``).  A precomputed ndarray is still
accepted and wrapped in :class:`~repro.perf.costrows.DenseCost`.

At ``alpha -> 0`` the distribution degrades gracefully to uniform over
all feasible partitions (boundaries ~ uniform order statistics), not to
any degenerate shape; at ``alpha -> inf`` it concentrates on the
v-optimal partition.

StructureFirst uses this with the SAE cost (sensitivity 1), spending its
whole structure budget on one draw.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_rng, check_integer, check_non_negative
from repro.obs.trace import span
from repro.partition.partition import Partition
from repro.perf.costrows import as_cost_rows

__all__ = ["sample_partition_em", "log_partition_table"]


def _logsumexp(values: np.ndarray) -> float:
    """Numerically stable log(sum(exp(values))); -inf on empty/all -inf."""
    if values.size == 0:
        return -np.inf
    top = values.max()
    if not np.isfinite(top):
        return -np.inf
    return float(top + np.log(np.exp(values - top).sum()))


def log_partition_table(cost, k: int, alpha: float) -> np.ndarray:
    """Forward pass: ``L[level][j] = log sum over partitions of first j bins
    into `level` buckets of exp(-alpha * cost)``.

    ``cost`` is either a cost-rows provider (``.n`` and ``.column(j)``
    returning ``cost(i, j)`` for ``i in [0, j)``) or a dense
    ``(n, n + 1)`` matrix (e.g. :func:`repro.partition.sae.sae_matrix`).
    Infeasible states are ``-inf``.  Peak extra memory is one column
    plus the ``(k + 1, n + 1)`` table when a lazy provider is passed.
    """
    rows = as_cost_rows(cost)
    n = rows.n
    check_integer(k, "k", minimum=1)
    if k > n:
        raise ValueError(f"k ({k}) cannot exceed n ({n})")
    check_non_negative(alpha, "alpha")

    table = np.full((k + 1, n + 1), -np.inf, dtype=np.float64)
    table[0][0] = 0.0
    # One vectorized pass per prefix j computes every level at once:
    # table[level][j] = logsumexp_i(table[level-1][i] - alpha*cost(i, j)).
    # -inf entries of infeasible states propagate correctly through the
    # row-wise stable logsumexp below.
    for j in range(1, n + 1):
        # Only states reachable by backward sampling from (k, n) matter:
        # level <= j (enough bins before) and level >= k - (n - j)
        # (enough bins after for the remaining buckets).
        top = min(k, j)
        bottom = max(1, k - (n - j))
        if bottom > top:
            continue
        closing = alpha * rows.column(j)
        logits = table[bottom - 1 : top, :j] - closing[None, :]
        row_max = logits.max(axis=1)
        finite = np.isfinite(row_max)
        sums = np.zeros(top - bottom + 1, dtype=np.float64)
        if np.any(finite):
            shifted = logits[finite] - row_max[finite, None]
            sums[finite] = np.exp(shifted).sum(axis=1)
        with np.errstate(divide="ignore"):
            table[bottom : top + 1, j] = np.where(
                finite, row_max + np.log(np.maximum(sums, 1e-300)), -np.inf
            )
    return table


def sample_partition_em(
    cost,
    k: int,
    alpha: float,
    rng: "np.random.Generator | int | None" = None,
) -> Partition:
    """Draw one partition from the Gibbs distribution over k-bucket splits.

    Backward sampling: starting from the full prefix, the boundary
    closing the last bucket is drawn with log-weights
    ``L[k-1][i] - alpha * cost(i, n)`` via the Gumbel-max trick, then the
    procedure recurses on the prefix.  The joint draw is exactly
    ``Pr[P] ~ exp(-alpha * cost(P))``.

    ``cost`` follows the same contract as :func:`log_partition_table`
    (lazy cost-rows provider or dense ``(n, n + 1)`` matrix).
    """
    rows = as_cost_rows(cost)
    n = rows.n
    with span("gibbs.forward-filter", n=n, k=k):
        table = log_partition_table(rows, k, alpha)
    generator = as_rng(rng)

    with span("gibbs.backward-sample", n=n, k=k):
        boundaries = []
        j = n
        for level in range(k, 1, -1):
            lo = level - 1
            col = rows.column(j)
            logits = table[level - 1][lo:j] - alpha * col[lo:j]
            gumbel = generator.gumbel(0.0, 1.0, size=logits.shape)
            # -inf logits stay -inf after Gumbel noise: never selected.
            choice = int(np.argmax(logits + gumbel))
            j = lo + choice
            boundaries.append(j)
        boundaries.reverse()
    return Partition(n=n, boundaries=tuple(boundaries))
