"""Constant-time segment SSE via prefix sums.

The SSE of replacing a contiguous segment ``counts[i:j]`` by its mean is

    SSE(i, j) = sum(c**2) - (sum(c))**2 / (j - i)

which both the v-optimal dynamic program and StructureFirst's boundary
scorer evaluate O(n^2) times, so :class:`SegmentStats` precomputes prefix
sums of the counts and their squares once and answers each segment in
O(1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._validation import check_counts
from repro.partition.partition import Partition

__all__ = ["SegmentStats", "partition_sse"]


class SegmentStats:
    """Prefix-sum tables answering segment sum / mean / SSE in O(1)."""

    def __init__(self, counts: Sequence[float]) -> None:
        arr = check_counts(counts, "counts")
        self._n = len(arr)
        self._prefix = np.concatenate(([0.0], np.cumsum(arr)))
        self._prefix_sq = np.concatenate(([0.0], np.cumsum(arr * arr)))
        # Hoisted index buffer: sse_row slices this instead of allocating
        # a fresh np.arange per call (the DP calls sse_row n times, which
        # used to cost O(n^2) allocation churn per run).
        self._indices = np.arange(self._n + 1, dtype=np.int64)

    @property
    def n(self) -> int:
        """Number of bins the stats cover."""
        return self._n

    @property
    def prefix(self) -> np.ndarray:
        """Prefix sums ``P`` with ``P[j] = sum(counts[:j])`` (length n+1)."""
        return self._prefix

    @property
    def prefix_sq(self) -> np.ndarray:
        """Prefix sums of squares (length n+1)."""
        return self._prefix_sq

    @property
    def indices(self) -> np.ndarray:
        """The shared ``int64`` index buffer ``[0, 1, …, n]``."""
        return self._indices

    def _check(self, start: int, stop: int) -> None:
        if not 0 <= start < stop <= self._n:
            raise ValueError(
                f"segment [{start}, {stop}) invalid for {self._n} bins"
            )

    def segment_sum(self, start: int, stop: int) -> float:
        """Sum of counts over the half-open segment ``[start, stop)``."""
        self._check(start, stop)
        return float(self._prefix[stop] - self._prefix[start])

    def segment_mean(self, start: int, stop: int) -> float:
        """Mean of counts over ``[start, stop)``."""
        return self.segment_sum(start, stop) / (stop - start)

    def segment_sse(self, start: int, stop: int) -> float:
        """SSE of replacing ``counts[start:stop]`` by its mean.

        Clamped at zero: the closed form can dip a few ulp negative.
        """
        self._check(start, stop)
        total = self._prefix[stop] - self._prefix[start]
        total_sq = self._prefix_sq[stop] - self._prefix_sq[start]
        sse = total_sq - total * total / (stop - start)
        return float(max(sse, 0.0))

    def sse_row(self, stop: int) -> np.ndarray:
        """Vector of ``segment_sse(i, stop)`` for all ``i in [0, stop)``.

        Used by the dynamic program to process a whole DP row with numpy
        instead of a Python inner loop.  The hot path of the exact
        kernels calls this once per prefix, so it avoids every avoidable
        pass: the prefix tables are read through basic slices (no index
        gather), widths come from a reversed view of the shared index
        buffer, and the arithmetic runs in-place on the two unavoidable
        difference arrays — same operations in the same order as the
        closed form, so results are bit-identical to the historical
        ``totals_sq - totals * totals / widths``.
        """
        self._check(stop - 1, stop)
        totals = self._prefix[stop] - self._prefix[:stop]
        np.multiply(totals, totals, out=totals)
        widths = self._indices[stop:0:-1]  # stop - i for i in [0, stop)
        np.divide(totals, widths, out=totals)
        sse = self._prefix_sq[stop] - self._prefix_sq[:stop]
        np.subtract(sse, totals, out=sse)
        np.maximum(sse, 0.0, out=sse)
        return sse


def partition_sse(counts: Sequence[float], partition: Partition) -> float:
    """Total SSE of approximating ``counts`` by ``partition``'s bucket means.

    Vectorized over buckets: one prefix-diff per edge array instead of a
    Python loop of per-bucket ``segment_sse`` calls.
    """
    stats = SegmentStats(counts)
    if stats.n != partition.n:
        raise ValueError(
            f"counts has {stats.n} bins but partition covers {partition.n}"
        )
    edges = np.empty(partition.k + 1, dtype=np.int64)
    edges[0] = 0
    edges[1:-1] = partition.boundaries
    edges[-1] = partition.n
    totals = np.diff(stats.prefix[edges])
    totals_sq = np.diff(stats.prefix_sq[edges])
    widths = np.diff(edges)
    sse = totals_sq - totals * totals / widths
    return float(np.maximum(sse, 0.0).sum())
