"""The :class:`Partition` value type.

A partition of ``n`` bins into ``k`` contiguous buckets is stored as the
tuple of bucket *boundaries*: indices ``b_1 < b_2 < ... < b_{k-1}`` where
bucket ``j`` covers bins ``[b_{j-1}, b_j)`` (with ``b_0 = 0`` and
``b_k = n``).  Invariants are enforced on construction so downstream code
never sees an empty or overlapping bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro._validation import check_counts, check_integer
from repro.exceptions import PartitionError

__all__ = ["Partition"]


@dataclass(frozen=True)
class Partition:
    """A split of ``n`` ordered bins into contiguous, non-empty buckets."""

    n: int
    boundaries: Tuple[int, ...]

    def __post_init__(self) -> None:
        check_integer(self.n, "n", minimum=1)
        bounds = tuple(int(b) for b in self.boundaries)
        previous = 0
        for b in bounds:
            if not previous < b < self.n:
                raise PartitionError(
                    f"boundaries must be strictly increasing in (0, {self.n}); "
                    f"got {bounds}"
                )
            previous = b
        object.__setattr__(self, "boundaries", bounds)

    @classmethod
    def single_bucket(cls, n: int) -> "Partition":
        """The trivial partition merging all bins into one bucket."""
        return cls(n=n, boundaries=())

    @classmethod
    def singletons(cls, n: int) -> "Partition":
        """The identity partition: every bin is its own bucket."""
        check_integer(n, "n", minimum=1)
        return cls(n=n, boundaries=tuple(range(1, n)))

    @classmethod
    def from_bucket_sizes(cls, sizes: Sequence[int]) -> "Partition":
        """Build a partition from the widths of consecutive buckets."""
        sizes = [check_integer(s, "bucket size", minimum=1) for s in sizes]
        if not sizes:
            raise PartitionError("sizes must be non-empty")
        edges = np.cumsum(sizes)
        return cls(n=int(edges[-1]), boundaries=tuple(int(e) for e in edges[:-1]))

    @property
    def k(self) -> int:
        """Number of buckets."""
        return len(self.boundaries) + 1

    def buckets(self) -> Iterator[Tuple[int, int]]:
        """Yield each bucket as a half-open index range ``(start, stop)``."""
        start = 0
        for b in self.boundaries:
            yield (start, b)
            start = b
        yield (start, self.n)

    def bucket_sizes(self) -> List[int]:
        """Widths of the buckets, in order."""
        return [stop - start for start, stop in self.buckets()]

    def bucket_of(self, bin_index: int) -> int:
        """Index of the bucket containing ``bin_index``."""
        check_integer(bin_index, "bin_index", minimum=0)
        if bin_index >= self.n:
            raise ValueError(f"bin_index {bin_index} outside [0, {self.n})")
        return int(np.searchsorted(self.boundaries, bin_index, side="right"))

    def apply_means(self, counts: Sequence[float]) -> np.ndarray:
        """Replace each bin by its bucket's mean of ``counts``.

        This is the reconstruction both NoiseFirst and StructureFirst
        publish: a piecewise-constant approximation of the count vector.
        """
        arr = check_counts(counts, "counts")
        if len(arr) != self.n:
            raise PartitionError(
                f"counts has {len(arr)} bins but partition covers {self.n}"
            )
        out = np.empty_like(arr)
        for start, stop in self.buckets():
            out[start:stop] = arr[start:stop].mean()
        return out

    def bucket_sums(self, counts: Sequence[float]) -> np.ndarray:
        """Per-bucket sums of ``counts`` (length ``k``)."""
        arr = check_counts(counts, "counts")
        if len(arr) != self.n:
            raise PartitionError(
                f"counts has {len(arr)} bins but partition covers {self.n}"
            )
        return np.array(
            [arr[start:stop].sum() for start, stop in self.buckets()],
            dtype=np.float64,
        )

    def broadcast(self, bucket_values: Sequence[float]) -> np.ndarray:
        """Expand one value per bucket back into a length-``n`` vector."""
        values = np.asarray(bucket_values, dtype=np.float64)
        if len(values) != self.k:
            raise PartitionError(
                f"expected {self.k} bucket values, got {len(values)}"
            )
        out = np.empty(self.n, dtype=np.float64)
        for j, (start, stop) in enumerate(self.buckets()):
            out[start:stop] = values[j]
        return out

    def __str__(self) -> str:
        return f"Partition(n={self.n}, k={self.k})"
