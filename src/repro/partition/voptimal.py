"""Exact v-optimal partitioning by dynamic programming.

``voptimal_partition(counts, k)`` finds the contiguous ``k``-bucket
partition minimizing total SSE (Jagadish et al., VLDB 1998).
``voptimal_table`` exposes the full DP table — the optimal SSE for
*every* ``k' <= k`` — which NoiseFirst's adaptive bucket-count selection
consumes directly.

Two kernels compute the identical tables (dispatch via ``kernel=``):

* ``"exact_dc"`` (default) — divide-and-conquer DP optimization over the
  Monge/quadrangle-inequality structure of the SSE cost,
  ``O(n k log n)`` (:mod:`repro.perf.kernels`).
* ``"reference"`` — the original ``O(n^2 k)`` prefix loop, kept as the
  correctness anchor.

Both run the same floating-point operations per candidate and break ties
identically, so ``sse_by_k``, the prefix table, and every reconstructed
partition agree bit for bit (asserted by the property suite in
``tests/perf``).  See ``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro._validation import check_counts, check_integer
from repro.partition.partition import Partition
from repro.partition.sse import SegmentStats
from repro.perf.approx import ApproxDP, approx_tables
from repro.perf.costrows import PrefixSSECost
from repro.perf.kernels import dp_tables, resolve_table_kernel

__all__ = [
    "VOptimalResult",
    "ApproxVOptimalResult",
    "voptimal_table",
    "voptimal_partition",
]


def backtrack_boundaries(choices: np.ndarray, n: int, k: int) -> Tuple[int, ...]:
    """Reconstruct the ``k - 1`` boundaries from a DP choice table.

    Walks ``j -> choices[level][j]`` from ``(k, n)`` down to level 2 into
    a preallocated ``int64`` buffer — no per-level Python list append,
    no reversal, and safe for ``n`` beyond 32-bit (the table is int64
    end to end).  ``k = 1`` short-circuits to the empty boundary tuple.
    """
    if k == 1:
        return ()
    boundaries = np.empty(k - 1, dtype=np.int64)
    j = np.int64(n)
    for level in range(k, 1, -1):
        j = choices[level, j]
        boundaries[level - 2] = j
    return tuple(int(b) for b in boundaries)


@dataclass(frozen=True)
class VOptimalResult:
    """Output of the v-optimal DP: optimal SSE and partition per k.

    ``sse_by_k[k]`` is the minimal SSE achievable with exactly ``k``
    buckets (index 0 is unused and set to +inf).  ``partition_for(k)``
    reconstructs the argmin partition from the stored choice table.
    """

    n: int
    max_k: int
    sse_by_k: np.ndarray
    _choices: np.ndarray  # choices[k][j] = start of last bucket for prefix j
    _opt: np.ndarray  # opt[k][j] = min SSE of first j bins in k buckets

    def sse_prefix_table(self) -> np.ndarray:
        """The full DP table ``opt[k][j]`` (read-only view).

        ``opt[k][j]`` is the minimal SSE of splitting the first ``j``
        bins into exactly ``k`` buckets (+inf where infeasible).
        StructureFirst's exponential-mechanism sampling scores candidate
        boundaries with this table.
        """
        view = self._opt.view()
        view.setflags(write=False)
        return view

    def partition_for(self, k: int) -> Partition:
        """Reconstruct the optimal ``k``-bucket partition by backtracking."""
        check_integer(k, "k", minimum=1)
        if k > self.max_k:
            raise ValueError(f"k={k} exceeds computed max_k={self.max_k}")
        return Partition(
            n=self.n, boundaries=backtrack_boundaries(self._choices, self.n, k)
        )


@dataclass(frozen=True)
class ApproxVOptimalResult:
    """Sparse v-optimal result from the approximate (1+delta) kernel.

    Duck-types :class:`VOptimalResult` for every quantity the
    publishers consume — ``n``, ``max_k``, ``sse_by_k``,
    ``partition_for`` — without the ``O(k n)`` dense tables (2 GB at
    ``n = 2^20, k = 128``).  ``sse_by_k[k]`` is an upper bound on the
    exact optimum within the factor ``1 + delta_certified_by_k[k]``
    (:mod:`repro.perf.approx`); the materialized partition's true cost
    never exceeds it.  ``sse_prefix_table`` is deliberately absent —
    callers that need full prefix tables must request an exact kernel.
    """

    n: int
    max_k: int
    sse_by_k: np.ndarray
    _dp: ApproxDP

    @property
    def delta(self) -> float:
        """The configured target slack."""
        return self._dp.delta

    @property
    def delta_certified_by_k(self) -> np.ndarray:
        """Achieved multiplicative bound per bucket count."""
        return self._dp.delta_certified_by_k

    def sse_prefix_table(self) -> np.ndarray:
        raise NotImplementedError(
            "the approx kernel keeps no dense prefix table; use an exact "
            "kernel (exact_dc / exact_blocked / reference) when the full "
            "opt[k][j] table is required"
        )

    def partition_for(self, k: int) -> Partition:
        """Materialize the approx ``k``-bucket partition.

        True cost of the returned partition is at most ``sse_by_k[k]``
        (boundary truncation + refinement only ever decrease cost).
        """
        check_integer(k, "k", minimum=1)
        if k > self.max_k:
            raise ValueError(f"k={k} exceeds computed max_k={self.max_k}")
        return Partition(n=self.n, boundaries=self._dp.boundaries_for(k))


def voptimal_table(
    counts: Sequence[float],
    max_k: int,
    kernel: Optional[str] = None,
) -> "VOptimalResult | ApproxVOptimalResult":
    """Run the v-optimal DP for every bucket count ``1..max_k``.

    DP recurrence over prefixes: with ``OPT[k][j]`` the minimal SSE of
    splitting the first ``j`` bins into ``k`` buckets,

        OPT[1][j] = SSE(0, j)
        OPT[k][j] = min_{k-1 <= i < j} OPT[k-1][i] + SSE(i, j)

    ``kernel`` selects the DP engine: ``"auto"`` (default) runs
    ``exact_dc`` up to :data:`repro.perf.kernels.AUTO_APPROX_THRESHOLD`
    bins — bit-identical to the historical behavior — and the sparse
    approximate (1+delta) engine beyond it, returning an
    :class:`ApproxVOptimalResult`; ``"approx"`` forces the approximate
    engine at any size; ``"reference"`` is the O(n^2 k) anchor; ``None``
    defers to :func:`repro.perf.kernels.resolve_kernel`.
    """
    arr = check_counts(counts, "counts")
    n = len(arr)
    check_integer(max_k, "max_k", minimum=1)
    if max_k > n:
        raise ValueError(f"max_k ({max_k}) cannot exceed the number of bins ({n})")

    cost = PrefixSSECost(SegmentStats(arr))
    if resolve_table_kernel(kernel, n) == "approx":
        from repro.obs.trace import span

        with span("kernel.dp", kernel="approx", n=n, k=max_k):
            dp = approx_tables(cost, max_k)
        return ApproxVOptimalResult(
            n=n, max_k=max_k, sse_by_k=dp.sse_by_k, _dp=dp
        )
    opt, choices = dp_tables(cost, max_k, kernel=kernel)

    sse_by_k = np.full(max_k + 1, np.inf, dtype=np.float64)
    sse_by_k[1 : max_k + 1] = opt[1 : max_k + 1, n]
    return VOptimalResult(
        n=n, max_k=max_k, sse_by_k=sse_by_k, _choices=choices, _opt=opt
    )


def voptimal_partition(
    counts: Sequence[float],
    k: int,
    kernel: Optional[str] = None,
) -> Tuple[Partition, float]:
    """Optimal ``k``-bucket partition of ``counts`` and its SSE."""
    result = voptimal_table(counts, k, kernel=kernel)
    partition = result.partition_for(k)
    return partition, float(result.sse_by_k[k])
