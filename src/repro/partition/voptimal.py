"""Exact v-optimal partitioning by dynamic programming.

``voptimal_partition(counts, k)`` finds the contiguous ``k``-bucket
partition minimizing total SSE (Jagadish et al., VLDB 1998) in
``O(n^2 k)`` time and ``O(n k)`` space.  ``voptimal_table`` exposes the
full DP table — the optimal SSE for *every* ``k' <= k`` — which
NoiseFirst's adaptive bucket-count selection consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro._validation import check_counts, check_integer
from repro.partition.partition import Partition
from repro.partition.sse import SegmentStats

__all__ = ["VOptimalResult", "voptimal_table", "voptimal_partition"]


@dataclass(frozen=True)
class VOptimalResult:
    """Output of the v-optimal DP: optimal SSE and partition per k.

    ``sse_by_k[k]`` is the minimal SSE achievable with exactly ``k``
    buckets (index 0 is unused and set to +inf).  ``partition_for(k)``
    reconstructs the argmin partition from the stored choice table.
    """

    n: int
    max_k: int
    sse_by_k: np.ndarray
    _choices: np.ndarray  # choices[k][j] = start of last bucket for prefix j
    _opt: np.ndarray  # opt[k][j] = min SSE of first j bins in k buckets

    def sse_prefix_table(self) -> np.ndarray:
        """The full DP table ``opt[k][j]`` (read-only view).

        ``opt[k][j]`` is the minimal SSE of splitting the first ``j``
        bins into exactly ``k`` buckets (+inf where infeasible).
        StructureFirst's exponential-mechanism sampling scores candidate
        boundaries with this table.
        """
        view = self._opt.view()
        view.setflags(write=False)
        return view

    def partition_for(self, k: int) -> Partition:
        """Reconstruct the optimal ``k``-bucket partition by backtracking."""
        check_integer(k, "k", minimum=1)
        if k > self.max_k:
            raise ValueError(f"k={k} exceeds computed max_k={self.max_k}")
        boundaries: List[int] = []
        j = self.n
        for level in range(k, 1, -1):
            j = int(self._choices[level][j])
            boundaries.append(j)
        boundaries.reverse()
        return Partition(n=self.n, boundaries=tuple(boundaries))


def voptimal_table(counts: Sequence[float], max_k: int) -> VOptimalResult:
    """Run the v-optimal DP for every bucket count ``1..max_k``.

    DP recurrence over prefixes: with ``OPT[k][j]`` the minimal SSE of
    splitting the first ``j`` bins into ``k`` buckets,

        OPT[1][j] = SSE(0, j)
        OPT[k][j] = min_{k-1 <= i < j} OPT[k-1][i] + SSE(i, j)

    The inner minimization is vectorized over ``i`` using
    :meth:`SegmentStats.sse_row`.
    """
    arr = check_counts(counts, "counts")
    n = len(arr)
    check_integer(max_k, "max_k", minimum=1)
    if max_k > n:
        raise ValueError(f"max_k ({max_k}) cannot exceed the number of bins ({n})")

    stats = SegmentStats(arr)
    inf = np.inf
    # opt[k][j]: minimal SSE for first j bins in exactly k buckets.
    opt = np.full((max_k + 1, n + 1), inf, dtype=np.float64)
    choices = np.zeros((max_k + 1, n + 1), dtype=np.int64)
    opt[0][0] = 0.0

    # Process prefixes left to right; for each j one vectorized pass
    # computes opt[k][j] for every k at once.  Infeasible states stay
    # +inf automatically (opt[k-1][i] is +inf for i < k-1).
    for j in range(1, n + 1):
        sse_last = stats.sse_row(j)  # sse_last[i] = SSE(i, j)
        opt[1][j] = sse_last[0]
        choices[1][j] = 0
        top = min(max_k, j)  # k cannot exceed the prefix length
        if top >= 2:
            candidates = opt[1:top, :j] + sse_last[None, :j]
            best = np.argmin(candidates, axis=1)
            rows = np.arange(top - 1)
            opt[2 : top + 1, j] = candidates[rows, best]
            choices[2 : top + 1, j] = best

    sse_by_k = np.full(max_k + 1, inf, dtype=np.float64)
    sse_by_k[1 : max_k + 1] = opt[1 : max_k + 1, n]
    return VOptimalResult(
        n=n, max_k=max_k, sse_by_k=sse_by_k, _choices=choices, _opt=opt
    )


def voptimal_partition(
    counts: Sequence[float], k: int
) -> Tuple[Partition, float]:
    """Optimal ``k``-bucket partition of ``counts`` and its SSE."""
    result = voptimal_table(counts, k)
    partition = result.partition_for(k)
    return partition, float(result.sse_by_k[k])
