"""Histogram bucket partitioning.

A *partition* splits the ``n`` ordered bins into ``k`` contiguous
buckets.  The quality of a partition is its SSE — the L2 error of
replacing each bin with its bucket's mean — and the *v-optimal* partition
minimizes SSE for a given ``k`` (Jagadish et al., VLDB 1998).  Both
NoiseFirst (post-processing a noisy histogram) and StructureFirst
(scoring candidate boundaries inside the exponential mechanism) are built
on the machinery in this package.
"""

from repro.partition.partition import Partition
from repro.partition.sse import SegmentStats, partition_sse
from repro.partition.voptimal import (
    ApproxVOptimalResult,
    VOptimalResult,
    voptimal_partition,
    voptimal_table,
)
from repro.partition.greedy import greedy_partition
from repro.partition.equiwidth import equiwidth_partition

__all__ = [
    "Partition",
    "SegmentStats",
    "partition_sse",
    "VOptimalResult",
    "ApproxVOptimalResult",
    "voptimal_partition",
    "voptimal_table",
    "greedy_partition",
    "equiwidth_partition",
]
