"""Coarse-grid exponential-mechanism sampling for big-n structure draws.

The exact Gibbs sampler (:mod:`repro.partition.gibbs`) runs its forward
filter over every prefix — ``O(n^2)`` cost-column work — which is a
quadratic wall for StructureFirst and DAWA-lite beyond a few thousand
bins.  This module bounds the filter by sampling the partition over a
**data-independent uniform grid** of at most ``max_cells`` super-cells
and mapping the sampled cell boundaries back to bin indices.

Privacy is unchanged: the grid depends only on ``n`` (public), the
coarsened histogram is a fixed linear projection of the data, and one
record still changes exactly one cell count by 1 — so the SAE utility
keeps sensitivity exactly 1 and the draw remains a valid exponential
mechanism at the same ``alpha``.  For SSE utilities the per-cell count
cap scales with the cell width (a cell holds up to ``width`` capped
bins); callers must widen their sensitivity bound accordingly
(:class:`repro.core.structure_first.StructureFirst` does).

What changes is the *support*: boundaries land on cell edges, so the
sampled partition is the Gibbs draw over the restricted (but still
exponentially large) family of grid-aligned partitions, and the bucket
count is capped at the cell count.  The concession is **resolution**:
structure finer than one cell width ``w = ceil(n / max_cells)`` —
single-bin spikes, step edges between grid lines — cannot be isolated,
and the structural cost exceeds the exact sampler's by at most ``w``
times the counts' total variation (each boundary slides at most ``w``
bins).  That additive band, not a relative one, is what the big-n
suite (``tests/perf/test_bign.py``) holds the coarse draw to; it also
checks that the loss shrinks monotonically as ``max_cells`` grows.  At
the default ``max_cells = 2048`` a ``n = 2^20`` draw runs in seconds.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro._validation import check_counts, check_integer
from repro.partition.gibbs import sample_partition_em
from repro.partition.partition import Partition

__all__ = [
    "COARSE_MAX_CELLS",
    "uniform_cell_edges",
    "coarsen_counts",
    "coarse_sample_partition_em",
]

#: Default ceiling on the number of super-cells the Gibbs filter sees.
#: 2048 keeps the O(cells^2) forward filter in seconds while leaving
#: boundary resolution far below the noise floor at bench epsilons.
COARSE_MAX_CELLS = 2048


def uniform_cell_edges(n: int, max_cells: int) -> np.ndarray:
    """Edges of ``min(n, max_cells)`` near-equal cells covering ``[0, n)``.

    Pure integer arithmetic on public quantities (``edges[c] = c * n //
    m``), so the grid is data-independent — the privacy argument above
    rests on this.  Cell widths differ by at most one bin.
    """
    check_integer(n, "n", minimum=1)
    check_integer(max_cells, "max_cells", minimum=1)
    cells = min(n, max_cells)
    return np.arange(cells + 1, dtype=np.int64) * n // cells


def coarsen_counts(counts: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Sum ``counts`` within each cell of ``edges`` (one reduceat pass)."""
    return np.add.reduceat(counts, edges[:-1])


def coarse_sample_partition_em(
    counts,
    k: int,
    alpha: float,
    rng: "np.random.Generator | int | None" = None,
    max_cells: int = COARSE_MAX_CELLS,
    cost_factory: Optional[Callable[[np.ndarray], object]] = None,
) -> Partition:
    """Gibbs partition draw, coarsened to ``max_cells`` when ``n`` exceeds it.

    At or below ``max_cells`` bins this is exactly
    :func:`repro.partition.gibbs.sample_partition_em` — bit-identical,
    same rng stream.  Above it, the draw runs on the uniform-grid
    coarsening and the sampled boundaries are mapped back to bin
    indices; the bucket count is capped at the cell count.

    ``cost_factory`` builds the cost-rows provider from a counts vector
    (defaults to the sensitivity-1 :class:`~repro.perf.costrows.
    LazySAECost`); it is applied to the *coarsened* counts, so
    data-dependent sensitivity bounds must already account for cell
    aggregation (see the module docstring).
    """
    arr = check_counts(counts, "counts")
    n = len(arr)
    check_integer(k, "k", minimum=1)
    if cost_factory is None:
        from repro.perf.costrows import LazySAECost

        cost_factory = LazySAECost

    if n <= max_cells:
        return sample_partition_em(cost_factory(arr), min(k, n), alpha, rng=rng)

    edges = uniform_cell_edges(n, max_cells)
    cells = coarsen_counts(arr, edges)
    k_eff = min(k, len(cells))
    coarse = sample_partition_em(cost_factory(cells), k_eff, alpha, rng=rng)
    boundaries = tuple(int(edges[b]) for b in coarse.boundaries)
    return Partition(n=n, boundaries=boundaries)
