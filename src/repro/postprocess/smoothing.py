"""Shape-constrained smoothing of published histograms.

When the true distribution is known (publicly) to have a structural
property — degree distributions decay monotonically, for example —
projecting the noisy release onto that shape is free post-processing
that can reduce error substantially.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_counts, check_integer

__all__ = ["isotonic_decreasing", "moving_average"]


def isotonic_decreasing(counts: np.ndarray) -> np.ndarray:
    """L2 projection onto non-increasing sequences (PAVA).

    The pool-adjacent-violators algorithm: scan left to right, merging
    blocks whose means violate the ordering.  O(n).
    """
    arr = check_counts(counts, "counts")
    # Blocks as (mean, weight) stacks; non-increasing means each new
    # block's mean must be <= the previous block's mean.
    means = []
    weights = []
    for value in arr:
        means.append(float(value))
        weights.append(1.0)
        while len(means) > 1 and means[-2] < means[-1]:
            total_w = weights[-2] + weights[-1]
            merged = (means[-2] * weights[-2] + means[-1] * weights[-1]) / total_w
            means[-2:] = [merged]
            weights[-2:] = [total_w]
    out = np.empty(len(arr), dtype=np.float64)
    idx = 0
    for mean, weight in zip(means, weights):
        width = int(weight)
        out[idx : idx + width] = mean
        idx += width
    return out


def moving_average(counts: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge truncation.

    ``window`` must be odd so the filter is symmetric.  Near the edges
    the window shrinks rather than padding, so totals shift slightly;
    use for display/diagnostics, not for totals-sensitive analysis.
    """
    arr = check_counts(counts, "counts")
    check_integer(window, "window", minimum=1)
    if window % 2 == 0:
        raise ValueError(f"window must be odd, got {window}")
    half = window // 2
    out = np.empty(len(arr), dtype=np.float64)
    for i in range(len(arr)):
        lo = max(0, i - half)
        hi = min(len(arr), i + half + 1)
        out[i] = arr[lo:hi].mean()
    return out
