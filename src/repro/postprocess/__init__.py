"""Post-processing of published histograms.

Everything here operates only on already-released (noisy) values, so by
the post-processing property of differential privacy none of it costs
additional budget.
"""

from repro.postprocess.clamp import clamp_non_negative, clamp_and_rescale
from repro.postprocess.rounding import round_to_integers
from repro.postprocess.consistency import enforce_sum
from repro.postprocess.smoothing import isotonic_decreasing, moving_average

__all__ = [
    "clamp_non_negative",
    "clamp_and_rescale",
    "round_to_integers",
    "enforce_sum",
    "isotonic_decreasing",
    "moving_average",
]
