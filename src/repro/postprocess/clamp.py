"""Non-negativity post-processing.

Laplace noise routinely pushes small counts below zero.  Clamping at zero
is the simplest fix; it biases totals upward, so :func:`clamp_and_rescale`
optionally restores the (noisy) total after clamping.
"""

from __future__ import annotations

import numpy as np

from repro.hist.histogram import Histogram

__all__ = ["clamp_non_negative", "clamp_and_rescale"]


def clamp_non_negative(hist: Histogram) -> Histogram:
    """Clamp every count at zero."""
    return hist.with_counts(np.clip(hist.counts, 0.0, None))


def clamp_and_rescale(hist: Histogram) -> Histogram:
    """Clamp at zero, then rescale so the total is preserved.

    If everything clamps to zero the clamped histogram is returned
    unscaled (there is no mass to redistribute).  A negative pre-clamp
    total is treated as zero.
    """
    target = max(hist.total, 0.0)
    clamped = np.clip(hist.counts, 0.0, None)
    mass = clamped.sum()
    if mass <= 0:
        return hist.with_counts(clamped)
    return hist.with_counts(clamped * (target / mass))
