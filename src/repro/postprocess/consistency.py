"""Consistency constraints on released values.

:func:`enforce_sum` projects a count vector onto the hyperplane of
vectors with a given total — the least-squares-optimal way to make a
histogram agree with a separately published (or public) total.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_counts

__all__ = ["enforce_sum"]


def enforce_sum(counts: np.ndarray, target_total: float) -> np.ndarray:
    """L2-project ``counts`` onto ``{x : sum(x) = target_total}``.

    The projection spreads the total discrepancy evenly over the bins,
    which is the minimum-L2-distortion correction.
    """
    arr = check_counts(counts, "counts")
    if not np.isfinite(target_total):
        raise ValueError(f"target_total must be finite, got {target_total!r}")
    gap = (float(target_total) - arr.sum()) / len(arr)
    return arr + gap
