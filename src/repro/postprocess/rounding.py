"""Integer rounding that preserves the (rounded) total.

Published counts are often consumed by systems that expect integers.
Largest-remainder rounding keeps the total exact and each count within 1
of its real-valued input.
"""

from __future__ import annotations

import numpy as np

from repro.hist.histogram import Histogram

__all__ = ["round_to_integers"]


def round_to_integers(hist: Histogram) -> Histogram:
    """Round counts to integers, preserving the rounded total.

    Counts are clamped at zero first (negative integer counts are rarely
    meaningful downstream); the result sums to ``round(max(total, 0))``.
    """
    clamped = np.clip(hist.counts, 0.0, None)
    target = int(round(max(hist.total, 0.0)))
    if clamped.sum() <= 0:
        return hist.with_counts(np.zeros_like(clamped))
    shares = clamped / clamped.sum() * target
    floors = np.floor(shares).astype(np.int64)
    shortfall = target - int(floors.sum())
    if shortfall > 0:
        order = np.argsort(shares - floors)[::-1]
        floors[order[:shortfall]] += 1
    return hist.with_counts(floors.astype(np.float64))
