"""Shared argument-validation helpers.

Every public entry point in :mod:`repro` validates its inputs eagerly and
raises a descriptive :class:`ValueError` / :class:`TypeError` rather than
letting a malformed value propagate into numpy broadcasting.  The helpers
here centralize the checks so error messages stay consistent across the
library.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_integer",
    "check_counts",
    "as_rng",
]


def check_positive(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number > 0, else raise ValueError."""
    value = _check_finite_number(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number >= 0, else raise ValueError."""
    value = _check_finite_number(value, name)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return ``value`` if it lies in [0, 1], else raise ValueError."""
    value = _check_finite_number(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    inclusive: bool = True,
) -> float:
    """Return ``value`` if it lies in the given interval, else raise."""
    value = _check_finite_number(value, name)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_integer(value: int, name: str, minimum: Optional[int] = None) -> int:
    """Return ``value`` as ``int`` if integral (and >= minimum), else raise."""
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_counts(counts: Sequence[float], name: str = "counts") -> np.ndarray:
    """Validate a histogram count vector and return it as a float64 array.

    Accepts any 1-D sequence of finite numbers.  Counts may be fractional
    (noisy counts are) and may be negative (noise can push them below
    zero), but must be finite and non-empty.
    """
    arr = np.asarray(counts, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr


def as_rng(rng: "np.random.Generator | int | None") -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministic generator; an integer is used
    as a seed; a generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        return np.random.default_rng(int(rng))
    raise TypeError(
        "rng must be a numpy Generator, an int seed, or None, "
        f"got {type(rng).__name__}"
    )


def _check_finite_number(value: float, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float, np.number)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value
