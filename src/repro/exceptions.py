"""Exception hierarchy for :mod:`repro`.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class.  Privacy-accounting violations get their own
subclass because they signal a *correctness* problem (a mechanism trying
to spend budget it does not have), which callers typically must not
swallow.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "BudgetExceededError",
    "BudgetError",
    "PartitionError",
    "DomainMismatchError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class BudgetError(ReproError):
    """Base class for privacy-budget accounting errors."""


class BudgetExceededError(BudgetError):
    """Raised when a mechanism attempts to spend more budget than remains."""

    def __init__(self, requested: float, remaining: float) -> None:
        self.requested = requested
        self.remaining = remaining
        super().__init__(
            f"privacy budget exceeded: requested epsilon={requested:g} "
            f"but only {remaining:g} remains"
        )


class PartitionError(ReproError):
    """Raised when a bucket partition violates its structural invariants."""


class DomainMismatchError(ReproError):
    """Raised when two histograms/queries disagree on their domain."""
