"""Exception hierarchy for :mod:`repro`.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class.  Privacy-accounting violations get their own
subclass because they signal a *correctness* problem (a mechanism trying
to spend budget it does not have), which callers typically must not
swallow.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "BudgetExceededError",
    "BudgetError",
    "PartitionError",
    "DomainMismatchError",
    "RobustnessError",
    "TrialFailureError",
    "TrialTimeoutError",
    "WorkerCrashError",
    "TrialQuarantinedError",
    "JournalError",
    "HistoryError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class BudgetError(ReproError):
    """Base class for privacy-budget accounting errors."""


class BudgetExceededError(BudgetError):
    """Raised when a mechanism attempts to spend more budget than remains."""

    def __init__(self, requested: float, remaining: float) -> None:
        self.requested = requested
        self.remaining = remaining
        super().__init__(
            f"privacy budget exceeded: requested epsilon={requested:g} "
            f"but only {remaining:g} remains"
        )


class PartitionError(ReproError):
    """Raised when a bucket partition violates its structural invariants."""


class DomainMismatchError(ReproError):
    """Raised when two histograms/queries disagree on their domain."""


class RobustnessError(ReproError):
    """Base class for fault-tolerant execution errors (``repro.robust``)."""


class TrialFailureError(RobustnessError):
    """One (publisher, seed, epsilon) trial failed inside the executor.

    Carries the identity of the failed cell so supervisors can journal a
    structured :class:`~repro.robust.records.FailedRecord` instead of an
    opaque traceback.  Subclasses distinguish *how* the trial failed;
    ``cause`` preserves the underlying error text when one exists.
    """

    def __init__(
        self,
        spec_name: str = "",
        publisher: str = "",
        seed: int = -1,
        epsilon: float = float("nan"),
        cause: str = "",
        message: str = "",
    ) -> None:
        self.spec_name = spec_name
        self.publisher = publisher
        self.seed = seed
        self.epsilon = epsilon
        self.cause = cause
        if not message:
            message = (
                f"trial failed: spec={spec_name!r} publisher={publisher!r} "
                f"seed={seed} epsilon={epsilon:g}"
            )
            if cause:
                message += f" (cause: {cause})"
        super().__init__(message)


class TrialTimeoutError(TrialFailureError):
    """A trial exceeded its wall-clock timeout (hung worker)."""


class WorkerCrashError(TrialFailureError):
    """A worker process died abruptly (segfault, OOM-kill, ``os._exit``)."""


class TrialQuarantinedError(TrialFailureError):
    """A poison-pill trial exhausted its retry budget and was quarantined."""


class JournalError(RobustnessError):
    """Raised on unusable checkpoint-journal input (bad schema, bad path)."""


class HistoryError(ReproError):
    """Raised on unusable run-history input (``repro.obs.history``):
    an unclassifiable ingest source, or a store written by a newer
    schema than this build understands."""
