"""The exponential mechanism (McSherry & Talwar, FOCS 2007).

Selects a candidate ``r`` with probability proportional to
``exp(epsilon * u(D, r) / (2 * Delta_u))`` where ``u`` is the utility
score and ``Delta_u`` its sensitivity.  StructureFirst uses this to pick
histogram bucket boundaries.

Two samplers are provided:

* :func:`exponential_mechanism` — normalizes scores with the log-sum-exp
  trick and draws from the categorical distribution.
* :func:`gumbel_argmax` — the numerically robust equivalent formulation
  ``argmax_r (eps * u_r / (2 Delta) + Gumbel(0, 1))``; exact, never
  underflows, O(n).  StructureFirst uses this form.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._validation import as_rng, check_counts, check_positive

__all__ = ["exponential_probabilities", "exponential_mechanism", "gumbel_argmax"]


def exponential_probabilities(
    scores: Sequence[float],
    epsilon: float,
    sensitivity: float,
) -> np.ndarray:
    """Return the exact selection probabilities of the exponential mechanism.

    Useful for tests and for analytic error computations.  Uses the
    log-sum-exp trick so very negative scores never underflow to a NaN
    distribution.
    """
    arr = check_counts(scores, "scores")
    check_positive(epsilon, "epsilon")
    check_positive(sensitivity, "sensitivity")
    logits = (epsilon / (2.0 * sensitivity)) * arr
    logits -= logits.max()
    weights = np.exp(logits)
    return weights / weights.sum()


def exponential_mechanism(
    scores: Sequence[float],
    epsilon: float,
    sensitivity: float,
    rng: "np.random.Generator | int | None" = None,
) -> int:
    """Draw an index from the exponential mechanism over ``scores``.

    Higher score means more likely.  Returns the selected index.
    """
    probs = exponential_probabilities(scores, epsilon, sensitivity)
    generator = as_rng(rng)
    return int(generator.choice(len(probs), p=probs))


def gumbel_argmax(
    scores: Sequence[float],
    epsilon: float,
    sensitivity: float,
    rng: "np.random.Generator | int | None" = None,
) -> int:
    """Exponential-mechanism draw via the Gumbel-max trick.

    ``argmax_i (logit_i + G_i)`` with ``G_i ~ Gumbel(0, 1)`` i.i.d. is
    distributed exactly as a softmax draw over the logits, so this is an
    exact (not approximate) implementation of the exponential mechanism
    that avoids computing the partition function.
    """
    arr = check_counts(scores, "scores")
    check_positive(epsilon, "epsilon")
    check_positive(sensitivity, "sensitivity")
    logits = (epsilon / (2.0 * sensitivity)) * arr
    generator = as_rng(rng)
    gumbel = generator.gumbel(0.0, 1.0, size=arr.shape)
    return int(np.argmax(logits + gumbel))
