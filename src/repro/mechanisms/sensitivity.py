"""Sensitivity derivations used by the publishers.

Differential privacy calibrates noise to the worst-case change a single
record can cause.  The functions here encode the standard facts used
throughout the library, with the neighbouring-dataset convention made
explicit:

* ``unbounded`` — neighbours differ by *adding or removing* one record
  (one bin count changes by 1).
* ``bounded`` — neighbours differ by *changing* one record (one count
  goes up by 1 and another goes down by 1).
"""

from __future__ import annotations

from repro._validation import check_integer, check_non_negative

__all__ = [
    "histogram_sensitivity",
    "range_sum_sensitivity",
    "sse_sensitivity_bound",
]

_VALID_NEIGHBOURS = ("unbounded", "bounded")


def _check_neighbours(neighbours: str) -> str:
    if neighbours not in _VALID_NEIGHBOURS:
        raise ValueError(
            f"neighbours must be one of {_VALID_NEIGHBOURS}, got {neighbours!r}"
        )
    return neighbours


def histogram_sensitivity(neighbours: str = "unbounded") -> float:
    """L1 sensitivity of the full histogram count vector.

    Unbounded: one count changes by 1, so L1 distance is 1.
    Bounded: one record moves between bins, two counts change by 1 each.
    """
    _check_neighbours(neighbours)
    return 1.0 if neighbours == "unbounded" else 2.0


def range_sum_sensitivity(neighbours: str = "unbounded") -> float:
    """L1 sensitivity of a single range-count query.

    A range either contains the changed record's bin(s) or not; in the
    bounded case the moved record can leave one in-range bin and enter
    another in-range bin (net 0) or cross the range boundary (net 1), so
    the sensitivity stays 1 for a *single* range.  For a *vector* of
    disjoint ranges the unbounded sensitivity is also 1 (parallel
    composition over bins).
    """
    _check_neighbours(neighbours)
    return 1.0


def sse_sensitivity_bound(count_cap: float, neighbours: str = "unbounded") -> float:
    """Upper bound on the sensitivity of a bucket's sum of squared errors.

    StructureFirst scores candidate bucket boundaries by the SSE of the
    bucket ``B``: ``SSE(B) = sum_i (c_i - mean(B))**2``.  If one count
    inside a bucket of width ``b`` changes by 1 (unbounded neighbours),
    algebra on ``SSE = sum c_i^2 - b * mean^2`` gives

        |Delta SSE| = |2 (c_i - mean) + 1 - 1/b| <= 2 * spread + 1

    where ``spread = max_i |c_i - mean(B)|``.  The spread is data-
    dependent, so a *public* per-bin count cap ``C`` (from the dataset
    schema, never the data) yields the worst-case bound ``2C + 1``.  In
    the bounded model two counts change, doubling the bound.

    This is the documented substitution for the sensitivity constant of
    the original paper (see DESIGN.md): it rescales the exponential
    mechanism's effective budget by a constant and leaves the relative
    ordering of algorithms intact.
    """
    check_non_negative(count_cap, "count_cap")
    _check_neighbours(neighbours)
    base = 2.0 * float(count_cap) + 1.0
    return base if neighbours == "unbounded" else 2.0 * base
