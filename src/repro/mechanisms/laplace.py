"""The Laplace mechanism (Dwork et al., TCC 2006).

For a numeric query ``f`` with L1 sensitivity ``Delta f``, releasing
``f(D) + Lap(Delta f / epsilon)`` satisfies ``epsilon``-differential
privacy.  This module provides both a functional interface
(:func:`laplace_noise`) and a small callable class
(:class:`LaplaceMechanism`) used by the publishers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro._validation import as_rng, check_positive

__all__ = ["laplace_scale", "laplace_noise", "LaplaceMechanism"]

ArrayLike = Union[float, Sequence[float], np.ndarray]


def laplace_scale(epsilon: float, sensitivity: float = 1.0) -> float:
    """Return the Laplace scale ``b = sensitivity / epsilon``.

    The per-coordinate noise variance is ``2 b**2``.
    """
    check_positive(epsilon, "epsilon")
    check_positive(sensitivity, "sensitivity")
    return sensitivity / epsilon


def laplace_noise(
    epsilon: float,
    size: Union[int, tuple] = 1,
    sensitivity: float = 1.0,
    rng: "np.random.Generator | int | None" = None,
) -> np.ndarray:
    """Draw i.i.d. Laplace noise calibrated to ``epsilon`` and ``sensitivity``.

    Parameters
    ----------
    epsilon:
        Privacy budget for this release; must be > 0.
    size:
        Shape of the returned noise array.
    sensitivity:
        L1 sensitivity of the query being protected (default 1, the
        sensitivity of a histogram's count vector under unbounded
        neighbours).
    rng:
        Numpy generator, integer seed, or None for nondeterministic.

    Returns
    -------
    numpy.ndarray of the requested shape.
    """
    scale = laplace_scale(epsilon, sensitivity)
    generator = as_rng(rng)
    return generator.laplace(loc=0.0, scale=scale, size=size)


@dataclass(frozen=True)
class LaplaceMechanism:
    """Reusable Laplace mechanism bound to a sensitivity.

    Example
    -------
    >>> mech = LaplaceMechanism(sensitivity=1.0)
    >>> noisy = mech.release([3.0, 5.0, 2.0], epsilon=0.5, rng=0)
    >>> noisy.shape
    (3,)
    """

    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.sensitivity, "sensitivity")

    def scale(self, epsilon: float) -> float:
        """Laplace scale used for a release at the given ``epsilon``."""
        return laplace_scale(epsilon, self.sensitivity)

    def variance(self, epsilon: float) -> float:
        """Per-coordinate noise variance of a release at ``epsilon``."""
        b = self.scale(epsilon)
        return 2.0 * b * b

    def release(
        self,
        values: ArrayLike,
        epsilon: float,
        rng: "np.random.Generator | int | None" = None,
    ) -> np.ndarray:
        """Return ``values`` perturbed with calibrated Laplace noise."""
        arr = np.asarray(values, dtype=np.float64)
        if not np.all(np.isfinite(arr)):
            raise ValueError("values must be finite")
        noise = laplace_noise(
            epsilon, size=arr.shape, sensitivity=self.sensitivity, rng=rng
        )
        return arr + noise
