"""The Gaussian mechanism for (epsilon, delta)-differential privacy.

Included for completeness (some baselines in the broader literature, e.g.
DPPro, are (eps, delta)-DP).  The classic calibration
``sigma >= sqrt(2 ln(1.25/delta)) * Delta_2 / epsilon`` (Dwork & Roth,
2014) requires ``epsilon < 1``; we validate that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro._validation import as_rng, check_in_range, check_positive

__all__ = ["gaussian_sigma", "GaussianMechanism"]

ArrayLike = Union[float, Sequence[float], np.ndarray]


def gaussian_sigma(epsilon: float, delta: float, l2_sensitivity: float = 1.0) -> float:
    """Return the standard deviation of classic Gaussian-mechanism noise."""
    check_in_range(epsilon, "epsilon", 0.0, 1.0, inclusive=False)
    check_in_range(delta, "delta", 0.0, 1.0, inclusive=False)
    check_positive(l2_sensitivity, "l2_sensitivity")
    return float(np.sqrt(2.0 * np.log(1.25 / delta)) * l2_sensitivity / epsilon)


@dataclass(frozen=True)
class GaussianMechanism:
    """(epsilon, delta)-DP additive Gaussian noise bound to an L2 sensitivity."""

    l2_sensitivity: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.l2_sensitivity, "l2_sensitivity")

    def sigma(self, epsilon: float, delta: float) -> float:
        """Noise standard deviation for a release at (epsilon, delta)."""
        return gaussian_sigma(epsilon, delta, self.l2_sensitivity)

    def release(
        self,
        values: ArrayLike,
        epsilon: float,
        delta: float,
        rng: "np.random.Generator | int | None" = None,
    ) -> np.ndarray:
        """Return ``values`` perturbed with calibrated Gaussian noise."""
        arr = np.asarray(values, dtype=np.float64)
        if not np.all(np.isfinite(arr)):
            raise ValueError("values must be finite")
        generator = as_rng(rng)
        return arr + generator.normal(0.0, self.sigma(epsilon, delta), size=arr.shape)
