"""Differentially private noise primitives.

Each mechanism is a small, stateless function (or callable class) over
numpy arrays, parameterized by the privacy budget ``epsilon`` and the
query sensitivity.  They deliberately do **not** track budget — that is
the job of :mod:`repro.accounting` — so they compose freely inside
higher-level publishers.
"""

from repro.mechanisms.laplace import LaplaceMechanism, laplace_noise, laplace_scale
from repro.mechanisms.geometric import GeometricMechanism, geometric_noise
from repro.mechanisms.gaussian import GaussianMechanism, gaussian_sigma
from repro.mechanisms.exponential import (
    exponential_mechanism,
    exponential_probabilities,
    gumbel_argmax,
)
from repro.mechanisms.randomized_response import RandomizedResponse
from repro.mechanisms.sensitivity import (
    histogram_sensitivity,
    range_sum_sensitivity,
    sse_sensitivity_bound,
)

__all__ = [
    "LaplaceMechanism",
    "laplace_noise",
    "laplace_scale",
    "GeometricMechanism",
    "geometric_noise",
    "GaussianMechanism",
    "gaussian_sigma",
    "exponential_mechanism",
    "exponential_probabilities",
    "gumbel_argmax",
    "RandomizedResponse",
    "histogram_sensitivity",
    "range_sum_sensitivity",
    "sse_sensitivity_bound",
]
