"""The geometric (discrete Laplace) mechanism (Ghosh et al., 2012).

For integer-valued queries with sensitivity ``Delta``, adding two-sided
geometric noise with parameter ``alpha = exp(-epsilon / Delta)`` is
``epsilon``-DP and is the universally utility-maximizing mechanism for a
single counting query.  Useful when the publisher must emit integer
counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro._validation import as_rng, check_positive

__all__ = ["geometric_noise", "GeometricMechanism"]

ArrayLike = Union[float, Sequence[float], np.ndarray]


def geometric_noise(
    epsilon: float,
    size: Union[int, tuple] = 1,
    sensitivity: float = 1.0,
    rng: "np.random.Generator | int | None" = None,
) -> np.ndarray:
    """Draw two-sided geometric noise calibrated to ``epsilon``.

    The two-sided geometric distribution with parameter
    ``alpha = exp(-epsilon/sensitivity)`` puts mass
    ``(1-alpha)/(1+alpha) * alpha**|k|`` on each integer ``k``.  We sample
    it as the difference of two i.i.d. (one-sided) geometric variables,
    a standard identity.
    """
    check_positive(epsilon, "epsilon")
    check_positive(sensitivity, "sensitivity")
    alpha = float(np.exp(-epsilon / sensitivity))
    generator = as_rng(rng)
    # numpy's geometric counts trials to first success (support 1, 2, ...);
    # subtracting two shifted draws yields the two-sided geometric on Z.
    p = 1.0 - alpha
    g1 = generator.geometric(p, size=size) - 1
    g2 = generator.geometric(p, size=size) - 1
    return (g1 - g2).astype(np.int64)


@dataclass(frozen=True)
class GeometricMechanism:
    """Integer-output counterpart of :class:`LaplaceMechanism`."""

    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.sensitivity, "sensitivity")

    def variance(self, epsilon: float) -> float:
        """Noise variance ``2 alpha / (1 - alpha)**2``."""
        check_positive(epsilon, "epsilon")
        alpha = float(np.exp(-epsilon / self.sensitivity))
        return 2.0 * alpha / (1.0 - alpha) ** 2

    def release(
        self,
        values: ArrayLike,
        epsilon: float,
        rng: "np.random.Generator | int | None" = None,
    ) -> np.ndarray:
        """Return integer ``values`` perturbed with two-sided geometric noise."""
        arr = np.asarray(values)
        if not np.all(np.isfinite(arr.astype(np.float64))):
            raise ValueError("values must be finite")
        rounded = np.rint(arr).astype(np.int64)
        noise = geometric_noise(
            epsilon, size=rounded.shape, sensitivity=self.sensitivity, rng=rng
        )
        return rounded + noise
