"""Randomized response (Warner, 1965) in its k-ary epsilon-DP form.

Each record reports its true bin with probability
``p = e^eps / (e^eps + k - 1)`` and a uniformly random other bin
otherwise.  The aggregate histogram is then unbiased-corrected.  This is
a *local* DP primitive; it is included because some of the histogram
literature (BPM, RCF) builds on it, and it gives the benches a local-DP
reference point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_rng, check_integer, check_positive

__all__ = ["RandomizedResponse"]


@dataclass(frozen=True)
class RandomizedResponse:
    """k-ary randomized response over a categorical domain of ``k`` bins."""

    k: int

    def __post_init__(self) -> None:
        check_integer(self.k, "k", minimum=2)

    def truth_probability(self, epsilon: float) -> float:
        """Probability that a record reports its true bin."""
        check_positive(epsilon, "epsilon")
        e = float(np.exp(epsilon))
        return e / (e + self.k - 1)

    def perturb(
        self,
        records: np.ndarray,
        epsilon: float,
        rng: "np.random.Generator | int | None" = None,
    ) -> np.ndarray:
        """Perturb an array of bin indices record-by-record.

        Each entry of ``records`` must be an integer in ``[0, k)``.
        """
        arr = np.asarray(records)
        if arr.ndim != 1:
            raise ValueError("records must be a 1-D array of bin indices")
        if arr.size and (arr.min() < 0 or arr.max() >= self.k):
            raise ValueError(f"record bin indices must lie in [0, {self.k})")
        generator = as_rng(rng)
        p_true = self.truth_probability(epsilon)
        keep = generator.random(arr.shape) < p_true
        # A lie is uniform over the k-1 *other* bins: draw from k-1 slots
        # and skip over the true bin.
        lies = generator.integers(0, self.k - 1, size=arr.shape)
        lies = np.where(lies >= arr, lies + 1, lies)
        return np.where(keep, arr, lies)

    def estimate_histogram(
        self,
        records: np.ndarray,
        epsilon: float,
        rng: "np.random.Generator | int | None" = None,
    ) -> np.ndarray:
        """Perturb records and return the unbiased histogram estimate.

        With ``n`` records, observed count ``o_j`` of bin ``j`` satisfies
        ``E[o_j] = c_j p + (n - c_j) q`` where ``q = (1-p)/(k-1)``, so the
        unbiased estimator is ``(o_j - n q) / (p - q)``.
        """
        perturbed = self.perturb(records, epsilon, rng=rng)
        observed = np.bincount(perturbed, minlength=self.k).astype(np.float64)
        n = float(len(perturbed))
        p = self.truth_probability(epsilon)
        q = (1.0 - p) / (self.k - 1)
        return (observed - n * q) / (p - q)
