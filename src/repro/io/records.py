"""Building histograms from raw records.

The publishers operate on :class:`~repro.hist.Histogram`; real
deployments start from record files.  This module covers the common
paths: numeric value lists and CSV columns (both numeric and
categorical).

A privacy caveat worth stating explicitly: the *domain* of a published
histogram (bounds, bin width, category list) is itself visible in the
output.  :func:`infer_numeric_domain` derives the domain from the data,
which is the usual practice when the schema is public knowledge — but a
truly data-derived domain leaks; deployments with sensitive bounds
should pass an explicit, schema-level :class:`~repro.hist.Domain`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro._validation import check_integer
from repro.hist.domain import Domain
from repro.hist.histogram import Histogram

__all__ = ["infer_numeric_domain", "histogram_from_values", "histogram_from_csv"]


def infer_numeric_domain(
    values: Sequence[float], n_bins: int, name: str = ""
) -> Domain:
    """Equal-width numeric domain spanning the observed value range.

    The upper bound is nudged by a relative epsilon so the maximum value
    falls inside the last bin rather than on its open edge.
    """
    check_integer(n_bins, "n_bins", minimum=1)
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    if not np.all(np.isfinite(arr)):
        raise ValueError("values must be finite")
    lower = float(arr.min())
    upper = float(arr.max())
    if lower == upper:
        upper = lower + 1.0
    return Domain(size=n_bins, lower=lower, upper=upper, name=name)


def histogram_from_values(
    values: Sequence[float],
    n_bins: Optional[int] = None,
    domain: Optional[Domain] = None,
    name: str = "",
) -> Histogram:
    """Histogram a numeric value list.

    Pass either an explicit ``domain`` (preferred — see the module
    docstring) or ``n_bins`` to infer one from the data range.
    """
    if (domain is None) == (n_bins is None):
        raise ValueError("pass exactly one of n_bins or domain")
    if domain is None:
        domain = infer_numeric_domain(values, n_bins, name=name)
    return Histogram.from_records(values, domain)


def histogram_from_csv(
    path: Union[str, Path],
    column: str,
    n_bins: Optional[int] = None,
    domain: Optional[Domain] = None,
    categorical: bool = False,
) -> Histogram:
    """Histogram one column of a CSV file (header row required).

    Numeric columns are binned into ``n_bins`` (or an explicit
    ``domain``); with ``categorical=True`` each distinct value becomes a
    bin, ordered lexicographically (pass a categorical ``domain`` to fix
    the category set and order instead).
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or column not in reader.fieldnames:
            raise ValueError(
                f"column {column!r} not found in {path.name}; "
                f"have {reader.fieldnames}"
            )
        raw = [row[column] for row in reader if row[column] != ""]
    if not raw:
        raise ValueError(f"column {column!r} of {path.name} is empty")

    if categorical:
        if domain is None:
            labels = sorted(set(raw))
            domain = Domain.categorical(labels, name=column)
        elif domain.labels is None:
            raise ValueError("categorical=True needs a categorical domain")
        index = {label: i for i, label in enumerate(domain.labels)}
        counts = np.zeros(domain.size, dtype=np.float64)
        for value in raw:
            try:
                counts[index[value]] += 1
            except KeyError:
                raise ValueError(
                    f"value {value!r} not in the declared category set"
                ) from None
        return Histogram(domain=domain, counts=counts)

    try:
        values = [float(v) for v in raw]
    except ValueError as exc:
        raise ValueError(
            f"column {column!r} is not numeric; pass categorical=True"
        ) from exc
    return histogram_from_values(values, n_bins=n_bins, domain=domain,
                                 name=column)
