"""Record ingestion: turn raw record files into histograms."""

from repro.io.records import (
    histogram_from_csv,
    histogram_from_values,
    infer_numeric_domain,
)

__all__ = [
    "histogram_from_csv",
    "histogram_from_values",
    "infer_numeric_domain",
]
