"""Near-linear partition kernels and the tracked perf-benchmark harness.

The v-optimal recurrence

    OPT[k][j] = min_{i < j} OPT[k-1][i] + cost(i, j)

is the inner loop of NoiseFirst's adaptive ``k*`` search, AHP's cluster
selection, and (in log-sum-exp form) StructureFirst's Gibbs sampler.
Evaluated naively it costs ``O(n^2 k)``.  Three kernels compute the
tables (:mod:`repro.perf.kernels`):

* ``"reference"`` — the original ``O(n^2 k)`` prefix loop, the
  correctness anchor.
* ``"exact_blocked"`` — the same candidate set evaluated in
  cache-blocked chunks with a preallocated buffer; bit-identical to the
  reference on *every* input, constant-factor faster.
* ``"exact_dc"`` (default) — divide-and-conquer DP optimization,
  ``O(n k log n)``.  It requires the concave quadrangle inequality
  (Monge condition), which SSE/SAE segment costs satisfy **only on
  sorted sequences** (``[0, 1, 0]`` is a counterexample on unsorted
  data — see ``docs/performance.md``).  The dispatch therefore engages
  the divide-and-conquer layer solely when the cost provider certifies
  Monge structure (``monge_certified``, an O(n) sortedness check) —
  exactly AHP's sorted-scaffold clustering workload — and silently
  falls back to the blocked exact scan otherwise, so every kernel name
  is exact on every input and ``"exact_dc"`` is always safe as the
  default.  Where it engages it is floating-point bit-identical to the
  reference (same per-candidate arithmetic, leftmost tie-break).

Beyond the exact engines, ``"approx"`` (:mod:`repro.perf.approx`) runs
a sparse candidate-thinning DP with a provable ``(1+delta)``
multiplicative cost bound in near-linear time — the engine behind the
``"auto"`` default at large ``n``, where every exact kernel hits the
quadratic wall.

:mod:`repro.perf.costrows` supplies the segment-cost providers the
kernels and the Gibbs sampler consume lazily (one column at a time), so
StructureFirst no longer materializes an ``O(n^2)`` cost matrix.
:mod:`repro.perf.bench` is the tracked benchmark harness behind
``python -m repro bench`` and the ``BENCH_*.json`` artifacts at the repo
root.  See ``docs/performance.md``.
"""

from repro.perf.kernels import (
    AUTO_APPROX_THRESHOLD,
    EXACT_KERNELS,
    KERNELS,
    dp_tables,
    resolve_kernel,
    resolve_table_kernel,
    set_default_kernel,
)
from repro.perf.approx import (
    APPROX_DELTA,
    APPROX_MAX_RUNGS,
    ApproxDP,
    approx_tables,
)
from repro.perf.costrows import (
    DenseCost,
    LazySAECost,
    PrefixSSECost,
    as_cost_rows,
)

__all__ = [
    "KERNELS",
    "EXACT_KERNELS",
    "AUTO_APPROX_THRESHOLD",
    "dp_tables",
    "resolve_kernel",
    "resolve_table_kernel",
    "set_default_kernel",
    "APPROX_DELTA",
    "APPROX_MAX_RUNGS",
    "ApproxDP",
    "approx_tables",
    "DenseCost",
    "LazySAECost",
    "PrefixSSECost",
    "as_cost_rows",
]
