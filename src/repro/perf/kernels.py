"""DP kernels for the v-optimal recurrence: reference, blocked, and D&C.

All kernels fill the same pair of tables

    opt[k][j]     = min over i of opt[k-1][i] + cost(i, j)
    choices[k][j] = the (leftmost) argmin i

for every ``k <= max_k`` and prefix ``j <= n``, given a *segment-cost
provider* (:mod:`repro.perf.costrows`) answering ``cost(i, j)`` — the
cost of merging bins ``[i, j)`` into one bucket — from O(n) state.

``reference``
    The original ``O(n^2 k)`` prefix loop, one vectorized pass per
    prefix.  Kept verbatim as the correctness anchor.

``exact_blocked``
    The same ``O(n^2 k)`` candidate set, restructured for the memory
    hierarchy: pre-allocated candidate buffers (no per-prefix
    allocation churn) and layer-chunked add→argmin passes sized to stay
    L2-resident, so the candidate matrix is streamed from main memory
    once instead of three times.  Performs the *identical*
    floating-point operations per candidate and breaks ties toward the
    smallest index, so its tables agree with ``reference`` bit for bit
    on **every** input — this is the exact fast path for arbitrary
    (unsorted) data such as NoiseFirst's noisy counts.

``exact_dc``
    Divide-and-conquer DP optimization (SMAWK-style row-minima search),
    ``O(n k log n)``.  Valid when the segment cost satisfies the
    **concave quadrangle inequality** (inverse-Monge condition)

        cost(a, c) + cost(b, d) <= cost(a, d) + cost(b, c)
        for a <= b <= c <= d,

    which makes the per-layer candidate matrix ``E[j][i] = opt_prev[i]
    + cost(i, j)`` a Monge matrix whose leftmost row minima are
    monotone non-decreasing in ``j``.  **SSE/SAE costs satisfy the QI
    for sorted inputs** (the classical 1-D quantization / k-means
    setting — AHP's sorted-scaffold clustering) but *not* for arbitrary
    sequences; see docs/performance.md for the counterexample.  The
    dispatcher therefore consults the provider's ``monge_certified``
    flag and silently falls back to ``exact_blocked`` when the
    certificate is absent, so ``kernel="exact_dc"`` is *always exact* —
    it is simply fastest when the Monge structure is available.

The module deliberately imports nothing from :mod:`repro.partition` so
the partition package can depend on it without cycles.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "KERNELS",
    "EXACT_KERNELS",
    "AUTO_APPROX_THRESHOLD",
    "dp_tables",
    "resolve_kernel",
    "resolve_table_kernel",
    "set_default_kernel",
]

#: Supported kernel names.  ``auto`` (the default) runs ``exact_dc`` up
#: to :data:`AUTO_APPROX_THRESHOLD` bins — bit-identical to the historical
#: default — and the ``approx`` engine (:mod:`repro.perf.approx`) beyond
#: it, where exact DP is a quadratic wall.
KERNELS = ("auto", "exact_dc", "exact_blocked", "reference", "approx")

#: Kernels guaranteed to fill exact dense tables, in preference order.
EXACT_KERNELS = ("exact_dc", "exact_blocked", "reference")

#: ``auto`` switches from the exact divide-and-conquer/blocked path to
#: the approximate (1+delta) engine above this many bins.
AUTO_APPROX_THRESHOLD = 8192

#: Environment variable overriding the default kernel (benchmark runs
#: flip it without touching call sites).
KERNEL_ENV = "REPRO_PARTITION_KERNEL"

#: Short-form alias consulted when :data:`KERNEL_ENV` is unset.
KERNEL_ENV_ALIAS = "REPRO_KERNEL"

#: Below this many prefixes a divide-and-conquer node switches to one
#: vectorized block scan; tuned so numpy call overhead, not element
#: work, stops dominating.  Exactness does not depend on the value.
_LEAF = 64

#: Target bytes for one layer-chunk of the blocked kernel's candidate
#: buffer; ~2 MB keeps the add→argmin round trip inside L2/L3 so the
#: candidate matrix is read from main memory once per prefix.
_CHUNK_BYTES = 2 << 20

_default_kernel = "auto"


def set_default_kernel(kernel: str) -> str:
    """Set the process-wide default kernel; returns the previous one."""
    global _default_kernel
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    previous = _default_kernel
    _default_kernel = kernel
    return previous


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """Resolve an explicit kernel name, the env override, or the default.

    Precedence: explicit argument > ``REPRO_PARTITION_KERNEL`` env var >
    ``REPRO_KERNEL`` env var > process default (``auto``).
    """
    if kernel is None:
        kernel = (
            os.environ.get(KERNEL_ENV)
            or os.environ.get(KERNEL_ENV_ALIAS)
            or _default_kernel
        )
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    return kernel


def resolve_table_kernel(kernel: Optional[str], n: int) -> str:
    """Resolve a kernel and collapse ``auto`` to a concrete engine.

    ``auto`` picks ``exact_dc`` (bit-identical to the historical
    default) at or below :data:`AUTO_APPROX_THRESHOLD` bins and
    ``approx`` beyond, where the exact engines hit the quadratic wall.
    """
    name = resolve_kernel(kernel)
    if name == "auto":
        name = "exact_dc" if n <= AUTO_APPROX_THRESHOLD else "approx"
    return name


def dp_tables(
    cost,
    max_k: int,
    kernel: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fill ``(opt, choices)`` for the v-optimal recurrence.

    Parameters
    ----------
    cost:
        A segment-cost provider (``repro.perf.costrows`` protocol):
        ``cost.n``, ``cost.first_row()``, ``cost.column(j)``,
        ``cost.interval(ilo, ihi, j)``, ``cost.block(...)`` and the
        ``monge_certified`` flag.
    max_k:
        Largest bucket count; tables have shape ``(max_k + 1, n + 1)``.
    kernel:
        ``"exact_dc"`` (falls back to the blocked scan when the cost is
        not Monge-certified), ``"exact_blocked"`` or ``"reference"``;
        ``None`` defers to :func:`resolve_kernel`.  ``"auto"`` always
        takes the exact path here — dense tables are this function's
        contract, so the auto exact/approx split lives in the
        sparse-capable callers (:func:`repro.partition.voptimal.
        voptimal_table` and friends).  ``"approx"`` is rejected: the
        approximate engine (:func:`repro.perf.approx.approx_tables`)
        never materializes dense tables.
    """
    from repro.obs.trace import span

    name = resolve_kernel(kernel)
    if name == "auto":
        name = "exact_dc"
    elif name == "approx":
        raise ValueError(
            "kernel 'approx' does not fill dense DP tables; call "
            "repro.perf.approx.approx_tables (or voptimal_table / "
            "l1_voptimal_table, which dispatch to it)"
        )
    n = cost.n
    if not 1 <= max_k <= n:
        raise ValueError(f"max_k must be in [1, {n}], got {max_k}")
    if name == "reference":
        with span("kernel.dp", kernel="reference", n=n, k=max_k):
            return _reference_tables(cost, max_k)
    if name == "exact_dc" and getattr(cost, "monge_certified", False):
        with span("kernel.dp", kernel="exact_dc", n=n, k=max_k):
            return _dc_tables(cost, max_k)
    with span("kernel.dp", kernel="exact_blocked", n=n, k=max_k):
        return _blocked_tables(cost, max_k)


# ---------------------------------------------------------------------------
# reference kernel: O(n^2 k), one vectorized pass per prefix
# ---------------------------------------------------------------------------

def _reference_tables(cost, max_k: int) -> Tuple[np.ndarray, np.ndarray]:
    n = cost.n
    inf = np.inf
    opt = np.full((max_k + 1, n + 1), inf, dtype=np.float64)
    choices = np.zeros((max_k + 1, n + 1), dtype=np.int64)
    opt[0][0] = 0.0

    # Process prefixes left to right; for each j one vectorized pass
    # computes opt[k][j] for every k at once.  Infeasible states stay
    # +inf automatically (opt[k-1][i] is +inf for i < k-1).
    for j in range(1, n + 1):
        closing = cost.column(j)  # closing[i] = cost(i, j), i in [0, j)
        opt[1][j] = closing[0]
        choices[1][j] = 0
        top = min(max_k, j)  # k cannot exceed the prefix length
        if top >= 2:
            candidates = opt[1:top, :j] + closing[None, :j]
            best = np.argmin(candidates, axis=1)
            rows = np.arange(top - 1)
            opt[2 : top + 1, j] = candidates[rows, best]
            choices[2 : top + 1, j] = best
    return opt, choices


# ---------------------------------------------------------------------------
# exact_blocked kernel: bit-equal O(n^2 k) scan, engineered hot loop
# ---------------------------------------------------------------------------

def _blocked_tables(cost, max_k: int) -> Tuple[np.ndarray, np.ndarray]:
    """The reference candidate set with an engineered memory layout.

    Per prefix ``j`` the reference allocates a fresh ``(k-1, j)``
    candidate matrix, scans it once for the add and once more for the
    argmin, and garbage-collects it — three main-memory passes plus
    allocator churn.  Here the adds land in a pre-allocated buffer,
    processed in layer chunks small enough that the argmin re-reads the
    chunk from cache; the previous-layer table is then the only stream
    touching main memory.  Per-candidate arithmetic (one add) and the
    leftmost-argmin tie-break are identical to the reference, so the
    tables match bit for bit on every input.
    """
    n = cost.n
    inf = np.inf
    opt = np.full((max_k + 1, n + 1), inf, dtype=np.float64)
    choices = np.zeros((max_k + 1, n + 1), dtype=np.int64)
    opt[0][0] = 0.0

    buf = np.empty((max_k, n), dtype=np.float64)
    row_idx = np.arange(max_k)

    for j in range(1, n + 1):
        closing = cost.column(j)
        opt[1][j] = closing[0]
        choices[1][j] = 0
        top = min(max_k, j)
        rows = top - 1  # previous-layer rows k = 1 .. top-1
        if rows < 1:
            continue
        # Chunk the k dimension so one add→argmin round trip stays in
        # cache (the chunk result is consumed immediately).
        chunk = max(1, min(rows, _CHUNK_BYTES // (8 * j)))
        r0 = 0
        while r0 < rows:
            r1 = min(r0 + chunk, rows)
            block = buf[: r1 - r0, :j]
            np.add(opt[1 + r0 : 1 + r1, :j], closing[None, :j], out=block)
            best = np.argmin(block, axis=1)
            picked = block[row_idx[: r1 - r0], best]
            opt[2 + r0 : 2 + r1, j] = picked
            choices[2 + r0 : 2 + r1, j] = best
            r0 = r1
    return opt, choices


# ---------------------------------------------------------------------------
# exact_dc kernel: O(n k log n) divide-and-conquer DP optimization
# ---------------------------------------------------------------------------

def _dc_tables(cost, max_k: int) -> Tuple[np.ndarray, np.ndarray]:
    n = cost.n
    inf = np.inf
    opt = np.full((max_k + 1, n + 1), inf, dtype=np.float64)
    choices = np.zeros((max_k + 1, n + 1), dtype=np.int64)
    opt[0][0] = 0.0

    # Layer 1 in one shot: opt[1][j] = cost(0, j).
    opt[1, 1:] = cost.first_row()
    choices[1, 1:] = 0

    for level in range(2, max_k + 1):
        _dc_layer(opt[level - 1], cost, level, opt[level], choices[level])
    return opt, choices


def _dc_layer(
    opt_prev: np.ndarray,
    cost,
    level: int,
    opt_row: np.ndarray,
    choice_row: np.ndarray,
) -> None:
    """One DP layer by divide and conquer over the prefix index ``j``.

    Fills ``opt_row[j]`` / ``choice_row[j]`` for every feasible
    ``j in [level, n]``; infeasible prefixes keep their +inf / 0
    defaults, matching the reference kernel.  The candidate window of a
    node is the invariant of Monge-array leftmost-argmin monotonicity:
    once the midpoint's leftmost argmin ``b`` is known, prefixes left of
    the midpoint can only choose ``i <= b`` and prefixes right of it
    only ``i >= b``.
    """
    n = cost.n
    # (jlo, jhi, ilo, ihi): solve prefixes [jlo, jhi] with candidate
    # split points restricted to [ilo, ihi] (all inclusive).
    stack = [(level, n, level - 1, n - 1)]
    while stack:
        jlo, jhi, ilo, ihi = stack.pop()
        if jlo > jhi:
            continue
        if jhi - jlo + 1 <= _LEAF:
            _leaf_scan(opt_prev, cost, jlo, jhi, ilo, ihi,
                       opt_row, choice_row)
            continue
        jm = (jlo + jhi) >> 1
        hi = min(ihi, jm - 1)
        cand = opt_prev[ilo : hi + 1] + cost.interval(ilo, hi + 1, jm)
        b = int(np.argmin(cand))  # leftmost argmin on ties
        opt_row[jm] = cand[b]
        choice_row[jm] = ilo + b
        stack.append((jlo, jm - 1, ilo, ilo + b))
        stack.append((jm + 1, jhi, ilo + b, ihi))


def _leaf_scan(
    opt_prev: np.ndarray,
    cost,
    jlo: int,
    jhi: int,
    ilo: int,
    ihi: int,
    opt_row: np.ndarray,
    choice_row: np.ndarray,
) -> None:
    """Vectorized brute scan of a small block of prefixes.

    Evaluates every candidate ``i in [ilo, ihi]`` for every prefix
    ``j in [jlo, jhi]`` in one 2-D numpy pass, masking the infeasible
    upper triangle (``i >= j``) with +inf so the leftmost finite argmin
    survives exactly as in the per-prefix reference scan.
    """
    ihi = min(ihi, jhi - 1)
    block = cost.block(ilo, ihi + 1, jlo, jhi + 1)  # (nj, ni)
    cand = block + opt_prev[None, ilo : ihi + 1]
    i_idx = np.arange(ilo, ihi + 1)
    j_idx = np.arange(jlo, jhi + 1)
    invalid = i_idx[None, :] >= j_idx[:, None]
    if invalid.any():
        cand = np.where(invalid, np.inf, cand)
    best = np.argmin(cand, axis=1)  # leftmost argmin on ties
    rows = np.arange(jhi - jlo + 1)
    opt_row[jlo : jhi + 1] = cand[rows, best]
    choice_row[jlo : jhi + 1] = ilo + best
