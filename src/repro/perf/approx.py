"""Approximate (1+δ) v-optimal DP: sparse candidate-boundary thinning.

The exact kernels in :mod:`repro.perf.kernels` fill the v-optimal
recurrence

    opt[k][j] = min_{k-1 <= i < j}  opt[k-1][i] + cost(i, j)

over **every** prefix ``i``, which is ``O(n^2 k)`` off the Monge fast
path — the quadratic wall every structure-aware publisher hits beyond
``n ~ 2^13``.  This module trades an arbitrarily small, *provable* cost
inflation for near-linear time, in the style of the Guha–Koudas–Shim
approximation scheme for histogram construction (STOC 2001 / TODS 2006):

**Per-layer value thinning.**  The exact DP row ``opt[k][.]`` is
monotone non-decreasing in the prefix length, so it is summarized by the
*breakpoints* of a geometric value ladder: for rungs
``u0, u0 (1+tau), u0 (1+tau)^2, ...`` keep only the **rightmost** prefix
whose value does not exceed each rung.  Layer ``k+1`` then minimizes
over the retained candidates only.

**The wavefront candidate.**  Thinning alone is not sound: a query ``j``
that falls *inside* a ladder run (strictly between two retained
breakpoints) would otherwise be forced to a candidate left of the true
argmin, whose segment cost is unbounded.  Every query therefore also
sees the *surrogate* candidate ``(j - 1, v̂)`` where ``v̂`` is the value
of the nearest retained breakpoint at-or-right-of ``j - 1`` — an upper
bound on the layer value at ``j - 1`` by monotonicity, and achievable
for the prefix ``j - 1`` by truncation-and-refinement (dropping the
bins past ``j - 1`` from the breakpoint's partition never increases any
bucket's cost, and re-splitting only decreases it).

**The bound.**  For any query ``j`` and true argmin ``i*``:

* ``value(i*) = 0`` — the rightmost zero-valued prefix is always
  retained; either it or the surrogate matches the argmin exactly.
* ``i*`` at or left of a retained breakpoint ``b`` with
  ``value(b) <= (1+tau) value(i*)`` and ``b < j`` — take ``b``:
  ``cost(b, j) <= cost(i*, j)`` because ``[b, j)`` is a sub-segment of
  ``[i*, j)``.
* otherwise ``i*`` shares a ladder run with ``j - 1`` — take the
  surrogate: ``v̂ <= rung <= (1+tau) value(i*)`` and
  ``cost(j-1, j) = 0 <= cost(i*, j)``.

Each consumed layer hence inflates the cost by at most ``(1+tau)``;
with ``tau = (1+delta)^(1/(max_k-1)) - 1`` the ``k``-bucket result is
within ``(1+delta)`` of the exact optimum — the property suite asserts
this end-to-end against the exact kernels, *including* the materialized
partition.  The scheme requires single-bin segment costs to be exactly
zero (true for SSE and SAE); providers advertise this via the
``single_bin_free`` flag and the dispatcher falls back to the exact
blocked kernel when it is absent.

**Budgeted mode.**  The rung count per layer is capped at
``max_rungs`` (default :data:`APPROX_MAX_RUNGS`); when the cap binds,
the layer's effective ``tau`` widens and the *achieved* bound is
reported per bucket count in ``delta_certified_by_k`` — the guarantee
degrades *visibly*, never silently.  ``max_rungs=None`` disables the
cap, making the configured ``delta`` unconditional.

**Evaluation modes.**  Small inputs evaluate every prefix per layer
(dense, ``O(n R)`` per layer for ``R`` retained candidates).  Large
inputs never touch most prefixes: breakpoints are located by parallel
bisection over the monotone layer value — ``O(R^2 log n)`` probes per
layer — which is what makes ``n = 2^20`` a seconds-scale workload.

Like :mod:`repro.perf.kernels`, this module imports nothing from
:mod:`repro.partition` so the partition package can layer on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

__all__ = [
    "APPROX_DELTA",
    "APPROX_MAX_RUNGS",
    "APPROX_DENSE_THRESHOLD",
    "ApproxDP",
    "approx_tables",
]

#: Default multiplicative slack: approx cost <= (1 + delta) * exact cost
#: (unconditional when the rung budget does not bind).
APPROX_DELTA = 0.05

#: Default per-layer candidate budget.  Bounds the work of one layer at
#: roughly ``max_rungs^2 * log2(n)`` candidate evaluations, which is what
#: keeps ``n = 2^20, k = 128`` in seconds; the certified delta is
#: reported whenever the budget forces a wider ladder.
APPROX_MAX_RUNGS = 512

#: At or below this many bins each layer is evaluated densely (every
#: prefix); above it, breakpoints are located by parallel bisection.
#: Measured crossover is ~400 bins at the default rung budget — the
#: bisection's ``O(R^2 log n)`` probes beat the dense ``O(n R)`` sweep
#: much earlier than asymptotics suggest because probes batch into a
#: few hundred grid rows while the sweep touches every prefix per layer.
APPROX_DENSE_THRESHOLD = 256

#: Chunk bound (elements) for the (positions x candidates) grids.
_GRID_CHUNK = 1 << 22

_RETAINED = 0
_SURROGATE = 1


@dataclass
class _Layer:
    """Thinned summary of one DP layer.

    ``idx`` are retained prefix positions (sorted ascending), ``val``
    their approximate layer values (non-decreasing), ``pred_kind`` /
    ``pred_ref`` the winning candidate of each retained position's own
    evaluation — ``_RETAINED`` refs an entry of the previous layer,
    ``_SURROGATE`` refs the previous-layer breakpoint certifying the
    wavefront candidate at ``position - 1``.
    """

    idx: np.ndarray
    val: np.ndarray
    pred_kind: np.ndarray
    pred_ref: np.ndarray
    tau: float


@dataclass
class ApproxDP:
    """Sparse result of the approximate v-optimal DP.

    ``sse_by_k[k]`` upper-bounds the exact optimum by the factor
    ``1 + delta_certified_by_k[k]``; :meth:`boundaries_for` materializes
    a ``k``-bucket partition whose *true* cost is at most ``sse_by_k[k]``.
    """

    n: int
    max_k: int
    delta: float
    sse_by_k: np.ndarray
    delta_certified_by_k: np.ndarray
    _layers: List[_Layer] = field(repr=False)
    _final_kind: np.ndarray = field(repr=False)
    _final_ref: np.ndarray = field(repr=False)

    @property
    def delta_certified(self) -> float:
        """The certified bound for the largest bucket count."""
        return float(self.delta_certified_by_k[self.max_k])

    def boundaries_for(self, k: int) -> Tuple[int, ...]:
        """Materialize the ``k - 1`` boundaries of the approx partition.

        Walks the stored predecessor chain from ``(k, n)``.  Surrogate
        steps emit the wavefront boundary ``j - 1`` and continue from
        the certifying breakpoint, whose chain may carry boundaries at
        or beyond the emitted one; those are *dropped* (truncation — a
        sub-segment never costs more than its segment) and the bucket
        count is restored by splitting the widest bucket (refinement —
        splitting never increases total cost).  The returned partition's
        true cost is therefore at most ``sse_by_k[k]``.
        """
        if not 1 <= k <= self.max_k:
            raise ValueError(f"k must be in [1, {self.max_k}], got {k}")
        if k == 1:
            return ()
        if not np.isfinite(self.sse_by_k[k]):
            raise ValueError(f"no feasible {k}-bucket partition recorded")
        kept: List[int] = []
        cap = self.n
        kind = int(self._final_kind[k])
        ref = int(self._final_ref[k])
        query = self.n
        for level in range(k, 1, -1):
            layer = self._layers[level - 2]  # layer `level - 1` summary
            if kind == _SURROGATE:
                boundary = query - 1
            else:
                boundary = int(layer.idx[ref])
            if 1 <= boundary < cap:
                kept.append(boundary)
                cap = boundary
            query = int(layer.idx[ref])
            kind = int(layer.pred_kind[ref])
            ref = int(layer.pred_ref[ref])
        kept.reverse()
        return _refine_to_k(kept, self.n, k)


def _refine_to_k(boundaries: List[int], n: int, k: int) -> Tuple[int, ...]:
    """Pad a valid-but-short boundary list to exactly ``k - 1`` splits.

    Deterministic: repeatedly bisect the (leftmost) widest bucket.  Pure
    refinement, so the partition's total cost can only decrease.
    """
    edges = [0] + boundaries + [n]
    while len(edges) - 2 < k - 1:
        widths = [edges[t + 1] - edges[t] for t in range(len(edges) - 1)]
        widest = max(range(len(widths)), key=lambda t: (widths[t], -t))
        if widths[widest] < 2:  # pragma: no cover - k <= n guards this
            raise ValueError("cannot refine partition: all buckets width 1")
        edges.insert(widest + 1, edges[widest] + widths[widest] // 2)
    return tuple(edges[1:-1])


# ---------------------------------------------------------------------------
# candidate evaluation
# ---------------------------------------------------------------------------

def _eval_batch(
    cost,
    prev_idx: np.ndarray,
    prev_val: np.ndarray,
    positions: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Approx layer value at ``positions`` given the thinned previous layer.

    Returns ``(values, kinds, refs)``: the minimum over retained
    candidates strictly left of each position plus the surrogate
    ``(position - 1, v̂)``; retained wins ties so backtracks stay short.
    """
    positions = np.asarray(positions, dtype=np.int64)
    count = len(positions)
    width = len(prev_idx)
    values = np.empty(count, dtype=np.float64)
    kinds = np.empty(count, dtype=np.int8)
    refs = np.empty(count, dtype=np.int64)

    chunk = max(1, _GRID_CHUNK // max(width, 1))
    for lo in range(0, count, chunk):
        hi = min(lo + chunk, count)
        pos = positions[lo:hi]
        grid = cost.grid(prev_idx, pos)  # (len(pos), width)
        totals = grid + prev_val[None, :]
        invalid = prev_idx[None, :] >= pos[:, None]
        if invalid.any():
            totals = np.where(invalid, np.inf, totals)
        best = np.argmin(totals, axis=1)
        rows = np.arange(hi - lo)
        best_vals = totals[rows, best]

        # Wavefront surrogate: value of the nearest retained breakpoint
        # at-or-right-of `pos - 1` (single-bin closing cost is zero).
        sref = np.searchsorted(prev_idx, pos - 1, side="left")
        s_ok = sref < width
        sref_c = np.minimum(sref, width - 1)
        svals = np.where(s_ok, prev_val[sref_c], np.inf)

        use_s = svals < best_vals
        values[lo:hi] = np.where(use_s, svals, best_vals)
        kinds[lo:hi] = np.where(use_s, _SURROGATE, _RETAINED).astype(np.int8)
        refs[lo:hi] = np.where(use_s, sref_c, best)
    return values, kinds, refs


def _first_layer_values(cost, positions: np.ndarray) -> np.ndarray:
    """``cost(0, j)`` at the given positions."""
    zero = np.zeros(1, dtype=np.int64)
    return cost.grid(zero, np.asarray(positions, dtype=np.int64))[:, 0]


# ---------------------------------------------------------------------------
# thinning: ladder construction + breakpoint location
# ---------------------------------------------------------------------------

def _ladder(
    u0: float, u_max: float, tau: float, max_rungs: Optional[int]
) -> Tuple[np.ndarray, float]:
    """Geometric rung values spanning ``[u0, u_max]`` and the achieved tau.

    Uses the configured ``tau`` when the implied rung count fits the
    budget; otherwise spreads exactly ``max_rungs`` rungs geometrically
    and reports the (wider) achieved ratio.
    """
    if u_max <= u0:
        return np.array([u_max], dtype=np.float64), 0.0
    span = math.log(u_max / u0)
    if tau > 0.0:
        needed = int(math.ceil(span / math.log1p(tau))) + 1
    else:  # delta == 0 degenerates to one rung per distinct value step
        needed = None
    if needed is not None and (max_rungs is None or needed <= max_rungs):
        ratio = 1.0 + tau
        count = needed
    else:
        if max_rungs is None:
            raise ValueError(
                "delta=0 requires a finite max_rungs budget"
            )
        count = max(2, int(max_rungs))
        ratio = math.exp(span / (count - 1))
    rungs = u0 * np.power(ratio, np.arange(count, dtype=np.float64))
    rungs[-1] = u_max  # guard float drift at the top of the ladder
    return rungs, ratio - 1.0


def _breakpoints_dense(
    row: np.ndarray,
    positions: np.ndarray,
    tau: float,
    max_rungs: Optional[int],
) -> Tuple[np.ndarray, float]:
    """Retained positions of a fully-evaluated monotone layer row."""
    keep: List[np.ndarray] = []
    positive = row > 0.0
    if not positive.all():
        last_zero = int(np.nonzero(~positive)[0][-1])
        keep.append(positions[last_zero : last_zero + 1])
    tau_used = 0.0
    if positive.any():
        first_pos = int(np.argmax(positive))
        u0 = float(row[first_pos])
        u_max = float(row[-1])
        rungs, tau_used = _ladder(u0, u_max, tau, max_rungs)
        # row is monotone: last index with row <= rung, vectorized.
        hits = np.searchsorted(row, rungs, side="right") - 1
        keep.append(positions[hits[hits >= 0]])
    retained = np.unique(np.concatenate(keep))
    return retained, tau_used


def _breakpoints_bisect(
    eval_values: Callable[[np.ndarray], np.ndarray],
    lo: int,
    hi: int,
    tau: float,
    max_rungs: Optional[int],
) -> Tuple[np.ndarray, float]:
    """Retained positions of a layer evaluated only where probed.

    Locates, for every rung ``T``, the largest position whose (monotone)
    layer value is ``<= T`` — all rungs bisected in parallel, so each
    round costs one batched evaluation of at most one probe per rung.
    """
    v_ends = eval_values(np.array([lo, hi], dtype=np.int64))
    v_lo, v_hi = float(v_ends[0]), float(v_ends[1])
    if v_hi <= 0.0:  # whole domain zero: one candidate summarizes it
        return np.array([hi], dtype=np.int64), 0.0

    thresholds: List[float] = []
    if v_lo <= 0.0:
        # Rightmost zero, then the ladder from the first positive value.
        last_zero = _bisect_last_leq(eval_values, lo, hi, 0.0)
        u0 = float(eval_values(np.array([last_zero + 1]))[0])
        thresholds.append(0.0)
    else:
        u0 = v_lo
    rungs, tau_used = _ladder(u0, v_hi, tau, max_rungs)
    thresholds.extend(rungs.tolist())

    marks = np.asarray(thresholds, dtype=np.float64)
    lo_arr = np.full(len(marks), lo - 1, dtype=np.int64)
    hi_arr = np.full(len(marks), hi, dtype=np.int64)
    while True:
        active = lo_arr < hi_arr
        if not active.any():
            break
        mid = (lo_arr + hi_arr + 1) >> 1
        probes, inverse = np.unique(mid[active], return_inverse=True)
        vals = eval_values(probes)[inverse]
        ok = vals <= marks[active]
        lo_sel = np.where(ok, mid[active], lo_arr[active])
        hi_sel = np.where(ok, hi_arr[active], mid[active] - 1)
        lo_arr[active] = lo_sel
        hi_arr[active] = hi_sel
    found = lo_arr[lo_arr >= lo]
    retained = np.unique(found)
    if retained.size == 0 or retained[-1] != hi:
        retained = np.unique(np.append(retained, hi))
    return retained, tau_used


def _bisect_last_leq(
    eval_values: Callable[[np.ndarray], np.ndarray],
    lo: int,
    hi: int,
    threshold: float,
) -> int:
    """Largest position in ``[lo, hi]`` with value ``<= threshold``.

    Caller guarantees one exists (the value at ``lo`` qualifies).
    """
    while lo < hi:
        mid = (lo + hi + 1) >> 1
        if float(eval_values(np.array([mid], dtype=np.int64))[0]) <= threshold:
            lo = mid
        else:
            hi = mid - 1
    return lo


# ---------------------------------------------------------------------------
# the DP driver
# ---------------------------------------------------------------------------

def approx_tables(
    cost,
    max_k: int,
    delta: Optional[float] = None,
    max_rungs: Optional[int] = APPROX_MAX_RUNGS,
    dense_threshold: int = APPROX_DENSE_THRESHOLD,
) -> ApproxDP:
    """Run the thinned v-optimal DP for every bucket count ``1..max_k``.

    Parameters
    ----------
    cost:
        A cost-rows provider (:mod:`repro.perf.costrows`) additionally
        offering ``grid(starts, stops)`` and the ``single_bin_free``
        flag (single-bin segments must cost exactly 0 — SSE/SAE do).
    max_k:
        Largest bucket count.
    delta:
        Target multiplicative slack; ``None`` uses
        :data:`APPROX_DELTA`.  Guaranteed outright whenever the rung
        budget does not bind; the achieved bound is always recorded in
        ``delta_certified_by_k``.
    max_rungs:
        Per-layer candidate budget; ``None`` removes the cap (the
        configured ``delta`` becomes unconditional).
    dense_threshold:
        Inputs with at most this many bins evaluate layers densely;
        larger inputs use parallel-bisection breakpoint location.
    """
    n = cost.n
    if not 1 <= max_k <= n:
        raise ValueError(f"max_k must be in [1, {n}], got {max_k}")
    if delta is None:
        delta = APPROX_DELTA
    if delta < 0.0:
        raise ValueError(f"delta must be >= 0, got {delta}")
    if not getattr(cost, "single_bin_free", False):
        raise ValueError(
            "approx kernel requires a cost provider whose single-bin "
            "segments cost exactly zero (single_bin_free flag)"
        )

    tau = (1.0 + delta) ** (1.0 / max(max_k - 1, 1)) - 1.0
    dense = n <= dense_threshold

    sse_by_k = np.full(max_k + 1, np.inf, dtype=np.float64)
    certified = np.zeros(max_k + 1, dtype=np.float64)
    final_kind = np.zeros(max_k + 1, dtype=np.int8)
    final_ref = np.zeros(max_k + 1, dtype=np.int64)
    layers: List[_Layer] = []

    # ---- layer 1: value(j) = cost(0, j), exactly -------------------------
    sse_by_k[1] = float(_first_layer_values(cost, np.array([n]))[0])
    factor = 1.0
    if max_k >= 2:
        lo, hi = 1, n - 1
        if dense:
            positions = np.arange(lo, hi + 1, dtype=np.int64)
            row = np.maximum.accumulate(_first_layer_values(cost, positions))
            retained, tau_used = _breakpoints_dense(
                row, positions, tau, max_rungs
            )
            values = row[retained - lo]
        else:
            def eval_layer1(pos: np.ndarray) -> np.ndarray:
                return _first_layer_values(cost, pos)

            retained, tau_used = _breakpoints_bisect(
                eval_layer1, lo, hi, tau, max_rungs
            )
            values = _first_layer_values(cost, retained)
        layers.append(
            _Layer(
                idx=retained,
                val=values,
                pred_kind=np.zeros(len(retained), dtype=np.int8),
                pred_ref=np.zeros(len(retained), dtype=np.int64),
                tau=tau_used,
            )
        )

    # ---- layers 2..max_k -------------------------------------------------
    for level in range(2, max_k + 1):
        prev = layers[level - 2]
        factor *= 1.0 + prev.tau
        certified[level] = factor - 1.0

        v_n, k_n, r_n = _eval_batch(
            cost, prev.idx, prev.val, np.array([n], dtype=np.int64)
        )
        sse_by_k[level] = float(v_n[0])
        final_kind[level] = k_n[0]
        final_ref[level] = r_n[0]
        if level == max_k:
            break

        lo, hi = level, n - 1
        if lo > hi:  # pragma: no cover - only reachable when max_k == n
            layers.append(
                _Layer(
                    idx=np.empty(0, dtype=np.int64),
                    val=np.empty(0, dtype=np.float64),
                    pred_kind=np.empty(0, dtype=np.int8),
                    pred_ref=np.empty(0, dtype=np.int64),
                    tau=0.0,
                )
            )
            continue
        if dense:
            positions = np.arange(lo, hi + 1, dtype=np.int64)
            row, kinds, refs = _eval_batch(cost, prev.idx, prev.val, positions)
            row = np.maximum.accumulate(row)
            retained, tau_used = _breakpoints_dense(
                row, positions, tau, max_rungs
            )
            sel = retained - lo
            layer = _Layer(
                idx=retained,
                val=row[sel],
                pred_kind=kinds[sel],
                pred_ref=refs[sel],
                tau=tau_used,
            )
        else:
            def eval_level(pos: np.ndarray) -> np.ndarray:
                return _eval_batch(cost, prev.idx, prev.val, pos)[0]

            retained, tau_used = _breakpoints_bisect(
                eval_level, lo, hi, tau, max_rungs
            )
            values, kinds, refs = _eval_batch(
                cost, prev.idx, prev.val, retained
            )
            layer = _Layer(
                idx=retained,
                val=values,
                pred_kind=kinds,
                pred_ref=refs,
                tau=tau_used,
            )
        layers.append(layer)

    return ApproxDP(
        n=n,
        max_k=max_k,
        delta=float(delta),
        sse_by_k=sse_by_k,
        delta_certified_by_k=certified,
        _layers=layers,
        _final_kind=final_kind,
        _final_ref=final_ref,
    )
