"""Lazy segment-cost providers for the DP kernels and the Gibbs sampler.

A *cost-rows provider* answers the cost of merging the contiguous bin
segment ``[i, j)`` into one bucket, in the access patterns the kernels
need, from ``O(n)`` state:

``column(j)``
    Vector of ``cost(i, j)`` for every ``i in [0, j)`` — one DP "row"
    (all segments *closing* at prefix ``j``).  The reference kernel and
    the Gibbs forward filter consume columns left to right; generating
    them lazily is what drops StructureFirst's memory from the dense
    ``(n, n + 1)`` cost matrix (``O(n^2)``) to ``O(n k)``.
``interval(ilo, ihi, j)``
    The slice ``cost(i, j), i in [ilo, ihi)`` — a divide-and-conquer
    midpoint probe.
``block(ilo, ihi, jlo, jhi)``
    Dense ``(jhi - jlo, ihi - ilo)`` block ``cost(i, j)`` — the leaf
    scan of the divide-and-conquer kernel.  Entries with ``i >= j`` are
    garbage (the kernel masks them).
``first_row()``
    ``cost(0, j)`` for every ``j in [1, n]`` — DP layer 1 in one call.
``grid(starts, stops)``
    Dense ``(len(stops), len(starts))`` gather ``cost(starts[c],
    stops[r])`` at *arbitrary* (not necessarily contiguous) index
    arrays — the approximate kernel's sparse candidate evaluation
    (:mod:`repro.perf.approx`).  Entries with ``start >= stop`` are
    garbage (the caller masks them).
``single_bin_free``
    Flag: ``True`` iff every single-bin segment costs exactly zero
    (``cost(j-1, j) == 0``).  SSE and SAE both qualify; the
    approximate kernel's wavefront-candidate bound requires it.

Providers:

* :class:`PrefixSSECost` — SSE about the segment mean from prefix sums,
  every access O(length) with no per-call allocation beyond the output.
  Bit-identical to :meth:`repro.partition.sse.SegmentStats.sse_row`.
* :class:`DenseCost` — adapter over a precomputed ``(n, n + 1)`` cost
  matrix (e.g. :func:`repro.partition.sae.sae_matrix`), for callers that
  already hold one.
* :class:`LazySAECost` — SAE about the segment median, one column at a
  time via an incremental two-heap running median (O(j log j) per
  column, O(n) memory).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, List, Sequence

import numpy as np

from repro._validation import check_counts

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids an import cycle
    from repro.partition.sse import SegmentStats

__all__ = ["PrefixSSECost", "DenseCost", "LazySAECost", "as_cost_rows"]


class PrefixSSECost:
    """SSE segment costs from :class:`~repro.partition.sse.SegmentStats`.

    All four access patterns reuse the stats object's prefix-sum and
    index buffers, and apply the exact arithmetic of
    :meth:`SegmentStats.sse_row` (same operand order, same clamp), so
    kernel outputs are floating-point identical to the historical code
    paths.
    """

    def __init__(self, counts: "Sequence[float] | SegmentStats") -> None:
        # Runtime import: repro.partition.voptimal imports this module at
        # load time, so the reverse edge must stay lazy.
        from repro.partition.sse import SegmentStats

        stats = (
            counts
            if isinstance(counts, SegmentStats)
            else SegmentStats(counts)
        )
        self._stats = stats
        self.n = stats.n
        self._prefix = stats.prefix
        self._prefix_sq = stats.prefix_sq
        self._indices = stats.indices
        self._monge: "bool | None" = None

    #: Single-bin SSE is identically zero (one value, its own mean).
    single_bin_free = True

    @property
    def monge_certified(self) -> bool:
        """True iff the counts are sorted non-decreasing.

        SSE segment costs satisfy the concave quadrangle inequality
        exactly when the underlying sequence is sorted (the 1-D
        quantization setting, e.g. AHP's sorted-scaffold clustering);
        unsorted sequences violate it (``[0, 1, 0]`` is a
        counterexample — see docs/performance.md), so the
        divide-and-conquer kernel only engages on this certificate.
        Checked once in O(n) via the prefix sums' first differences.
        """
        if self._monge is None:
            diffs = np.diff(self._prefix)
            self._monge = bool(np.all(diffs[1:] >= diffs[:-1]))
        return self._monge

    def column(self, j: int) -> np.ndarray:
        """``cost(i, j)`` for all ``i in [0, j)`` (== ``sse_row(j)``)."""
        return self._stats.sse_row(j)

    def interval(self, ilo: int, ihi: int, j: int) -> np.ndarray:
        """``cost(i, j)`` for ``i in [ilo, ihi)``."""
        starts = self._indices[ilo:ihi]
        totals = self._prefix[j] - self._prefix[starts]
        totals_sq = self._prefix_sq[j] - self._prefix_sq[starts]
        widths = j - starts
        sse = totals_sq - totals * totals / widths
        return np.maximum(sse, 0.0)

    def block(self, ilo: int, ihi: int, jlo: int, jhi: int) -> np.ndarray:
        """``cost(i, j)`` grid, shape ``(jhi - jlo, ihi - ilo)``.

        Entries with ``j <= i`` are meaningless (0/0 or negative width);
        the caller masks them before any reduction.
        """
        starts = self._indices[ilo:ihi]
        stops = self._indices[jlo:jhi]
        totals = self._prefix[stops][:, None] - self._prefix[starts][None, :]
        totals_sq = (
            self._prefix_sq[stops][:, None] - self._prefix_sq[starts][None, :]
        )
        widths = stops[:, None] - starts[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            sse = totals_sq - totals * totals / widths
        return np.maximum(sse, 0.0)

    def first_row(self) -> np.ndarray:
        """``cost(0, j)`` for every ``j in [1, n]``."""
        stops = self._indices[1:]
        totals = self._prefix[1:] - self._prefix[0]
        totals_sq = self._prefix_sq[1:] - self._prefix_sq[0]
        sse = totals_sq - totals * totals / stops
        return np.maximum(sse, 0.0)

    def grid(self, starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
        """``cost(starts[c], stops[r])`` grid at arbitrary index arrays.

        Same prefix-sum arithmetic as :meth:`block`; entries with
        ``start >= stop`` are garbage (caller masks them).
        """
        starts = np.asarray(starts, dtype=np.int64)
        stops = np.asarray(stops, dtype=np.int64)
        totals = self._prefix[stops][:, None] - self._prefix[starts][None, :]
        totals_sq = (
            self._prefix_sq[stops][:, None] - self._prefix_sq[starts][None, :]
        )
        widths = stops[:, None] - starts[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            sse = totals_sq - totals * totals / widths
        return np.maximum(sse, 0.0)


class DenseCost:
    """Adapter over a precomputed ``(n, n + 1)`` segment-cost matrix.

    ``assume_monge=True`` certifies that the matrix satisfies the
    concave quadrangle inequality (caller's responsibility — e.g. SAE
    costs of a sorted sequence), unlocking the divide-and-conquer
    kernel; the default leaves the exact blocked scan in charge.
    """

    def __init__(self, matrix: np.ndarray, assume_monge: bool = False) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != matrix.shape[0] + 1:
            raise ValueError(
                f"cost matrix must have shape (n, n+1), got {matrix.shape}"
            )
        self._matrix = matrix
        self.n = matrix.shape[0]
        self.monge_certified = bool(assume_monge)
        self._single_bin_free: "bool | None" = None

    @property
    def single_bin_free(self) -> bool:
        """True iff the matrix diagonal ``cost(j-1, j)`` is all zeros.

        Checked once in O(n); SSE/SAE matrices qualify, arbitrary
        matrices may not — the approximate kernel refuses the latter.
        """
        if self._single_bin_free is None:
            idx = np.arange(self.n)
            self._single_bin_free = bool(
                np.all(self._matrix[idx, idx + 1] == 0.0)
            )
        return self._single_bin_free

    def column(self, j: int) -> np.ndarray:
        return self._matrix[:j, j]

    def interval(self, ilo: int, ihi: int, j: int) -> np.ndarray:
        return self._matrix[ilo:ihi, j]

    def block(self, ilo: int, ihi: int, jlo: int, jhi: int) -> np.ndarray:
        return self._matrix[ilo:ihi, jlo:jhi].T

    def first_row(self) -> np.ndarray:
        return self._matrix[0, 1:]

    def grid(self, starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
        starts = np.asarray(starts, dtype=np.int64)
        stops = np.asarray(stops, dtype=np.int64)
        return self._matrix[np.ix_(starts, stops)].T


class LazySAECost:
    """SAE (absolute deviation about the median) costs, one column at a time.

    ``column(j)`` inserts ``counts[j-1], counts[j-2], …`` into a two-heap
    running median — insertion order is irrelevant to the median of a
    multiset — and reads the SAE after each insertion, yielding
    ``SAE(i, j)`` for ``i = j-1 … 0`` in ``O(j log j)`` time and ``O(j)``
    memory.  The whole Gibbs forward filter therefore runs in the same
    ``O(n^2 log n)`` time as materializing
    :func:`repro.partition.sae.sae_matrix` once, but peaks at ``O(n)``
    cost-state instead of the matrix's ``O(n^2)``.

    Values can differ from the dense matrix by a few ulp (floating-point
    sums accumulate in a different order); the Gibbs distribution the
    sampler realizes is identical in exact arithmetic.
    """

    #: SAE costs of arbitrary sequences violate the quadrangle
    #: inequality (same ``[0, 1, 0]`` counterexample family as SSE), so
    #: the lazy provider never certifies Monge structure.
    monge_certified = False

    #: A single bin is its own median: SAE(j-1, j) == 0 always.
    single_bin_free = True

    def __init__(self, counts: Sequence[float]) -> None:
        self._arr = check_counts(counts, "counts")
        self.n = len(self._arr)

    def column(self, j: int) -> np.ndarray:
        """``SAE(i, j)`` for all ``i in [0, j)``."""
        if not 0 < j <= self.n:
            raise ValueError(f"column index {j} outside [1, {self.n}]")
        arr = self._arr
        out = np.empty(j, dtype=np.float64)
        low: List[float] = []  # max-heap (negated): values <= median
        high: List[float] = []  # min-heap: values >= median
        low_sum = 0.0
        high_sum = 0.0
        for i in range(j - 1, -1, -1):
            value = float(arr[i])
            if not low or value <= -low[0]:
                heapq.heappush(low, -value)
                low_sum += value
            else:
                heapq.heappush(high, value)
                high_sum += value
            # Rebalance so len(low) == len(high) or len(low) == len(high)+1.
            if len(low) > len(high) + 1:
                moved = -heapq.heappop(low)
                low_sum -= moved
                heapq.heappush(high, moved)
                high_sum += moved
            elif len(high) > len(low):
                moved = heapq.heappop(high)
                high_sum -= moved
                heapq.heappush(low, -moved)
                low_sum += moved
            median = -low[0]
            # SAE = sum(high) - sum(low) + median * (len(low) - len(high)).
            sae = (high_sum - len(high) * median) + (len(low) * median - low_sum)
            out[i] = max(sae, 0.0)
        return out

    def interval(self, ilo: int, ihi: int, j: int) -> np.ndarray:
        return self.column(j)[ilo:ihi]

    def block(self, ilo: int, ihi: int, jlo: int, jhi: int) -> np.ndarray:
        cols = [self.column(j)[ilo:ihi] for j in range(jlo, jhi)]
        width = ihi - ilo
        out = np.zeros((jhi - jlo, width), dtype=np.float64)
        for row, col in enumerate(cols):
            out[row, : len(col)] = col
        return out

    def grid(self, starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
        """``SAE(starts[c], stops[r])`` grid via one column pass per stop.

        ``O(sum_j j log j)`` over the requested stops — adequate for the
        moderate ``n`` where a lazy SAE provider meets the approximate
        kernel (the big-n SAE path coarsens first; see
        :mod:`repro.partition.coarsen`).  Cells with ``start >= stop``
        are zero-filled garbage (caller masks them).
        """
        starts = np.asarray(starts, dtype=np.int64)
        stops = np.asarray(stops, dtype=np.int64)
        out = np.zeros((len(stops), len(starts)), dtype=np.float64)
        for row, j in enumerate(stops):
            col = self.column(int(j))  # SAE(i, j) for i in [0, j)
            valid = starts < j
            out[row, valid] = col[starts[valid]]
        return out

    def first_row(self) -> np.ndarray:
        """``SAE(0, j)`` for every ``j in [1, n]`` in one rightward pass."""
        arr = self._arr
        out = np.empty(self.n, dtype=np.float64)
        low: List[float] = []
        high: List[float] = []
        low_sum = 0.0
        high_sum = 0.0
        for j in range(self.n):
            value = float(arr[j])
            if not low or value <= -low[0]:
                heapq.heappush(low, -value)
                low_sum += value
            else:
                heapq.heappush(high, value)
                high_sum += value
            if len(low) > len(high) + 1:
                moved = -heapq.heappop(low)
                low_sum -= moved
                heapq.heappush(high, moved)
                high_sum += moved
            elif len(high) > len(low):
                moved = heapq.heappop(high)
                high_sum -= moved
                heapq.heappush(low, -moved)
                low_sum += moved
            median = -low[0]
            sae = (high_sum - len(high) * median) + (len(low) * median - low_sum)
            out[j] = max(sae, 0.0)
        return out


def as_cost_rows(cost) -> "PrefixSSECost | DenseCost | LazySAECost":
    """Coerce an ``(n, n+1)`` ndarray to :class:`DenseCost`; pass through
    anything already quacking like a cost-rows provider."""
    if isinstance(cost, np.ndarray):
        return DenseCost(cost)
    if not hasattr(cost, "n") or not hasattr(cost, "column"):
        raise TypeError(
            "cost must be an (n, n+1) ndarray or a cost-rows provider "
            f"with .n and .column(); got {type(cost).__name__}"
        )
    return cost
