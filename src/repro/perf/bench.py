"""Tracked performance benchmarks: partition kernels and publishers.

``python -m repro bench`` times

* the DP partition kernels (``reference`` / ``exact_blocked`` /
  ``exact_dc`` / ``approx``) on their honest workloads — unsorted
  counts for the exact engines, sorted counts for the Monge-certified
  divide-and-conquer path (AHP's clustering workload), both for the
  sparse ``(1 + delta)`` engine — and
* every publisher's end-to-end ``publish`` call across the profile's
  domain-size grid,

under one of three profiles: ``quick`` (CI gate, seconds),
``full`` (the long exact-kernel sweep), and ``bign`` (the big-n grid
``n = 2^14 .. 2^20`` every structure-aware publisher now traverses via
the approx kernel and the coarse Gibbs grid).  ``quick``/``full``
write ``BENCH_partition.json`` and ``BENCH_publishers.json``; ``bign``
writes both kinds of entries into a third tracked artifact,
``BENCH_bign.json``.

A requested case whose domain size exceeds the engine's honest ceiling
(:data:`KERNEL_CEILINGS` / :data:`PUBLISHER_CEILINGS`) is **skipped,
never silently capped**: the dropped key is logged and recorded under
the payload's ``"skipped"`` map, so coverage gaps are visible in the
tracked JSON instead of masquerading as smaller runs.

Timings are wall-clock seconds (best of ``repeats``), plus a
*calibration-normalized* value: every run first times a fixed numpy
workload (:func:`machine_calibration`) and divides each benchmark by it,
so results compare meaningfully across machines of different speeds.
``--check`` compares a fresh run against the committed files and fails
on any matching entry that regressed more than
:data:`REGRESSION_THRESHOLD` (25%) in normalized time — entries faster
than :data:`TIME_FLOOR` seconds are ignored as timer noise.  The CI
``bench-perf`` lane runs exactly this.

See ``docs/performance.md`` for the file format and the measured
speedup table.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.obs.trace import best_of
from repro.robust.atomicio import atomic_write_text

__all__ = [
    "BENCH_BIGN",
    "BENCH_PARTITION",
    "BENCH_PUBLISHERS",
    "HISTORY_CHECK_WINDOW",
    "KERNEL_CEILINGS",
    "PROFILES",
    "PUBLISHER_CEILINGS",
    "REGRESSION_THRESHOLD",
    "TIME_FLOOR",
    "history_baseline",
    "machine_calibration",
    "bench_partition",
    "bench_publishers",
    "check_regression",
    "load_results",
    "write_results",
    "run_bench",
]

#: Tracked result files, written at the repository root.
BENCH_PARTITION = "BENCH_partition.json"
BENCH_PUBLISHERS = "BENCH_publishers.json"
BENCH_BIGN = "BENCH_bign.json"

#: Benchmark profiles: ``quick`` is the CI gate, ``full`` the long
#: exact-kernel sweep, ``bign`` the ``2^14 .. 2^20`` scaling grid.
PROFILES = ("quick", "full", "bign")

#: JSON schema version; bump when keys or semantics change.
#: v2 added the ``"skipped"`` coverage-gap map.
SCHEMA_VERSION = 2

#: Largest domain size each partition kernel is benched at — its honest
#: wall, not a tuning knob: ``reference`` is the O(n^2 k) correctness
#: anchor, ``exact_blocked`` the same candidate set with blocked sweeps,
#: ``exact_dc`` holds O(n k log n) only on Monge inputs but pays dense
#: O(n k) tables (45 s and ~140 MB at 2^16), and the sparse ``approx``
#: engine runs the whole big-n grid in seconds.  Requests beyond a
#: ceiling are skipped and logged, never capped.
KERNEL_CEILINGS = {
    "reference": 4096,
    "exact_blocked": 8192,
    "exact_dc": 65536,
    "approx": 1 << 20,
    "auto": 1 << 20,
}

#: Largest domain size each publisher is benched at.  Since the approx
#: kernel and the coarse Gibbs grid landed, every publisher traverses
#: the full ``2^20`` grid; the table stays so a future entry that
#: cannot reach a requested size is *skipped and logged* rather than
#: silently capped (the historical behaviour this replaced).
PUBLISHER_CEILINGS = {
    "dwork": 1 << 20,
    "boost": 1 << 20,
    "privelet": 1 << 20,
    "ahp": 1 << 20,
    "noisefirst": 1 << 20,
    "structurefirst": 1 << 20,
    "dawa-lite": 1 << 20,
}

#: Relative slowdown (in calibration-normalized seconds) that fails
#: ``--check``: fresh > (1 + threshold) * baseline.
REGRESSION_THRESHOLD = 0.25

#: Entries whose fresh wall-clock is below this many seconds are exempt
#: from the regression gate — they are dominated by timer jitter.
TIME_FLOOR = 0.05

#: With ``--history``, ``--check`` gates against the *median* of this
#: many most-recent history entries per key instead of the single
#: committed snapshot — one noisy baseline run can no longer mask (or
#: fake) a regression, and a trajectory accumulates instead of being
#: clobbered in place.
HISTORY_CHECK_WINDOW = 5


# The repo's one best-of-N timer lives in the observability layer
# (``repro.obs.trace.best_of``); keep the historical private name as an
# alias so downstream callers and the tracked-baseline tooling are
# untouched.
_best_of = best_of


def machine_calibration(repeats: int = 3) -> float:
    """Seconds for a fixed numpy workload on this machine.

    The workload (strided adds, row argmins, cumulative sums — the
    primitives the DP kernels spend their time in) is deterministic, so
    the number is a pure machine-speed probe.  Dividing every benchmark
    by it yields machine-portable "calibration units" that the
    regression gate compares across runs on different hardware.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((96, 8192))

    def work() -> None:
        for _ in range(8):
            b = a + a
            np.argmin(b, axis=1)
            np.cumsum(a, axis=1)
        # Keep the optimizer honest.
        float(b.sum())

    work()  # warm-up
    return _best_of(work, repeats)


# ---------------------------------------------------------------------------
# Partition-kernel benchmarks
# ---------------------------------------------------------------------------

def _partition_cases(profile: str) -> List[Tuple[str, bool, int, int]]:
    """(kernel, sorted_input, n, max_k) cases per profile.

    The reference kernel is O(n^2 k) and exists as a correctness anchor,
    so it is capped small; the exact blocked kernel runs the same
    candidate set faster; the divide-and-conquer kernel only engages on
    sorted (Monge-certified) inputs, its honest workload; the sparse
    approx engine covers both workloads and owns the big-n grid.

    The ``bign`` profile deliberately *requests* every kernel at every
    grid size — the exact kernels fall over their
    :data:`KERNEL_CEILINGS` there, so the tracked ``BENCH_bign.json``
    records them as skipped coverage gaps rather than quietly shrinking
    the grid.
    """
    if profile == "quick":
        return [
            ("reference", False, 512, 32),
            ("reference", False, 1024, 32),
            ("exact_blocked", False, 512, 32),
            ("exact_blocked", False, 1024, 32),
            ("exact_blocked", False, 2048, 32),
            ("exact_dc", True, 1024, 32),
            ("exact_dc", True, 2048, 32),
            ("exact_dc", True, 4096, 32),
            ("approx", False, 2048, 32),
            ("approx", False, 4096, 32),
        ]
    if profile == "bign":
        kernels = [("reference", False), ("exact_blocked", False),
                   ("exact_dc", True), ("approx", False),
                   ("approx", True)]
        return [(kernel, sorted_input, 1 << p, 128)
                for p in (14, 16, 18, 20)
                for kernel, sorted_input in kernels]
    return [
        ("reference", False, 1024, 128),
        ("reference", False, 4096, 128),
        ("exact_blocked", False, 1024, 128),
        ("exact_blocked", False, 4096, 128),
        ("exact_blocked", False, 8192, 128),
        ("exact_dc", True, 1024, 128),
        ("exact_dc", True, 4096, 128),
        ("exact_dc", True, 16384, 128),
        ("exact_dc", True, 65536, 128),
        ("approx", False, 4096, 128),
        ("approx", False, 16384, 128),
        ("approx", False, 65536, 128),
    ]


def bench_partition(
    quick: bool = True,
    repeats: int = 2,
    cases: Optional[Iterable[Tuple[str, bool, int, int]]] = None,
    profile: Optional[str] = None,
    skipped: Optional[Dict[str, str]] = None,
) -> Dict[str, float]:
    """Time :func:`repro.partition.voptimal.voptimal_table` per kernel.

    Keys: ``"voptimal/<kernel>/<sorted|unsorted>/n=<n>/k=<k>"`` mapping
    to best-of wall-clock seconds.  Cases whose ``n`` exceeds the
    kernel's :data:`KERNEL_CEILINGS` entry are dropped; pass ``skipped``
    (a dict) to collect ``{key: reason}`` for the dropped cases.
    """
    from repro.partition.voptimal import voptimal_table

    if cases is None:
        cases = _partition_cases(profile or ("quick" if quick else "full"))
    rng = np.random.default_rng(20120401)
    results: Dict[str, float] = {}
    for kernel, sorted_input, n, max_k in cases:
        label = "sorted" if sorted_input else "unsorted"
        key = f"voptimal/{kernel}/{label}/n={n}/k={max_k}"
        ceiling = KERNEL_CEILINGS.get(kernel, 1 << 20)
        if n > ceiling:
            if skipped is not None:
                skipped[key] = (
                    f"n={n} exceeds the {kernel} kernel ceiling {ceiling}"
                )
            continue
        counts = rng.poisson(50.0, size=n).astype(np.float64)
        if sorted_input:
            counts.sort()
        results[key] = _best_of(
            lambda: voptimal_table(counts, max_k, kernel=kernel), repeats
        )
    return results


# ---------------------------------------------------------------------------
# Publisher benchmarks
# ---------------------------------------------------------------------------

def _publisher_cases(profile: str) -> List[Tuple[str, int]]:
    """(publisher, n) cases: one uniform grid per profile.

    Every publisher gets the *same* requested grid; a publisher that
    cannot reach a size falls over its :data:`PUBLISHER_CEILINGS` entry
    and is skipped with a logged, payload-recorded gap.  (Historically
    each publisher had a hand-capped private grid — the caps silently
    shrank coverage; since the approx kernel and the coarse Gibbs grid,
    all publishers traverse the full big-n grid anyway.)
    """
    if profile == "quick":
        sizes: Tuple[int, ...] = (1024, 4096)
    elif profile == "bign":
        sizes = (1 << 14, 1 << 16, 1 << 18, 1 << 20)
    else:
        sizes = (1024, 4096, 16384, 65536)
    return [(name, n) for name in sorted(PUBLISHER_CEILINGS)
            for n in sizes]


def _publisher_factories() -> Dict[str, Callable[[], Any]]:
    from repro.baselines import Ahp, Boost, DawaLite, DworkIdentity, Privelet
    from repro.core import NoiseFirst, StructureFirst

    return {
        "dwork": DworkIdentity,
        "boost": Boost,
        "privelet": Privelet,
        "ahp": Ahp,
        "noisefirst": NoiseFirst,
        "structurefirst": lambda: StructureFirst(k=32),
        "dawa-lite": lambda: DawaLite(k=32),
    }


def bench_publishers(
    quick: bool = True,
    repeats: int = 1,
    epsilon: float = 0.5,
    cases: Optional[Iterable[Tuple[str, int]]] = None,
    profile: Optional[str] = None,
    skipped: Optional[Dict[str, str]] = None,
) -> Dict[str, float]:
    """Time one seeded end-to-end ``publish`` per (publisher, n).

    Keys: ``"publish/<publisher>/n=<n>"`` mapping to best-of wall-clock
    seconds.  The input is a seeded shuffled-Zipf histogram (bursty,
    unsorted — the regime the paper's figures use).  Cases beyond the
    publisher's :data:`PUBLISHER_CEILINGS` entry are dropped; pass
    ``skipped`` (a dict) to collect ``{key: reason}`` for them.
    """
    from repro.datasets.generators import zipf_histogram

    if cases is None:
        cases = _publisher_cases(profile or ("quick" if quick else "full"))
    factories = _publisher_factories()
    results: Dict[str, float] = {}
    histograms: Dict[int, Any] = {}
    for name, n in cases:
        key = f"publish/{name}/n={n}"
        ceiling = PUBLISHER_CEILINGS.get(name, 1 << 20)
        if n > ceiling:
            if skipped is not None:
                skipped[key] = (
                    f"n={n} exceeds the {name} publisher ceiling {ceiling}"
                )
            continue
        if n not in histograms:
            histograms[n] = zipf_histogram(n, total=100 * n, rng=7,
                                           shuffle=True)
        histogram = histograms[n]
        publisher = factories[name]()
        results[key] = _best_of(
            lambda: publisher.publish(histogram, epsilon, rng=1234), repeats
        )
    return results


# ---------------------------------------------------------------------------
# Result files + regression gate
# ---------------------------------------------------------------------------

def _payload(entries: Dict[str, float], calibration: float,
             profile: str,
             skipped: Optional[Dict[str, str]] = None) -> Dict[str, Any]:
    payload = {
        "schema": SCHEMA_VERSION,
        "profile": profile,
        "calibration_seconds": calibration,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "entries": {
            key: {
                "seconds": round(seconds, 6),
                "normalized": round(seconds / calibration, 3),
            }
            for key, seconds in sorted(entries.items())
        },
    }
    if skipped:
        payload["skipped"] = dict(sorted(skipped.items()))
    return payload


def write_results(path: Path, entries: Dict[str, float],
                  calibration: float, profile: str,
                  skipped: Optional[Dict[str, str]] = None) -> None:
    """Write one ``BENCH_*.json`` atomically.

    Goes through :func:`repro.robust.atomicio.atomic_write_text`
    (same-directory temp file + ``os.replace``), so a crash mid-write
    can never corrupt a committed baseline — the regression gate always
    sees either the old payload or the new one, never a torn file.
    """
    payload = _payload(entries, calibration, profile, skipped=skipped)
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")


def load_results(path: Path) -> Optional[Dict[str, Any]]:
    if not path.exists():
        return None
    return json.loads(path.read_text())


def check_regression(
    fresh: Dict[str, Any],
    baseline: Optional[Dict[str, Any]],
    threshold: float = REGRESSION_THRESHOLD,
    floor: float = TIME_FLOOR,
) -> List[str]:
    """Regressed entry keys (normalized slowdown > ``threshold``).

    Only keys present in *both* payloads are compared (new benchmarks
    are allowed in without a baseline; retired ones don't block).
    Entries whose fresh wall-clock is under ``floor`` seconds are
    skipped: at that scale the gate would be testing the timer.
    """
    if baseline is None:
        return []
    failures: List[str] = []
    base_entries = baseline.get("entries", {})
    for key, fresh_entry in fresh.get("entries", {}).items():
        base_entry = base_entries.get(key)
        if base_entry is None:
            continue
        if fresh_entry["seconds"] < floor:
            continue
        base_norm = base_entry["normalized"]
        if base_norm <= 0:
            continue
        ratio = fresh_entry["normalized"] / base_norm
        if ratio > 1.0 + threshold:
            failures.append(
                f"{key}: {fresh_entry['normalized']:.3f} vs baseline "
                f"{base_norm:.3f} calibration units ({ratio:.2f}x)"
            )
    return failures


def history_baseline(
    store: Any,
    profile: str,
    bench_file: str,
    window: int = HISTORY_CHECK_WINDOW,
) -> Optional[Dict[str, Any]]:
    """Synthetic baseline payload from the run-history trajectory.

    For every key the store has seen for ``bench_file`` under the same
    profile, the baseline entry is the *median* of the last ``window``
    normalized (and raw-seconds) observations.  Returns ``None`` when
    the store holds no matching trajectory yet, so callers can fall
    back to the committed snapshot file.
    """
    import statistics

    entries: Dict[str, Any] = {}
    for key in store.bench_keys():
        series = [
            point for point in store.bench_series(key)
            if point["profile"] == profile
            and point["bench_file"] == bench_file
        ]
        if not series:
            continue
        tail = series[-window:]
        entries[key] = {
            "normalized": statistics.median(
                float(p["normalized"]) for p in tail
            ),
            "seconds": statistics.median(
                float(p["seconds"]) for p in tail
            ),
            "window": len(tail),
        }
    if not entries:
        return None
    return {"profile": profile, "entries": entries}


def _filter_max_n(cases: List[Tuple], max_n: Optional[int],
                  key_fn: Callable[[Tuple], str],
                  skipped: Dict[str, str]) -> List[Tuple]:
    """Drop cases whose ``n`` (second-to-last int field) exceeds ``max_n``.

    Deliberate slicing (e.g. the CI ``bench-bign`` lane stops at 2^18)
    is still a coverage gap, so the dropped keys are recorded alongside
    the ceiling skips.
    """
    if max_n is None:
        return cases
    kept = []
    for case in cases:
        n = case[2] if len(case) == 4 else case[1]
        if n > max_n:
            skipped[key_fn(case)] = f"n={n} beyond --max-n {max_n}"
        else:
            kept.append(case)
    return kept


def _partition_key(case: Tuple[str, bool, int, int]) -> str:
    kernel, sorted_input, n, max_k = case
    label = "sorted" if sorted_input else "unsorted"
    return f"voptimal/{kernel}/{label}/n={n}/k={max_k}"


def _publisher_key(case: Tuple[str, int]) -> str:
    name, n = case
    return f"publish/{name}/n={n}"


def run_bench(
    quick: bool = True,
    check: bool = False,
    output_dir: "Path | str | None" = None,
    history: "Path | str | None" = None,
    history_window: int = HISTORY_CHECK_WINDOW,
    profile: Optional[str] = None,
    max_n: Optional[int] = None,
) -> int:
    """Run the benches, write ``BENCH_*.json``, optionally gate.

    ``profile`` overrides the ``quick`` flag when given (one of
    :data:`PROFILES`).  The ``quick``/``full`` profiles write the
    partition and publisher files; ``bign`` merges both runners into
    ``BENCH_bign.json``.  ``max_n`` slices the requested grid (dropped
    keys are recorded as skips), which is how the CI ``bench-bign``
    lane stops at 2^18.

    The fresh snapshot is always written *atomically* (temp file +
    ``os.replace``); with ``history`` set, every entry is additionally
    appended — dated and commit-stamped — to the run-history store, so
    a trajectory accumulates instead of each run clobbering the last.
    ``check`` then gates against the median of the last
    ``history_window`` history entries per key (falling back to the
    committed snapshot while the trajectory is still empty).

    Returns a process exit code: 0 on success, 1 when ``check`` finds a
    regression.
    """
    root = Path(output_dir) if output_dir is not None else _repo_root()
    if profile is None:
        profile = "quick" if quick else "full"
    if profile not in PROFILES:
        raise ValueError(f"profile must be one of {PROFILES}, "
                         f"got {profile!r}")
    calibration = machine_calibration()
    print(f"calibration: {calibration:.4f}s ({profile} profile)")

    store = None
    if history is not None:
        from repro.obs.history import HistoryStore

        store = HistoryStore(history)

    partition_job = (_partition_cases, _partition_key, bench_partition)
    publisher_job = (_publisher_cases, _publisher_key, bench_publishers)
    if profile == "bign":
        jobs = [(BENCH_BIGN, (partition_job, publisher_job))]
    else:
        jobs = [(BENCH_PARTITION, (partition_job,)),
                (BENCH_PUBLISHERS, (publisher_job,))]

    # The bign grid's slowest single case runs minutes under best-of-2;
    # one repeat per case keeps the whole profile in CI territory.
    partition_repeats = 1 if profile == "bign" else 2

    exit_code = 0
    try:
        for filename, runners in jobs:
            path = root / filename
            entries: Dict[str, float] = {}
            skipped: Dict[str, str] = {}
            for case_fn, key_fn, runner in runners:
                cases = _filter_max_n(
                    list(case_fn(profile)), max_n, key_fn, skipped
                )
                kwargs: Dict[str, Any] = {}
                if runner is bench_partition:
                    kwargs["repeats"] = partition_repeats
                entries.update(
                    runner(cases=cases, profile=profile,
                           skipped=skipped, **kwargs)
                )
            payload = _payload(entries, calibration, profile,
                               skipped=skipped)
            for key, entry in payload["entries"].items():
                print(f"  {key}: {entry['seconds']:.3f}s "
                      f"({entry['normalized']:.2f} cal)")
            for key, reason in sorted(skipped.items()):
                print(f"  skip {key}: {reason}")
            if check:
                baseline = None
                source = "no baseline"
                if store is not None:
                    baseline = history_baseline(
                        store, profile, filename, window=history_window
                    )
                    if baseline is not None:
                        source = (
                            f"history median (window "
                            f"{history_window})"
                        )
                if baseline is None:
                    file_baseline = load_results(path)
                    baseline_profile = (file_baseline or {}).get("profile")
                    if file_baseline is not None \
                            and baseline_profile == profile:
                        baseline = file_baseline
                        source = "committed snapshot"
                    elif file_baseline is not None:
                        print(f"  [{filename}] baseline profile "
                              f"{baseline_profile!r} != {profile!r}; "
                              f"skipping gate")
                failures = check_regression(payload, baseline)
                if baseline is None:
                    print(f"  [{filename}] no baseline; writing fresh")
                else:
                    print(f"  [{filename}] gate baseline: {source}")
                for failure in failures:
                    print(f"  REGRESSION {failure}")
                if failures:
                    exit_code = 1
            write_results(path, entries, calibration, profile,
                          skipped=skipped)
            print(f"wrote {path}")
            if store is not None:
                result = store.ingest_bench_payload(payload, filename)
                print(f"  history: {result.describe()}")
    finally:
        if store is not None:
            store.close()
    return exit_code


def _repo_root() -> Path:
    """Repository root: nearest ancestor of this file holding ROADMAP.md,
    falling back to the current directory (e.g. installed packages)."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "ROADMAP.md").exists():
            return parent
    return Path.cwd()
