"""Tracked performance benchmarks: partition kernels and publishers.

``python -m repro bench`` times

* the DP partition kernels (``reference`` / ``exact_blocked`` /
  ``exact_dc``) on their honest workloads — unsorted counts for the
  exact engines, sorted counts for the Monge-certified
  divide-and-conquer path (AHP's clustering workload), and
* every publisher's end-to-end ``publish`` call across domain sizes
  ``n = 2^10 .. 2^16`` (each publisher capped at the largest size its
  asymptotics afford; the caps are part of the tracked schema),

and writes two JSON files at the repository root:
``BENCH_partition.json`` and ``BENCH_publishers.json``.

Timings are wall-clock seconds (best of ``repeats``), plus a
*calibration-normalized* value: every run first times a fixed numpy
workload (:func:`machine_calibration`) and divides each benchmark by it,
so results compare meaningfully across machines of different speeds.
``--check`` compares a fresh run against the committed files and fails
on any matching entry that regressed more than
:data:`REGRESSION_THRESHOLD` (25%) in normalized time — entries faster
than :data:`TIME_FLOOR` seconds are ignored as timer noise.  The CI
``bench-perf`` lane runs exactly this.

See ``docs/performance.md`` for the file format and the measured
speedup table.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.obs.trace import best_of
from repro.robust.atomicio import atomic_write_text

__all__ = [
    "BENCH_PARTITION",
    "BENCH_PUBLISHERS",
    "HISTORY_CHECK_WINDOW",
    "REGRESSION_THRESHOLD",
    "TIME_FLOOR",
    "history_baseline",
    "machine_calibration",
    "bench_partition",
    "bench_publishers",
    "check_regression",
    "load_results",
    "write_results",
    "run_bench",
]

#: Tracked result files, written at the repository root.
BENCH_PARTITION = "BENCH_partition.json"
BENCH_PUBLISHERS = "BENCH_publishers.json"

#: JSON schema version; bump when keys or semantics change.
SCHEMA_VERSION = 1

#: Relative slowdown (in calibration-normalized seconds) that fails
#: ``--check``: fresh > (1 + threshold) * baseline.
REGRESSION_THRESHOLD = 0.25

#: Entries whose fresh wall-clock is below this many seconds are exempt
#: from the regression gate — they are dominated by timer jitter.
TIME_FLOOR = 0.05

#: With ``--history``, ``--check`` gates against the *median* of this
#: many most-recent history entries per key instead of the single
#: committed snapshot — one noisy baseline run can no longer mask (or
#: fake) a regression, and a trajectory accumulates instead of being
#: clobbered in place.
HISTORY_CHECK_WINDOW = 5


# The repo's one best-of-N timer lives in the observability layer
# (``repro.obs.trace.best_of``); keep the historical private name as an
# alias so downstream callers and the tracked-baseline tooling are
# untouched.
_best_of = best_of


def machine_calibration(repeats: int = 3) -> float:
    """Seconds for a fixed numpy workload on this machine.

    The workload (strided adds, row argmins, cumulative sums — the
    primitives the DP kernels spend their time in) is deterministic, so
    the number is a pure machine-speed probe.  Dividing every benchmark
    by it yields machine-portable "calibration units" that the
    regression gate compares across runs on different hardware.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((96, 8192))

    def work() -> None:
        for _ in range(8):
            b = a + a
            np.argmin(b, axis=1)
            np.cumsum(a, axis=1)
        # Keep the optimizer honest.
        float(b.sum())

    work()  # warm-up
    return _best_of(work, repeats)


# ---------------------------------------------------------------------------
# Partition-kernel benchmarks
# ---------------------------------------------------------------------------

def _partition_cases(quick: bool) -> List[Tuple[str, bool, int, int]]:
    """(kernel, sorted_input, n, max_k) cases per profile.

    The reference kernel is O(n^2 k) and exists as a correctness anchor,
    so it is capped small; the exact blocked kernel runs the same
    candidate set faster; the divide-and-conquer kernel only engages on
    sorted (Monge-certified) inputs, its honest workload.
    """
    if quick:
        return [
            ("reference", False, 512, 32),
            ("reference", False, 1024, 32),
            ("exact_blocked", False, 512, 32),
            ("exact_blocked", False, 1024, 32),
            ("exact_blocked", False, 2048, 32),
            ("exact_dc", True, 1024, 32),
            ("exact_dc", True, 2048, 32),
            ("exact_dc", True, 4096, 32),
        ]
    return [
        ("reference", False, 1024, 128),
        ("reference", False, 4096, 128),
        ("exact_blocked", False, 1024, 128),
        ("exact_blocked", False, 4096, 128),
        ("exact_blocked", False, 8192, 128),
        ("exact_dc", True, 1024, 128),
        ("exact_dc", True, 4096, 128),
        ("exact_dc", True, 16384, 128),
        ("exact_dc", True, 65536, 128),
    ]


def bench_partition(
    quick: bool = True,
    repeats: int = 2,
    cases: Optional[Iterable[Tuple[str, bool, int, int]]] = None,
) -> Dict[str, float]:
    """Time :func:`repro.partition.voptimal.voptimal_table` per kernel.

    Keys: ``"voptimal/<kernel>/<sorted|unsorted>/n=<n>/k=<k>"`` mapping
    to best-of wall-clock seconds.
    """
    from repro.partition.voptimal import voptimal_table

    if cases is None:
        cases = _partition_cases(quick)
    rng = np.random.default_rng(20120401)
    results: Dict[str, float] = {}
    for kernel, sorted_input, n, max_k in cases:
        counts = rng.poisson(50.0, size=n).astype(np.float64)
        if sorted_input:
            counts.sort()
        label = "sorted" if sorted_input else "unsorted"
        key = f"voptimal/{kernel}/{label}/n={n}/k={max_k}"
        results[key] = _best_of(
            lambda: voptimal_table(counts, max_k, kernel=kernel), repeats
        )
    return results


# ---------------------------------------------------------------------------
# Publisher benchmarks
# ---------------------------------------------------------------------------

def _publisher_cases(quick: bool) -> List[Tuple[str, int]]:
    """(publisher, n) cases.

    Size caps reflect each publisher's asymptotics: the Gibbs samplers
    (StructureFirst, DAWA-lite) are O(n^2 k) time — O(n k) memory since
    the lazy cost rows — so they stop at 4096; NoiseFirst's exact
    unsorted DP stops at 8192; AHP rides the divide-and-conquer kernel
    to 65536 alongside the near-linear baselines.
    """
    cheap = ("dwork", "boost", "privelet", "ahp")
    if quick:
        cases = [(name, n) for name in cheap for n in (1024, 4096)]
        cases += [("noisefirst", n) for n in (1024, 2048)]
        cases += [(name, n) for name in ("structurefirst", "dawa-lite")
                  for n in (256, 512)]
        return cases
    cases = [(name, n) for name in cheap
             for n in (1024, 4096, 16384, 65536)]
    cases += [("noisefirst", n) for n in (1024, 4096, 8192)]
    cases += [(name, n) for name in ("structurefirst", "dawa-lite")
              for n in (1024, 2048, 4096)]
    return cases


def _publisher_factories() -> Dict[str, Callable[[], Any]]:
    from repro.baselines import Ahp, Boost, DawaLite, DworkIdentity, Privelet
    from repro.core import NoiseFirst, StructureFirst

    return {
        "dwork": DworkIdentity,
        "boost": Boost,
        "privelet": Privelet,
        "ahp": Ahp,
        "noisefirst": NoiseFirst,
        "structurefirst": lambda: StructureFirst(k=32),
        "dawa-lite": lambda: DawaLite(k=32),
    }


def bench_publishers(
    quick: bool = True,
    repeats: int = 1,
    epsilon: float = 0.5,
    cases: Optional[Iterable[Tuple[str, int]]] = None,
) -> Dict[str, float]:
    """Time one seeded end-to-end ``publish`` per (publisher, n).

    Keys: ``"publish/<publisher>/n=<n>"`` mapping to best-of wall-clock
    seconds.  The input is a seeded shuffled-Zipf histogram (bursty,
    unsorted — the regime the paper's figures use).
    """
    from repro.datasets.generators import zipf_histogram

    if cases is None:
        cases = _publisher_cases(quick)
    factories = _publisher_factories()
    results: Dict[str, float] = {}
    histograms: Dict[int, Any] = {}
    for name, n in cases:
        if n not in histograms:
            histograms[n] = zipf_histogram(n, total=100 * n, rng=7,
                                           shuffle=True)
        histogram = histograms[n]
        publisher = factories[name]()
        results[f"publish/{name}/n={n}"] = _best_of(
            lambda: publisher.publish(histogram, epsilon, rng=1234), repeats
        )
    return results


# ---------------------------------------------------------------------------
# Result files + regression gate
# ---------------------------------------------------------------------------

def _payload(entries: Dict[str, float], calibration: float,
             profile: str) -> Dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "profile": profile,
        "calibration_seconds": calibration,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "entries": {
            key: {
                "seconds": round(seconds, 6),
                "normalized": round(seconds / calibration, 3),
            }
            for key, seconds in sorted(entries.items())
        },
    }


def write_results(path: Path, entries: Dict[str, float],
                  calibration: float, profile: str) -> None:
    """Write one ``BENCH_*.json`` atomically.

    Goes through :func:`repro.robust.atomicio.atomic_write_text`
    (same-directory temp file + ``os.replace``), so a crash mid-write
    can never corrupt a committed baseline — the regression gate always
    sees either the old payload or the new one, never a torn file.
    """
    payload = _payload(entries, calibration, profile)
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")


def load_results(path: Path) -> Optional[Dict[str, Any]]:
    if not path.exists():
        return None
    return json.loads(path.read_text())


def check_regression(
    fresh: Dict[str, Any],
    baseline: Optional[Dict[str, Any]],
    threshold: float = REGRESSION_THRESHOLD,
    floor: float = TIME_FLOOR,
) -> List[str]:
    """Regressed entry keys (normalized slowdown > ``threshold``).

    Only keys present in *both* payloads are compared (new benchmarks
    are allowed in without a baseline; retired ones don't block).
    Entries whose fresh wall-clock is under ``floor`` seconds are
    skipped: at that scale the gate would be testing the timer.
    """
    if baseline is None:
        return []
    failures: List[str] = []
    base_entries = baseline.get("entries", {})
    for key, fresh_entry in fresh.get("entries", {}).items():
        base_entry = base_entries.get(key)
        if base_entry is None:
            continue
        if fresh_entry["seconds"] < floor:
            continue
        base_norm = base_entry["normalized"]
        if base_norm <= 0:
            continue
        ratio = fresh_entry["normalized"] / base_norm
        if ratio > 1.0 + threshold:
            failures.append(
                f"{key}: {fresh_entry['normalized']:.3f} vs baseline "
                f"{base_norm:.3f} calibration units ({ratio:.2f}x)"
            )
    return failures


def history_baseline(
    store: Any,
    profile: str,
    bench_file: str,
    window: int = HISTORY_CHECK_WINDOW,
) -> Optional[Dict[str, Any]]:
    """Synthetic baseline payload from the run-history trajectory.

    For every key the store has seen for ``bench_file`` under the same
    profile, the baseline entry is the *median* of the last ``window``
    normalized (and raw-seconds) observations.  Returns ``None`` when
    the store holds no matching trajectory yet, so callers can fall
    back to the committed snapshot file.
    """
    import statistics

    entries: Dict[str, Any] = {}
    for key in store.bench_keys():
        series = [
            point for point in store.bench_series(key)
            if point["profile"] == profile
            and point["bench_file"] == bench_file
        ]
        if not series:
            continue
        tail = series[-window:]
        entries[key] = {
            "normalized": statistics.median(
                float(p["normalized"]) for p in tail
            ),
            "seconds": statistics.median(
                float(p["seconds"]) for p in tail
            ),
            "window": len(tail),
        }
    if not entries:
        return None
    return {"profile": profile, "entries": entries}


def run_bench(
    quick: bool = True,
    check: bool = False,
    output_dir: "Path | str | None" = None,
    history: "Path | str | None" = None,
    history_window: int = HISTORY_CHECK_WINDOW,
) -> int:
    """Run both benches, write ``BENCH_*.json``, optionally gate.

    The fresh snapshot is always written *atomically* (temp file +
    ``os.replace``); with ``history`` set, every entry is additionally
    appended — dated and commit-stamped — to the run-history store, so
    a trajectory accumulates instead of each run clobbering the last.
    ``check`` then gates against the median of the last
    ``history_window`` history entries per key (falling back to the
    committed snapshot while the trajectory is still empty).

    Returns a process exit code: 0 on success, 1 when ``check`` finds a
    regression.
    """
    root = Path(output_dir) if output_dir is not None else _repo_root()
    profile = "quick" if quick else "full"
    calibration = machine_calibration()
    print(f"calibration: {calibration:.4f}s ({profile} profile)")

    store = None
    if history is not None:
        from repro.obs.history import HistoryStore

        store = HistoryStore(history)

    exit_code = 0
    try:
        for filename, runner in (
            (BENCH_PARTITION, bench_partition),
            (BENCH_PUBLISHERS, bench_publishers),
        ):
            path = root / filename
            entries = runner(quick=quick)
            payload = _payload(entries, calibration, profile)
            for key, entry in payload["entries"].items():
                print(f"  {key}: {entry['seconds']:.3f}s "
                      f"({entry['normalized']:.2f} cal)")
            if check:
                baseline = None
                source = "no baseline"
                if store is not None:
                    baseline = history_baseline(
                        store, profile, filename, window=history_window
                    )
                    if baseline is not None:
                        source = (
                            f"history median (window "
                            f"{history_window})"
                        )
                if baseline is None:
                    file_baseline = load_results(path)
                    baseline_profile = (file_baseline or {}).get("profile")
                    if file_baseline is not None \
                            and baseline_profile == profile:
                        baseline = file_baseline
                        source = "committed snapshot"
                    elif file_baseline is not None:
                        print(f"  [{filename}] baseline profile "
                              f"{baseline_profile!r} != {profile!r}; "
                              f"skipping gate")
                failures = check_regression(payload, baseline)
                if baseline is None:
                    print(f"  [{filename}] no baseline; writing fresh")
                else:
                    print(f"  [{filename}] gate baseline: {source}")
                for failure in failures:
                    print(f"  REGRESSION {failure}")
                if failures:
                    exit_code = 1
            write_results(path, entries, calibration, profile)
            print(f"wrote {path}")
            if store is not None:
                result = store.ingest_bench_payload(payload, filename)
                print(f"  history: {result.describe()}")
    finally:
        if store is not None:
            store.close()
    return exit_code


def _repo_root() -> Path:
    """Repository root: nearest ancestor of this file holding ROADMAP.md,
    falling back to the current directory (e.g. installed packages)."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "ROADMAP.md").exists():
            return parent
    return Path.cwd()
