"""Command-line interface: ``python -m repro <experiment-id> [...]``.

Examples
--------
List everything::

    python -m repro --list

Run one figure quickly::

    python -m repro fig_range_vs_len --quick

Run a seed-parallel figure on four worker processes (bit-identical to
the serial run)::

    python -m repro fig_point_vs_eps --quick --n-jobs 4

Run the full evaluation (slow; this is what EXPERIMENTS.md records)::

    python -m repro all

Check one publisher's empirical error against its closed-form oracle::

    python -m repro verify --publisher boost --epsilon 0.1 --trials 60

Refresh the tracked performance benchmarks (and gate on regressions)::

    python -m repro bench --quick --check

Run a fault-tolerant, journaled publisher sweep — and resume it after a
crash or SIGKILL, bit-identically::

    python -m repro run --journal sweep.jsonl --n-jobs 4 \
        --timeout 120 --retries 2
    python -m repro run --journal sweep.jsonl --n-jobs 4 \
        --timeout 120 --retries 2 --resume
    python -m repro run --journal sweep.jsonl --n-jobs 4 \
        --resume --retry-failed   # re-attempt quarantined seeds too

Run a traced sweep with live progress and a Prometheus metrics dump,
then render the markdown run report from its journal::

    python -m repro run --journal sweep.jsonl --n-jobs 4 \
        --trace --progress tty --metrics-out metrics.prom
    python -m repro report sweep.jsonl --out report.md
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments.registry import list_experiments, run_experiment
from repro.experiments.tables import render_table

__all__ = ["main"]

#: Default trial count for ``verify``; 60 keeps the CLI check fast while
#: the z=5 band still puts the false-alarm rate well below 1e-5.
_VERIFY_TRIALS = 60


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dphist",
        description="Regenerate the evaluation of 'Differentially Private "
                    "Histogram Publication' (ICDE 2012).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (see --list), 'all' to run everything, "
             "'verify' to calibrate a publisher against its error oracle, "
             "'bench' to refresh the tracked performance benchmarks, "
             "'run' for a fault-tolerant journaled publisher sweep, or "
             "'report' to render a markdown run report from a journal",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="for 'report': the checkpoint-journal path to render",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink grids/seeds so each experiment finishes in seconds",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_experiments",
        help="list the available experiment ids and exit",
    )
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for seed-parallel experiments "
             "(1 = serial, -1 = all CPUs); results are bit-identical "
             "to the serial run",
    )
    verify = parser.add_argument_group(
        "verify options", "only used with the 'verify' experiment id"
    )
    verify.add_argument(
        "--publisher",
        default="dwork",
        help="publisher to calibrate (see repro.verify.ORACLE_BUILDERS)",
    )
    verify.add_argument(
        "--epsilon",
        type=float,
        default=0.5,
        help="privacy budget for the calibration publishes",
    )
    verify.add_argument(
        "--trials",
        type=int,
        default=_VERIFY_TRIALS,
        help="number of independent publishes to average",
    )
    verify.add_argument(
        "--bins",
        type=int,
        default=64,
        help="domain size of the synthetic step dataset",
    )
    verify.add_argument(
        "--seed",
        type=int,
        default=0,
        help="root seed of the deterministic verification streams",
    )
    bench = parser.add_argument_group(
        "bench options", "only used with the 'bench' experiment id"
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed BENCH_*.json baselines and "
             "exit 1 on a >25%% calibration-normalized regression",
    )
    bench.add_argument(
        "--output-dir",
        default=None,
        metavar="DIR",
        help="directory for BENCH_*.json (default: the repository root)",
    )
    run = parser.add_argument_group(
        "run options",
        "only used with the 'run' experiment id (supervised sweep)",
    )
    run.add_argument(
        "--dataset",
        default="age",
        help="sweep dataset: age, nettrace, searchlogs, socialnetwork",
    )
    run.add_argument(
        "--bins-sweep",
        dest="bins_sweep",
        type=int,
        default=64,
        metavar="N",
        help="domain size of the sweep dataset",
    )
    run.add_argument(
        "--total",
        type=int,
        default=50_000,
        help="total count of the sweep dataset",
    )
    run.add_argument(
        "--publishers",
        default=None,
        metavar="A,B,...",
        help="comma-separated publisher roster (default: the paper's "
             "comparison roster)",
    )
    run.add_argument(
        "--epsilons",
        default="0.1,0.5",
        metavar="E1,E2,...",
        help="comma-separated epsilon grid",
    )
    run.add_argument(
        "--sweep-seeds",
        dest="sweep_seeds",
        type=int,
        default=3,
        metavar="N",
        help="seeds per cell (0..N-1)",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-trial wall-clock budget in seconds; hung workers are "
             "killed and the seed retried (needs --n-jobs > 1)",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="K",
        help="failed-attempt budget per seed before quarantine "
             "(exponential backoff between attempts)",
    )
    run.add_argument(
        "--backoff",
        type=float,
        default=0.5,
        metavar="S",
        help="base of the exponential retry delay",
    )
    run.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="JSONL checkpoint journal; every completed trial is "
             "appended atomically the moment it finishes",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="load fingerprint-matching entries from --journal and run "
             "only the missing seeds (bit-identical continuation)",
    )
    run.add_argument(
        "--retry-failed",
        dest="retry_failed",
        action="store_true",
        help="with --resume: give journaled quarantined seeds fresh "
             "attempts instead of keeping their FailedRecords (use "
             "after fixing a transient failure, e.g. a worker OOM)",
    )
    run.add_argument(
        "--strict",
        action="store_true",
        help="fail fast on the first exhausted cell instead of "
             "quarantining it into a FailedRecord",
    )
    obs = parser.add_argument_group(
        "observability options",
        "tracing, metrics, and live progress for 'run' (see "
        "docs/observability.md); 'report' renders a journal afterwards",
    )
    obs.add_argument(
        "--trace",
        action="store_true",
        help="record per-stage span trees inside every trial "
             "(exported to workers via REPRO_TRACE; rides the journal "
             "in timing-exempt meta, so results stay bit-identical)",
    )
    obs.add_argument(
        "--trace-resources",
        dest="trace_resources",
        action="store_true",
        help="also record tracemalloc peak + getrusage per trial "
             "(REPRO_TRACE_RESOURCE; costs real time — attribution "
             "runs only)",
    )
    obs.add_argument(
        "--metrics-out",
        dest="metrics_out",
        default=None,
        metavar="PATH",
        help="write the metrics registry after the sweep: Prometheus "
             "textfile-collector format, or JSON when PATH ends in "
             ".json",
    )
    obs.add_argument(
        "--progress",
        choices=("none", "tty", "jsonl"),
        default="none",
        help="live progress on stderr: 'tty' = one rewritten status "
             "line with ETA and stragglers, 'jsonl' = one JSON object "
             "per executor event (default: none)",
    )
    report = parser.add_argument_group(
        "report options", "only used with the 'report' experiment id"
    )
    report.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the markdown report to PATH (default: stdout)",
    )
    return parser


def _verify_factories(bins: int) -> Dict[str, Callable[[], object]]:
    """Publisher factories for CLI calibration, keyed by oracle name.

    The structure publishers get a small fixed ``k`` matching the step
    dataset so their conditional oracles are sharp; MWEM runs its exact
    full-range regime.
    """
    from repro.baselines import (
        Ahp,
        Boost,
        DawaLite,
        DworkIdentity,
        FourierPublisher,
        Mwem,
        Privelet,
        UniformFlat,
    )
    from repro.core import NoiseFirst, StructureFirst
    from repro.workloads.builders import fixed_length_ranges

    return {
        "dwork": DworkIdentity,
        "uniform": UniformFlat,
        "boost": Boost,
        "privelet": Privelet,
        "noisefirst": lambda: NoiseFirst(k=4),
        "structurefirst": lambda: StructureFirst(k=4),
        "dawa-lite": lambda: DawaLite(k=4),
        "ahp": Ahp,
        "fourier": FourierPublisher,
        "mwem": lambda: Mwem(workload=fixed_length_ranges(bins, bins)),
    }


def _run_verify(args: argparse.Namespace) -> int:
    """Empirical-vs-oracle calibration of one publisher, from the CLI."""
    from repro.datasets.generators import step_histogram
    from repro.verify.calibration import check_mean, run_conditional_trials
    from repro.verify.oracles import oracle_from_result
    from repro.verify.streams import StreamAllocator

    if args.epsilon <= 0:
        print(f"error: --epsilon must be > 0, got {args.epsilon}",
              file=sys.stderr)
        return 2
    if args.trials < 2:
        print(f"error: --trials must be >= 2, got {args.trials}",
              file=sys.stderr)
        return 2
    if args.bins < 8:
        print(f"error: --bins must be >= 8, got {args.bins}",
              file=sys.stderr)
        return 2
    factories = _verify_factories(args.bins)
    try:
        factory = factories[args.publisher]
    except KeyError:
        print(
            f"error: unknown publisher {args.publisher!r}; available: "
            f"{', '.join(sorted(factories))}",
            file=sys.stderr,
        )
        return 2

    # Well-separated steps keep the structure publishers' realized
    # partitions deterministic, so the conditional oracles are sharp.
    histogram = step_histogram(args.bins, 4, total=50_000, rng=7)
    streams = StreamAllocator(args.seed, namespace="cli-verify")
    empirical, predicted = run_conditional_trials(
        factory,
        histogram,
        args.epsilon,
        args.trials,
        streams,
        f"verify/{args.publisher}",
        oracle_from_result=lambda result: oracle_from_result(
            args.publisher, histogram, args.epsilon, result
        ),
    )
    report = check_mean(empirical, predicted)
    print(f"verify {args.publisher} eps={args.epsilon:g} "
          f"bins={args.bins} trials={args.trials}")
    print(report)
    return 0 if report.ok else 1


def _write_metrics(registry, path: str) -> None:
    """Dump the registry to ``path``; ``.json`` selects JSON rendering."""
    from pathlib import Path

    from repro.robust.atomicio import atomic_write_text

    out = Path(path)
    if out.suffix == ".json":
        text = registry.render_json_text()
    else:
        text = registry.render_prometheus()
    atomic_write_text(out, text)


def _run_report(args: argparse.Namespace) -> int:
    """Render the markdown run report from a journal (the 'report' id)."""
    from pathlib import Path

    from repro.obs.report import render_report, write_report

    if not args.target:
        print("error: report needs a journal path: "
              "python -m repro report <journal.jsonl> [--out report.md]",
              file=sys.stderr)
        return 2
    journal = Path(args.target)
    if not journal.exists():
        print(f"error: journal {journal} does not exist", file=sys.stderr)
        return 2
    if args.out:
        write_report(journal, args.out)
        print(f"wrote {args.out}")
    else:
        print(render_report(journal), end="")
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    """Fault-tolerant, journaled publisher sweep (the 'run' id)."""
    import os

    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace
    from repro.obs.monitor import (
        MetricsObserver,
        MultiObserver,
        ProgressMonitor,
        RunStats,
    )
    from repro.obs.resources import ENV_VAR as RESOURCE_ENV
    from repro.robust import faults
    from repro.robust.sweep import build_sweep_specs, run_sweep, sweep_table

    if args.n_jobs != -1 and args.n_jobs < 1:
        print(f"error: --n-jobs must be >= 1 or -1, got {args.n_jobs}",
              file=sys.stderr)
        return 2
    if args.retries < 0:
        print(f"error: --retries must be >= 0, got {args.retries}",
              file=sys.stderr)
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print(f"error: --timeout must be > 0, got {args.timeout}",
              file=sys.stderr)
        return 2
    if args.resume and not args.journal:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    if args.retry_failed and not args.resume:
        print("error: --retry-failed requires --resume", file=sys.stderr)
        return 2
    try:
        epsilons = [float(e) for e in args.epsilons.split(",") if e.strip()]
    except ValueError:
        print(f"error: bad --epsilons {args.epsilons!r}", file=sys.stderr)
        return 2
    publishers = (
        [p.strip() for p in args.publishers.split(",") if p.strip()]
        if args.publishers else None
    )
    try:
        specs = build_sweep_specs(
            dataset=args.dataset,
            n_bins=args.bins_sweep,
            total=args.total,
            publishers=publishers,
            epsilons=epsilons,
            n_seeds=args.sweep_seeds,
            n_jobs=args.n_jobs,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Observability wiring: tracing/probes activate via environment
    # variables so pool workers inherit them; supervisor-side events
    # flow through the observer stack.  RunStats is always on (it feeds
    # the end-of-run summary line); progress and metrics are opt-in.
    if args.trace:
        os.environ[obs_trace.ENV_VAR] = "1"
    if args.trace_resources:
        os.environ[RESOURCE_ENV] = "1"
    stats = RunStats()
    observers = [stats]
    monitor = None
    if args.progress != "none":
        total_trials = sum(len(spec.seeds) for spec in specs)
        monitor = ProgressMonitor(
            mode=args.progress, total_trials=total_trials
        )
        observers.append(monitor)
    if args.metrics_out:
        observers.append(MetricsObserver(obs_metrics.get_registry()))

    try:
        results = run_sweep(
            specs,
            n_jobs=args.n_jobs,
            timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            journal=args.journal,
            resume=args.resume,
            retry_failed=args.retry_failed,
            strict=args.strict,
            observer=MultiObserver(observers),
        )
    finally:
        if monitor is not None:
            monitor.close()
        if args.metrics_out:
            _write_metrics(obs_metrics.get_registry(), args.metrics_out)

    table, failures = sweep_table(results)
    print(render_table(table))
    fault_hits = faults.total_hits() if os.environ.get(faults.ENV_VAR) \
        else None
    print(stats.summary_line(fault_hits=fault_hits))
    if failures:
        print()
        print(f"{len(failures)} quarantined trial(s):")
        for failed in failures:
            print(f"  {failed.describe()}")
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_experiments:
        for name in list_experiments():
            print(name)
        return 0

    if not args.experiment:
        parser.print_help()
        return 2

    if args.experiment == "verify":
        return _run_verify(args)

    if args.experiment == "run":
        return _run_sweep(args)

    if args.experiment == "report":
        return _run_report(args)

    if args.experiment == "bench":
        from repro.perf.bench import run_bench

        return run_bench(
            quick=args.quick, check=args.check, output_dir=args.output_dir
        )

    if args.n_jobs != -1 and args.n_jobs < 1:
        print(f"error: --n-jobs must be >= 1 or -1, got {args.n_jobs}",
              file=sys.stderr)
        return 2

    names = list_experiments() if args.experiment == "all" else [args.experiment]
    for name in names:
        try:
            tables = run_experiment(name, quick=args.quick, n_jobs=args.n_jobs)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        for table in tables:
            print(render_table(table))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
