"""Command-line interface: ``python -m repro <experiment-id> [...]``.

Examples
--------
List everything::

    python -m repro --list

Run one figure quickly::

    python -m repro fig_range_vs_len --quick

Run a seed-parallel figure on four worker processes (bit-identical to
the serial run)::

    python -m repro fig_point_vs_eps --quick --n-jobs 4

Run the full evaluation (slow; this is what EXPERIMENTS.md records)::

    python -m repro all

Check one publisher's empirical error against its closed-form oracle::

    python -m repro verify --publisher boost --epsilon 0.1 --trials 60

Refresh the tracked performance benchmarks (and gate on regressions)::

    python -m repro bench --quick --check

Run a fault-tolerant, journaled publisher sweep — and resume it after a
crash or SIGKILL, bit-identically::

    python -m repro run --journal sweep.jsonl --n-jobs 4 \
        --timeout 120 --retries 2
    python -m repro run --journal sweep.jsonl --n-jobs 4 \
        --timeout 120 --retries 2 --resume
    python -m repro run --journal sweep.jsonl --n-jobs 4 \
        --resume --retry-failed   # re-attempt quarantined seeds too

Run a traced sweep with live progress and a Prometheus metrics dump,
then render the markdown run report from its journal::

    python -m repro run --journal sweep.jsonl --n-jobs 4 \
        --trace --progress tty --metrics-out metrics.prom
    python -m repro report sweep.jsonl --out report.md

Accumulate a run-history trajectory and watch it for accuracy/perf
drift (the regression radar; see docs/observability.md)::

    python -m repro run --journal sweep.jsonl --history h.sqlite
    python -m repro bench --quick --check --history h.sqlite
    python -m repro history ingest sweep.jsonl --db h.sqlite
    python -m repro history drift --db h.sqlite --json verdicts.json
    python -m repro history dash --db h.sqlite --out dash.md

Sweep the DPBench-grade scenario families, feed per-workload utility
trajectories into the radar, and publish the repro-paper bundle —
deterministic markdown/LaTeX tables plus SVG crossover figures
(docs/evaluation.md)::

    python -m repro scenarios --list
    python -m repro scenarios --quick --history h.sqlite
    python -m repro scenarios --families smooth,cliff --seeds 5 \
        --journal scen.jsonl --history h.sqlite
    python -m repro history ingest scen.jsonl --db h.sqlite --rebuild
    python -m repro paper --db h.sqlite --out paper/

Stand up the DP histogram query service and drive it with a
deterministic workload-trace replay whose p50/p99 latency feeds the
regression radar (docs/serving.md)::

    python -m repro serve --port 8377 --cache-entries 16
    python -m repro replay examples/manifests/tiny_replay.json \
        --history h.sqlite --metrics-out replay-metrics.json \
        --transcript transcript.json
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments.registry import list_experiments, run_experiment
from repro.experiments.tables import render_table

__all__ = ["main"]

#: Default trial count for ``verify``; 60 keeps the CLI check fast while
#: the z=5 band still puts the false-alarm rate well below 1e-5.
_VERIFY_TRIALS = 60


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dphist",
        description="Regenerate the evaluation of 'Differentially Private "
                    "Histogram Publication' (ICDE 2012).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (see --list), 'all' to run everything, "
             "'verify' to calibrate a publisher against its error oracle, "
             "'bench' to refresh the tracked performance benchmarks, "
             "'run' for a fault-tolerant journaled publisher sweep, "
             "'report' to render a markdown run report from a journal, "
             "'history' for the regression radar, 'serve' for the DP "
             "histogram query service, or 'replay' for the "
             "deterministic workload-trace load harness (each has its "
             "own --help)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="for 'report': the checkpoint-journal path to render",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink grids/seeds so each experiment finishes in seconds",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_experiments",
        help="list the available experiment ids and exit",
    )
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for seed-parallel experiments "
             "(1 = serial, -1 = all CPUs); results are bit-identical "
             "to the serial run",
    )
    verify = parser.add_argument_group(
        "verify options", "only used with the 'verify' experiment id"
    )
    verify.add_argument(
        "--publisher",
        default="dwork",
        help="publisher to calibrate (see repro.verify.ORACLE_BUILDERS)",
    )
    verify.add_argument(
        "--epsilon",
        type=float,
        default=0.5,
        help="privacy budget for the calibration publishes",
    )
    verify.add_argument(
        "--trials",
        type=int,
        default=_VERIFY_TRIALS,
        help="number of independent publishes to average",
    )
    verify.add_argument(
        "--bins",
        type=int,
        default=64,
        help="domain size of the synthetic step dataset",
    )
    verify.add_argument(
        "--seed",
        type=int,
        default=0,
        help="root seed of the deterministic verification streams",
    )
    bench = parser.add_argument_group(
        "bench options", "only used with the 'bench' experiment id"
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed BENCH_*.json baselines and "
             "exit 1 on a >25%% calibration-normalized regression",
    )
    bench.add_argument(
        "--output-dir",
        default=None,
        metavar="DIR",
        help="directory for BENCH_*.json (default: the repository root)",
    )
    bench.add_argument(
        "--profile",
        default=None,
        choices=("quick", "full", "bign"),
        help="benchmark profile (overrides --quick): 'quick' is the CI "
             "gate, 'full' the long exact-kernel sweep, 'bign' the "
             "2^14..2^20 scaling grid written to BENCH_bign.json",
    )
    bench.add_argument(
        "--max-n",
        type=int,
        default=None,
        metavar="N",
        help="slice the requested bench grid at this domain size; "
             "dropped cases are recorded as skipped coverage gaps "
             "(the CI bench-bign lane stops at 2^18)",
    )
    run = parser.add_argument_group(
        "run options",
        "only used with the 'run' experiment id (supervised sweep)",
    )
    run.add_argument(
        "--dataset",
        default="age",
        help="sweep dataset: age, nettrace, searchlogs, socialnetwork",
    )
    run.add_argument(
        "--bins-sweep",
        dest="bins_sweep",
        type=int,
        default=64,
        metavar="N",
        help="domain size of the sweep dataset",
    )
    run.add_argument(
        "--total",
        type=int,
        default=50_000,
        help="total count of the sweep dataset",
    )
    run.add_argument(
        "--publishers",
        default=None,
        metavar="A,B,...",
        help="comma-separated publisher roster (default: the paper's "
             "comparison roster)",
    )
    run.add_argument(
        "--epsilons",
        default="0.1,0.5",
        metavar="E1,E2,...",
        help="comma-separated epsilon grid",
    )
    run.add_argument(
        "--sweep-seeds",
        dest="sweep_seeds",
        type=int,
        default=3,
        metavar="N",
        help="seeds per cell (0..N-1)",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-trial wall-clock budget in seconds; hung workers are "
             "killed and the seed retried (needs --n-jobs > 1)",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="K",
        help="failed-attempt budget per seed before quarantine "
             "(exponential backoff between attempts)",
    )
    run.add_argument(
        "--backoff",
        type=float,
        default=0.5,
        metavar="S",
        help="base of the exponential retry delay",
    )
    run.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="JSONL checkpoint journal; every completed trial is "
             "appended atomically the moment it finishes",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="load fingerprint-matching entries from --journal and run "
             "only the missing seeds (bit-identical continuation)",
    )
    run.add_argument(
        "--retry-failed",
        dest="retry_failed",
        action="store_true",
        help="with --resume: give journaled quarantined seeds fresh "
             "attempts instead of keeping their FailedRecords (use "
             "after fixing a transient failure, e.g. a worker OOM)",
    )
    run.add_argument(
        "--strict",
        action="store_true",
        help="fail fast on the first exhausted cell instead of "
             "quarantining it into a FailedRecord",
    )
    obs = parser.add_argument_group(
        "observability options",
        "tracing, metrics, and live progress for 'run' (see "
        "docs/observability.md); 'report' renders a journal afterwards",
    )
    obs.add_argument(
        "--trace",
        action="store_true",
        help="record per-stage span trees inside every trial "
             "(exported to workers via REPRO_TRACE; rides the journal "
             "in timing-exempt meta, so results stay bit-identical)",
    )
    obs.add_argument(
        "--trace-resources",
        dest="trace_resources",
        action="store_true",
        help="also record tracemalloc peak + getrusage per trial "
             "(REPRO_TRACE_RESOURCE; costs real time — attribution "
             "runs only)",
    )
    obs.add_argument(
        "--metrics-out",
        dest="metrics_out",
        default=None,
        metavar="PATH",
        help="write the metrics registry after the sweep: Prometheus "
             "textfile-collector format, or JSON when PATH ends in "
             ".json",
    )
    obs.add_argument(
        "--progress",
        choices=("none", "tty", "jsonl"),
        default="none",
        help="live progress on stderr: 'tty' = one rewritten status "
             "line with ETA and stragglers, 'jsonl' = one JSON object "
             "per executor event (default: none)",
    )
    obs.add_argument(
        "--straggler-factor",
        dest="straggler_factor",
        type=float,
        default=None,
        metavar="F",
        help="adaptive straggler threshold for --progress: flag a "
             "seed after F x the mean completed-trial duration "
             "(default: fixed 10s; env REPRO_STRAGGLER_FACTOR)",
    )
    obs.add_argument(
        "--history",
        default=None,
        metavar="DB",
        help="run-history SQLite store (regression radar): 'run' "
             "auto-ingests its sweep results, metrics totals, and "
             "straggler alerts; 'bench' appends trajectory entries "
             "and gates --check against the history median; 'report' "
             "adds the vs-previous-runs delta section (see 'python "
             "-m repro history --help')",
    )
    report = parser.add_argument_group(
        "report options", "only used with the 'report' experiment id"
    )
    report.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the markdown report to PATH (default: stdout)",
    )
    return parser


def _verify_factories(bins: int) -> Dict[str, Callable[[], object]]:
    """Publisher factories for CLI calibration, keyed by oracle name.

    The structure publishers get a small fixed ``k`` matching the step
    dataset so their conditional oracles are sharp; MWEM runs its exact
    full-range regime.
    """
    from repro.baselines import (
        Ahp,
        Boost,
        DawaLite,
        DworkIdentity,
        FourierPublisher,
        Mwem,
        Privelet,
        UniformFlat,
    )
    from repro.core import NoiseFirst, StructureFirst
    from repro.workloads.builders import fixed_length_ranges

    return {
        "dwork": DworkIdentity,
        "uniform": UniformFlat,
        "boost": Boost,
        "privelet": Privelet,
        "noisefirst": lambda: NoiseFirst(k=4),
        "structurefirst": lambda: StructureFirst(k=4),
        "dawa-lite": lambda: DawaLite(k=4),
        "ahp": Ahp,
        "fourier": FourierPublisher,
        "mwem": lambda: Mwem(workload=fixed_length_ranges(bins, bins)),
    }


def _run_verify(args: argparse.Namespace) -> int:
    """Empirical-vs-oracle calibration of one publisher, from the CLI."""
    from repro.datasets.generators import step_histogram
    from repro.verify.calibration import check_mean, run_conditional_trials
    from repro.verify.oracles import oracle_from_result
    from repro.verify.streams import StreamAllocator

    if args.epsilon <= 0:
        print(f"error: --epsilon must be > 0, got {args.epsilon}",
              file=sys.stderr)
        return 2
    if args.trials < 2:
        print(f"error: --trials must be >= 2, got {args.trials}",
              file=sys.stderr)
        return 2
    if args.bins < 8:
        print(f"error: --bins must be >= 8, got {args.bins}",
              file=sys.stderr)
        return 2
    factories = _verify_factories(args.bins)
    try:
        factory = factories[args.publisher]
    except KeyError:
        print(
            f"error: unknown publisher {args.publisher!r}; available: "
            f"{', '.join(sorted(factories))}",
            file=sys.stderr,
        )
        return 2

    # Well-separated steps keep the structure publishers' realized
    # partitions deterministic, so the conditional oracles are sharp.
    histogram = step_histogram(args.bins, 4, total=50_000, rng=7)
    streams = StreamAllocator(args.seed, namespace="cli-verify")
    empirical, predicted = run_conditional_trials(
        factory,
        histogram,
        args.epsilon,
        args.trials,
        streams,
        f"verify/{args.publisher}",
        oracle_from_result=lambda result: oracle_from_result(
            args.publisher, histogram, args.epsilon, result
        ),
    )
    report = check_mean(empirical, predicted)
    print(f"verify {args.publisher} eps={args.epsilon:g} "
          f"bins={args.bins} trials={args.trials}")
    print(report)
    return 0 if report.ok else 1


def _write_metrics(registry, path: str) -> None:
    """Dump the registry to ``path``; ``.json`` selects JSON rendering."""
    from pathlib import Path

    from repro.robust.atomicio import atomic_write_text

    out = Path(path)
    if out.suffix == ".json":
        text = registry.render_json_text()
    else:
        text = registry.render_prometheus()
    atomic_write_text(out, text)


def _run_report(args: argparse.Namespace) -> int:
    """Render the markdown run report from a journal (the 'report' id)."""
    from pathlib import Path

    from repro.obs.report import render_report, write_report

    if not args.target:
        print("error: report needs a journal path: "
              "python -m repro report <journal.jsonl> [--out report.md]",
              file=sys.stderr)
        return 2
    journal = Path(args.target)
    if not journal.exists():
        print(f"error: journal {journal} does not exist", file=sys.stderr)
        return 2
    if args.out:
        write_report(journal, args.out, history=args.history)
        print(f"wrote {args.out}")
    else:
        print(render_report(journal, history=args.history), end="")
    return 0


# ---------------------------------------------------------------------------
# The 'serve' / 'replay' subcommands (query service + load harness)
# ---------------------------------------------------------------------------

def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dphist serve",
        description="Long-lived DP histogram query service: publish "
                    "once per (dataset, publisher, epsilon, k) spec, "
                    "cache artifacts in a fingerprint-keyed LRU, and "
                    "answer point/range count queries under per-tenant "
                    "epsilon-budget ledgers (docs/serving.md).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8377,
                        help="bind port; 0 picks an ephemeral port "
                             "(default 8377)")
    parser.add_argument("--cache-entries", dest="cache_entries", type=int,
                        default=8, metavar="N",
                        help="max cached artifacts before LRU eviction "
                             "(default 8)")
    parser.add_argument("--cache-bytes", dest="cache_bytes", type=int,
                        default=None, metavar="B",
                        help="optional byte bound on cached artifact "
                             "arrays (evicts LRU-first)")
    parser.add_argument("--tenant-budget", dest="tenant_budget",
                        type=float, default=100.0, metavar="EPS",
                        help="default epsilon budget for tenants that "
                             "were never explicitly registered "
                             "(default 100)")
    parser.add_argument("--state-dir", dest="state_dir", default=None,
                        metavar="DIR",
                        help="durable state directory: write-ahead "
                             "epsilon ledger + on-disk artifact store; "
                             "a restart replays the ledger to exact "
                             "spent totals and rehydrates artifacts "
                             "byte-identically (docs/serving.md)")
    parser.add_argument("--publish-slots", dest="publish_slots", type=int,
                        default=None, metavar="N",
                        help="bound concurrent cold publishes; when "
                             "saturated, queries degrade to a stale "
                             "compatible artifact or shed with 503 + "
                             "Retry-After (default: unbounded)")
    parser.add_argument("--max-inflight", dest="max_inflight", type=int,
                        default=8, metavar="N",
                        help="admission control: max concurrently "
                             "executing requests (default 8)")
    parser.add_argument("--max-queue", dest="max_queue", type=int,
                        default=16, metavar="N",
                        help="admission control: max requests waiting "
                             "for a slot before shedding (default 16)")
    parser.add_argument("--queue-timeout", dest="queue_timeout",
                        type=float, default=1.0, metavar="S",
                        help="admission control: max seconds a request "
                             "may queue before shedding (default 1.0)")
    parser.add_argument("--retry-after", dest="retry_after", type=float,
                        default=1.0, metavar="S",
                        help="Retry-After hint sent with 503 sheds "
                             "(default 1.0)")
    parser.add_argument("--drain-seconds", dest="drain_seconds",
                        type=float, default=5.0, metavar="S",
                        help="graceful-shutdown deadline for in-flight "
                             "requests (default 5.0)")
    parser.add_argument("--trace", action="store_true",
                        help="enable per-request span capture (stage "
                             "trees on /v1/debug); equivalent to "
                             "exporting REPRO_TRACE=1")
    parser.add_argument("--access-log", dest="access_log", default=None,
                        metavar="PATH",
                        help="structured JSONL access log (one "
                             "sorted-key line per request; rotated); "
                             "defaults to STATE_DIR/access.log when "
                             "--state-dir is set")
    parser.add_argument("--slo-window", dest="slo_window", type=float,
                        default=60.0, metavar="S",
                        help="SLO sliding-window length in seconds "
                             "(default 60)")
    parser.add_argument("--slo-latency-ms", dest="slo_latency_ms",
                        type=float, default=250.0, metavar="MS",
                        help="latency objective threshold: a request "
                             "slower than this is SLO-bad "
                             "(default 250)")
    parser.add_argument("--slo-latency-target", dest="slo_latency_target",
                        type=float, default=0.99, metavar="F",
                        help="good fraction target for the latency "
                             "objective (default 0.99)")
    parser.add_argument("--slo-error-target", dest="slo_error_target",
                        type=float, default=0.999, metavar="F",
                        help="good fraction target for the 5xx error "
                             "objective (default 0.999)")
    parser.add_argument("--slo-shed-target", dest="slo_shed_target",
                        type=float, default=0.99, metavar="F",
                        help="good fraction target for the shed "
                             "objective (default 0.99)")
    parser.add_argument("--debug-traces", dest="debug_traces", type=int,
                        default=8, metavar="N",
                        help="slowest-N traced requests kept for "
                             "/v1/debug (default 8)")
    parser.add_argument("--verbose", action="store_true",
                        help="log one line per request to stderr")
    return parser


def _serve_main(argv: List[str]) -> int:
    """Entry point for ``python -m repro serve ...``."""
    from pathlib import Path

    from repro.obs import trace
    from repro.serve.admission import AdmissionController
    from repro.serve.server import make_server, run_server
    from repro.serve.service import QueryService
    from repro.serve.telemetry import SLOConfig

    args = _build_serve_parser().parse_args(argv)
    if args.port < 0:
        print(f"error: --port must be >= 0, got {args.port}",
              file=sys.stderr)
        return 2
    if args.trace:
        os.environ[trace.ENV_VAR] = "1"
    access_log = args.access_log
    if access_log is None and args.state_dir is not None:
        access_log = Path(args.state_dir) / "access.log"
    try:
        service = QueryService(
            cache_entries=args.cache_entries,
            cache_bytes=args.cache_bytes,
            default_tenant_budget=args.tenant_budget,
            state_dir=args.state_dir,
            publish_slots=args.publish_slots,
            retry_after=args.retry_after,
            slo=SLOConfig(
                window_seconds=args.slo_window,
                latency_threshold=args.slo_latency_ms / 1000.0,
                latency_target=args.slo_latency_target,
                error_target=args.slo_error_target,
                shed_target=args.slo_shed_target,
            ),
            access_log=access_log,
            slow_traces=args.debug_traces,
        )
        admission = AdmissionController(
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            queue_timeout=args.queue_timeout,
        )
        server = make_server(args.host, args.port, service,
                             verbose=args.verbose, admission=admission,
                             drain_seconds=args.drain_seconds,
                             retry_after=args.retry_after)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # The parseable startup line the e2e tests and scripts wait for.
    print(f"serving on {server.url}", flush=True)
    if service.recovery:
        rec = service.recovery
        print(
            f"recovered state from {args.state_dir}: "
            f"{rec.get('tenants', 0)} tenant(s), "
            f"{rec.get('debits', 0)} debit(s), "
            f"{rec.get('artifacts', 0)} artifact(s), "
            f"{rec.get('torn_lines', 0)} torn line(s)",
            flush=True,
        )
    return run_server(server)


def _build_replay_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dphist replay",
        description="Deterministic workload-trace replay against the "
                    "query service: same manifest + seed => identical "
                    "query-answer transcript; p50/p99 latency and "
                    "throughput land in the metrics registry and the "
                    "run-history store (docs/serving.md).",
    )
    parser.add_argument("manifest", metavar="MANIFEST",
                        help="replay manifest (JSON; see "
                             "examples/manifests/)")
    parser.add_argument("--server", default=None, metavar="URL",
                        help="replay against a running server instead "
                             "of self-hosting a fresh in-process one "
                             "(self-hosting is what the determinism "
                             "guarantee is stated against)")
    parser.add_argument("--time-scale", dest="time_scale", type=float,
                        default=None, metavar="F",
                        help="scale the manifest's arrival gaps "
                             "(0 = issue as fast as the slots allow; "
                             "default: the manifest's time_scale)")
    parser.add_argument("--retries", type=int, default=2, metavar="K",
                        help="transport retries per query before the "
                             "tenant worker quarantines its trace "
                             "(default 2)")
    parser.add_argument("--transcript", default=None, metavar="PATH",
                        help="write the deterministic transcript JSON "
                             "to PATH")
    parser.add_argument("--metrics-out", dest="metrics_out", default=None,
                        metavar="PATH",
                        help="write the replay metrics registry: "
                             "Prometheus text, or JSON when PATH ends "
                             "in .json")
    parser.add_argument("--history", default=None, metavar="DB",
                        help="ingest replay latency/throughput into "
                             "the run-history store (rendered by "
                             "'repro history dash')")
    parser.add_argument("--cache-entries", dest="cache_entries", type=int,
                        default=8, metavar="N",
                        help="artifact cache size of the self-hosted "
                             "server (ignored with --server)")
    parser.add_argument("--trace", action="store_true",
                        help="enable span capture on the self-hosted "
                             "server (per-request stage trees; the "
                             "transcript stays bit-identical to an "
                             "untraced run); with --server, start the "
                             "remote server with 'repro serve --trace' "
                             "instead")
    parser.add_argument("--chaos", action="store_true",
                        help="kill-and-restart drill: run the server as "
                             "a subprocess with injected crashes at the "
                             "ledger/spill boundaries, restart it every "
                             "time it dies, and assert no-overdraft, "
                             "no-double-spend, byte-identical artifacts "
                             "and a deterministic transcript "
                             "(requires --state-dir)")
    parser.add_argument("--state-dir", dest="state_dir", default=None,
                        metavar="DIR",
                        help="durable state directory for --chaos (the "
                             "ledger, artifact store, fault plan, and "
                             "chaos report/transcript live here)")
    parser.add_argument("--tenant-budget", dest="tenant_budget",
                        type=float, default=100.0, metavar="EPS",
                        help="default tenant budget for the chaos "
                             "server and baseline (default 100)")
    return parser


def _replay_chaos_main(args: "argparse.Namespace") -> int:
    """The ``repro replay --chaos`` drill (see repro.serve.chaos)."""
    from pathlib import Path

    from repro.serve.chaos import run_chaos_replay
    from repro.serve.replay import load_manifest

    if args.state_dir is None:
        print("error: --chaos requires --state-dir", file=sys.stderr)
        return 2
    if args.server is not None:
        print("error: --chaos manages its own server; drop --server",
              file=sys.stderr)
        return 2
    manifest_path = Path(args.manifest)
    if not manifest_path.exists():
        print(f"error: manifest {manifest_path} does not exist",
              file=sys.stderr)
        return 2
    try:
        manifest = load_manifest(manifest_path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = run_chaos_replay(
            manifest, args.state_dir,
            tenant_budget=args.tenant_budget,
            retries=max(args.retries, 6),
        )
    except (RuntimeError, TimeoutError, OSError) as exc:
        print(f"error: chaos replay failed: {exc}", file=sys.stderr)
        return 1
    for line in report.summary_lines():
        print(line)
    print(f"wrote {Path(args.state_dir) / 'chaos_report.json'}")
    print(f"wrote {Path(args.state_dir) / 'chaos_transcript.json'}")
    return 0 if report.ok else 1


def _replay_main(argv: List[str]) -> int:
    """Entry point for ``python -m repro replay <manifest> ...``."""
    import json as json_mod
    from pathlib import Path

    from repro.obs.metrics import MetricsRegistry
    from repro.robust.atomicio import atomic_write_text
    from repro.serve.replay import (
        load_manifest,
        record_replay_metrics,
        run_replay,
    )

    args = _build_replay_parser().parse_args(argv)
    if args.chaos:
        return _replay_chaos_main(args)
    manifest_path = Path(args.manifest)
    if not manifest_path.exists():
        print(f"error: manifest {manifest_path} does not exist",
              file=sys.stderr)
        return 2
    try:
        manifest = load_manifest(manifest_path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.retries < 0:
        print(f"error: --retries must be >= 0, got {args.retries}",
              file=sys.stderr)
        return 2
    previous_trace = None
    if args.trace:
        from repro.obs import trace

        previous_trace = trace.set_enabled(True)
    try:
        result = run_replay(
            manifest,
            base_url=args.server,
            time_scale=args.time_scale,
            retries=args.retries,
            cache_entries=args.cache_entries,
        )
    except (RuntimeError, TimeoutError, OSError) as exc:
        print(f"error: replay failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if args.trace:
            from repro.obs import trace

            trace.set_enabled(previous_trace)
    registry = MetricsRegistry()
    record_replay_metrics(result, registry)
    for line in result.summary_lines():
        print(line)
    if args.transcript:
        atomic_write_text(
            Path(args.transcript),
            json_mod.dumps(result.transcript(), indent=2,
                           sort_keys=True) + "\n",
        )
        print(f"wrote {args.transcript}")
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)
        print(f"wrote {args.metrics_out}")
    if args.history:
        from repro.obs.history import HistoryStore, default_commit

        try:
            with HistoryStore(args.history) as store:
                outcome = store.ingest_metrics_payload(
                    registry.render_json(),
                    source=f"replay:{manifest.name}",
                    commit=default_commit(),
                )
            print(f"history: {args.history}: {outcome.describe()}")
        except Exception as exc:  # pragma: no cover - defensive firewall
            print(f"warning: history ingest failed: {exc}",
                  file=sys.stderr)
    return 1 if result.had_server_errors() else 0


# ---------------------------------------------------------------------------
# The 'history' subcommand family (regression radar)
# ---------------------------------------------------------------------------

def _build_history_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dphist history",
        description="Regression radar: ingest run artifacts into the "
                    "SQLite run-history store, detect accuracy/perf "
                    "drift against the closed-form error oracles, and "
                    "render trend dashboards (docs/observability.md).",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    ingest = sub.add_parser(
        "ingest",
        help="ingest checkpoint journals, BENCH_*.json snapshots, "
             "and --metrics-out JSON exports (type auto-detected; "
             "re-ingesting the same artifact is a no-op)",
    )
    ingest.add_argument("sources", nargs="+", metavar="PATH",
                        help="artifacts to ingest")
    ingest.add_argument("--db", required=True, metavar="DB",
                        help="history store path (created on first use)")
    ingest.add_argument("--commit", default=None, metavar="SHA",
                        help="commit stamp for the new rows (default: "
                             "REPRO_COMMIT, then git rev-parse HEAD)")
    ingest.add_argument("--bins", type=int, default=64, metavar="N",
                        help="sweep dataset size for offline oracle "
                             "anchoring (must match the sweep's "
                             "--bins-sweep; default 64)")
    ingest.add_argument("--total", type=int, default=50_000, metavar="N",
                        help="sweep dataset total for offline oracle "
                             "anchoring (default 50000)")
    ingest.add_argument("--rebuild", action="store_true",
                        help="also (re-)derive per-workload utility "
                             "rows from journal sources — scenario "
                             "datasets and workloads are reconstructed "
                             "offline from the spec names, so journals "
                             "whose trial rows are already ingested "
                             "gain utility trajectories without "
                             "re-running anything (idempotent)")

    drift = sub.add_parser(
        "drift",
        help="evaluate drift verdicts; exit 1 on confirmed drift "
             "(oracle-band violation / sustained perf CUSUM), 0 on "
             "ok/watch/no-data",
    )
    drift.add_argument("--db", required=True, metavar="DB")
    drift.add_argument("--json", default=None, metavar="PATH",
                       help="write the machine-readable verdict "
                            "document to PATH")
    drift.add_argument("--window", type=int, default=5, metavar="N",
                       help="trailing window for the longitudinal "
                            "z-score (default 5)")
    drift.add_argument("--z", type=float, default=4.0, metavar="Z",
                       help="z-score threshold for 'watch' (default 4)")
    drift.add_argument("--band-z", dest="band_z", type=float,
                       default=4.0, metavar="Z",
                       help="sigma multiplier of the oracle tolerance "
                            "band (default 4)")
    drift.add_argument("--cusum-h", dest="cusum_h", type=float,
                       default=5.0, metavar="H",
                       help="CUSUM alarm threshold for bench "
                            "trajectories (default 5)")

    dash = sub.add_parser(
        "dash",
        help="render the deterministic trend dashboard (markdown, or "
             "HTML when --out ends in .html)",
    )
    dash.add_argument("--db", required=True, metavar="DB")
    dash.add_argument("--out", default=None, metavar="PATH",
                      help="write to PATH instead of stdout")
    dash.add_argument("--format", choices=("md", "html"), default=None,
                      help="force the output format (default: from the "
                           "--out suffix, else markdown)")
    return parser


def _history_main(argv: List[str]) -> int:
    """Entry point for ``python -m repro history <subcommand> ...``."""
    from pathlib import Path

    from repro.exceptions import HistoryError
    from repro.obs.history import HistoryStore

    args = _build_history_parser().parse_args(argv)

    if args.subcommand == "ingest":
        missing = [s for s in args.sources if not Path(s).exists()]
        if missing:
            print(f"error: no such file(s): {', '.join(missing)}",
                  file=sys.stderr)
            return 2
        from repro.obs.history import sniff_source

        try:
            with HistoryStore(args.db) as store:
                for source in args.sources:
                    result = store.ingest(
                        source, commit=args.commit,
                        n_bins=args.bins, total=args.total,
                    )
                    print(f"{source}: {result.describe()}")
                    if args.rebuild and sniff_source(source) == "journal":
                        utility = store.ingest_journal_utility(
                            source, commit=args.commit,
                            n_bins=args.bins, total=args.total,
                        )
                        print(f"{source}: {utility.describe()}")
        except HistoryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    if not Path(args.db).exists():
        print(f"error: history store {args.db} does not exist "
              "(ingest something first)", file=sys.stderr)
        return 2

    if args.subcommand == "drift":
        import json as json_mod

        from repro.obs.drift import (
            detect_drift,
            has_confirmed_drift,
            render_verdicts,
        )
        from repro.robust.atomicio import atomic_write_text

        with HistoryStore(args.db) as store:
            verdicts = detect_drift(
                store, window=args.window, z_thresh=args.z,
                band_z=args.band_z, cusum_h=args.cusum_h,
            )
        if args.json:
            doc = render_verdicts(verdicts)
            atomic_write_text(
                Path(args.json),
                json_mod.dumps(doc, indent=2, sort_keys=True) + "\n",
            )
            print(f"wrote {args.json}")
        by_status: Dict[str, int] = {}
        for verdict in verdicts:
            by_status[verdict.status] = by_status.get(verdict.status, 0) + 1
        summary = ", ".join(f"{by_status[s]} {s}"
                            for s in sorted(by_status)) or "no cells"
        print(f"drift: {summary}")
        for verdict in verdicts:
            if verdict.status in ("drift", "watch"):
                detail = "; ".join(verdict.details)
                print(f"  [{verdict.status}] {verdict.cell}: {detail}")
        return 1 if has_confirmed_drift(verdicts) else 0

    if args.subcommand == "dash":
        from repro.obs.dashboard import render_dashboard, write_dashboard

        if args.out:
            path = write_dashboard(args.db, args.out, fmt=args.format)
            print(f"wrote {path}")
        else:
            print(render_dashboard(args.db, fmt=args.format or "md"),
                  end="")
        return 0

    raise AssertionError(f"unhandled subcommand {args.subcommand!r}")


def _ingest_sweep_history(args, specs, results, monitor, obs_metrics) -> None:
    """Append a finished sweep to the run-history store (``--history``).

    The sweep itself already succeeded; history bookkeeping must never
    flip its exit code, so every failure here degrades to a warning on
    stderr (mirroring the observer firewall in ``repro.obs.monitor``).
    """
    from repro.obs.history import (
        HistoryStore,
        default_commit,
        trial_row_from_record,
        utility_rows_from_record,
    )
    from repro.robust.journal import spec_fingerprint

    try:
        store = HistoryStore(args.history)
        try:
            commit = default_commit()
            rows = []
            utility_rows = []
            by_name = {spec.name: spec for spec in specs}
            for spec_name in sorted(results):
                spec = by_name.get(spec_name)
                histogram = spec.histogram if spec is not None else None
                workloads = (
                    {w.name: w for w in spec.workloads}
                    if spec is not None else None
                )
                fingerprint = (
                    spec_fingerprint(spec) if spec is not None else ""
                )
                for record in results[spec_name]:
                    rows.append(trial_row_from_record(
                        record, fingerprint, commit, histogram=histogram,
                    ))
                    utility_rows.extend(utility_rows_from_record(
                        record, fingerprint, commit,
                        histogram=histogram, workloads=workloads,
                    ))
            outcomes = [store.add_trials(
                rows, source=str(args.journal or "run")
            )]
            if utility_rows:
                outcomes.append(store.add_utility(
                    utility_rows, source=str(args.journal or "run"),
                ))
            outcomes.append(store.ingest_registry(
                obs_metrics.get_registry(),
                source=str(args.journal or "run"),
                commit=commit,
            ))
            if monitor is not None and monitor.alerts:
                outcomes.append(store.add_alerts(
                    monitor.alerts,
                    source=str(args.journal or "run"),
                    commit=commit,
                ))
            summary = "; ".join(o.describe() for o in outcomes)
            print(f"history: {args.history}: {summary}")
        finally:
            store.close()
    except Exception as exc:  # pragma: no cover - defensive firewall
        print(f"warning: history ingest failed: {exc}", file=sys.stderr)


def _run_sweep(args: argparse.Namespace) -> int:
    """Fault-tolerant, journaled publisher sweep (the 'run' id)."""
    import os

    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace
    from repro.obs.monitor import (
        MetricsObserver,
        MultiObserver,
        ProgressMonitor,
        RunStats,
    )
    from repro.obs.resources import ENV_VAR as RESOURCE_ENV
    from repro.robust import faults
    from repro.robust.sweep import build_sweep_specs, run_sweep, sweep_table

    if args.n_jobs != -1 and args.n_jobs < 1:
        print(f"error: --n-jobs must be >= 1 or -1, got {args.n_jobs}",
              file=sys.stderr)
        return 2
    if args.retries < 0:
        print(f"error: --retries must be >= 0, got {args.retries}",
              file=sys.stderr)
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print(f"error: --timeout must be > 0, got {args.timeout}",
              file=sys.stderr)
        return 2
    if args.resume and not args.journal:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    if args.retry_failed and not args.resume:
        print("error: --retry-failed requires --resume", file=sys.stderr)
        return 2
    try:
        epsilons = [float(e) for e in args.epsilons.split(",") if e.strip()]
    except ValueError:
        print(f"error: bad --epsilons {args.epsilons!r}", file=sys.stderr)
        return 2
    publishers = (
        [p.strip() for p in args.publishers.split(",") if p.strip()]
        if args.publishers else None
    )
    try:
        specs = build_sweep_specs(
            dataset=args.dataset,
            n_bins=args.bins_sweep,
            total=args.total,
            publishers=publishers,
            epsilons=epsilons,
            n_seeds=args.sweep_seeds,
            n_jobs=args.n_jobs,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Observability wiring: tracing/probes activate via environment
    # variables so pool workers inherit them; supervisor-side events
    # flow through the observer stack.  RunStats is always on (it feeds
    # the end-of-run summary line); progress and metrics are opt-in.
    if args.trace:
        os.environ[obs_trace.ENV_VAR] = "1"
    if args.trace_resources:
        os.environ[RESOURCE_ENV] = "1"
    stats = RunStats()
    observers = [stats]
    monitor = None
    if args.progress != "none":
        total_trials = sum(len(spec.seeds) for spec in specs)
        try:
            monitor = ProgressMonitor(
                mode=args.progress,
                total_trials=total_trials,
                straggler_factor=args.straggler_factor,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        observers.append(monitor)
    if args.metrics_out or args.history:
        observers.append(MetricsObserver(obs_metrics.get_registry()))

    try:
        results = run_sweep(
            specs,
            n_jobs=args.n_jobs,
            timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            journal=args.journal,
            resume=args.resume,
            retry_failed=args.retry_failed,
            strict=args.strict,
            observer=MultiObserver(observers),
        )
    finally:
        if monitor is not None:
            monitor.close()
        if args.metrics_out:
            _write_metrics(obs_metrics.get_registry(), args.metrics_out)

    table, failures = sweep_table(results)
    print(render_table(table))
    fault_hits = faults.total_hits() if os.environ.get(faults.ENV_VAR) \
        else None
    print(stats.summary_line(fault_hits=fault_hits))
    if args.history:
        _ingest_sweep_history(args, specs, results, monitor, obs_metrics)
    if failures:
        print()
        print(f"{len(failures)} quarantined trial(s):")
        for failed in failures:
            print(f"  {failed.describe()}")
        return 1
    return 0


# ---------------------------------------------------------------------------
# The 'scenarios' / 'paper' subcommands (utility radar + publication)
# ---------------------------------------------------------------------------

def _build_scenarios_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dphist scenarios",
        description="Run DPBench-grade scenario families — dataset "
                    "shape x domain size x workload battery — through "
                    "the supervised executor, journal the trials, and "
                    "feed per-workload utility trajectories to the "
                    "regression radar (docs/evaluation.md).",
    )
    parser.add_argument("--list", action="store_true",
                        dest="list_scenarios",
                        help="list registered scenarios and exit")
    parser.add_argument("--scenarios", default=None, metavar="A,B,...",
                        help="comma-separated scenario names "
                             "(<family>/<label>; default: all)")
    parser.add_argument("--families", default=None, metavar="F1,F2,...",
                        help="comma-separated families — shorthand for "
                             "every scenario in them")
    parser.add_argument("--publishers", default=None, metavar="A,B,...",
                        help="comma-separated publisher roster "
                             "(default: the figure roster)")
    parser.add_argument("--epsilons", default="0.1,1.0",
                        metavar="E1,E2,...",
                        help="comma-separated epsilon grid "
                             "(default 0.1,1.0)")
    parser.add_argument("--seeds", type=int, default=3, metavar="N",
                        help="seeds per cell (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="shrink to 2 seeds, eps=1.0, and the "
                             "64-bin scenarios (unless overridden)")
    parser.add_argument("--n-jobs", dest="n_jobs", type=int, default=1,
                        metavar="N",
                        help="worker processes (1 = serial, -1 = all "
                             "CPUs); bit-identical to serial")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="JSONL checkpoint journal shared by the "
                             "whole run")
    parser.add_argument("--resume", action="store_true",
                        help="resume a journaled run (only missing "
                             "seeds execute)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="S",
                        help="per-trial wall-clock budget (needs "
                             "--n-jobs > 1)")
    parser.add_argument("--retries", type=int, default=2, metavar="K",
                        help="failed-attempt budget per seed (default 2)")
    parser.add_argument("--history", default=None, metavar="DB",
                        help="run-history store: auto-ingest trial rows "
                             "AND per-workload utility rows (the "
                             "utility radar's data feed)")
    return parser


def _scenarios_main(argv: List[str]) -> int:
    """Entry point for ``python -m repro scenarios ...``."""
    from repro.obs import metrics as obs_metrics
    from repro.obs.monitor import MetricsObserver, MultiObserver, RunStats
    from repro.robust.sweep import run_sweep, sweep_table
    from repro.scenarios import build_scenario_specs, list_scenarios

    args = _build_scenarios_parser().parse_args(argv)
    if args.list_scenarios:
        for scenario in list_scenarios():
            battery = len(scenario.workload_specs)
            print(f"{scenario.name:28s} n={scenario.n_bins:<5d} "
                  f"workloads={battery:<3d} {scenario.description}")
        return 0
    if args.n_jobs != -1 and args.n_jobs < 1:
        print(f"error: --n-jobs must be >= 1 or -1, got {args.n_jobs}",
              file=sys.stderr)
        return 2
    if args.resume and not args.journal:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    try:
        epsilons = [float(e) for e in args.epsilons.split(",")
                    if e.strip()]
    except ValueError:
        print(f"error: bad --epsilons {args.epsilons!r}", file=sys.stderr)
        return 2
    publishers = (
        [p.strip() for p in args.publishers.split(",") if p.strip()]
        if args.publishers else None
    )
    names = (
        [s.strip() for s in args.scenarios.split(",") if s.strip()]
        if args.scenarios else []
    )
    if args.families:
        families = [f.strip() for f in args.families.split(",")
                    if f.strip()]
        try:
            for family in families:
                names.extend(s.name for s in list_scenarios(family))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    names = list(dict.fromkeys(names))  # dedup, keep order
    seeds = args.seeds
    if args.quick:
        seeds = min(seeds, 2)
        if args.epsilons == "0.1,1.0":
            epsilons = [1.0]
        if not names:
            names = [s.name for s in list_scenarios()
                     if s.n_bins <= 64]
    try:
        specs = build_scenario_specs(
            scenarios=names or None,
            publishers=publishers,
            epsilons=epsilons,
            n_seeds=seeds,
            n_jobs=args.n_jobs,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = RunStats()
    observers = [stats]
    if args.history:
        observers.append(MetricsObserver(obs_metrics.get_registry()))
    results = run_sweep(
        specs,
        n_jobs=args.n_jobs,
        timeout=args.timeout,
        retries=args.retries,
        journal=args.journal,
        resume=args.resume,
        observer=MultiObserver(observers),
    )
    table, failures = sweep_table(results)
    table.title = "scenario sweep"
    print(render_table(table))
    print(stats.summary_line())
    if args.history:
        _ingest_sweep_history(args, specs, results, None, obs_metrics)
    if failures:
        print()
        print(f"{len(failures)} quarantined trial(s):")
        for failed in failures:
            print(f"  {failed.describe()}")
        return 1
    return 0


def _build_paper_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dphist paper",
        description="Render the repro-paper publication bundle — "
                    "markdown + LaTeX tables and SVG crossover figures "
                    "— deterministically from the run-history store "
                    "(docs/evaluation.md).  Each artifact generates "
                    "inside its own error firewall; failures are "
                    "listed, not fatal to the rest.",
    )
    parser.add_argument("--db", required=True, metavar="DB",
                        help="run-history store to render from")
    parser.add_argument("--out", required=True, metavar="DIR",
                        help="output directory (paper.md, tables/, "
                             "figures/)")
    return parser


def _paper_main(argv: List[str]) -> int:
    """Entry point for ``python -m repro paper ...``."""
    from pathlib import Path

    from repro.exceptions import HistoryError
    from repro.experiments.paper import generate_paper

    args = _build_paper_parser().parse_args(argv)
    if not Path(args.db).exists():
        print(f"error: history store {args.db} does not exist "
              "(ingest something first)", file=sys.stderr)
        return 2
    try:
        result = generate_paper(args.db, args.out)
    except HistoryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for path in result.written:
        print(f"wrote {path}")
    for name in sorted(result.skipped):
        print(f"skipped {name} (no data)")
    for artifact, error in result.failures:
        print(f"warning: {artifact} failed: {error}", file=sys.stderr)
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    raw = list(argv) if argv is not None else sys.argv[1:]
    if raw and raw[0] == "history":
        return _history_main(raw[1:])
    if raw and raw[0] == "serve":
        return _serve_main(raw[1:])
    if raw and raw[0] == "replay":
        return _replay_main(raw[1:])
    if raw and raw[0] == "scenarios":
        return _scenarios_main(raw[1:])
    if raw and raw[0] == "paper":
        return _paper_main(raw[1:])

    parser = _build_parser()
    args = parser.parse_args(raw)

    if args.list_experiments:
        for name in list_experiments():
            print(name)
        return 0

    if not args.experiment:
        parser.print_help()
        return 2

    if args.experiment == "verify":
        return _run_verify(args)

    if args.experiment == "run":
        return _run_sweep(args)

    if args.experiment == "report":
        return _run_report(args)

    if args.experiment == "bench":
        from repro.perf.bench import run_bench

        return run_bench(
            quick=args.quick,
            check=args.check,
            output_dir=args.output_dir,
            history=args.history,
            profile=args.profile,
            max_n=args.max_n,
        )

    if args.n_jobs != -1 and args.n_jobs < 1:
        print(f"error: --n-jobs must be >= 1 or -1, got {args.n_jobs}",
              file=sys.stderr)
        return 2

    names = list_experiments() if args.experiment == "all" else [args.experiment]
    for name in names:
        try:
            tables = run_experiment(name, quick=args.quick, n_jobs=args.n_jobs)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        for table in tables:
            print(render_table(table))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
