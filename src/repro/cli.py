"""Command-line interface: ``python -m repro <experiment-id> [...]``.

Examples
--------
List everything::

    python -m repro --list

Run one figure quickly::

    python -m repro fig_range_vs_len --quick

Run the full evaluation (slow; this is what EXPERIMENTS.md records)::

    python -m repro all
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.registry import list_experiments, run_experiment
from repro.experiments.tables import render_table

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dphist",
        description="Regenerate the evaluation of 'Differentially Private "
                    "Histogram Publication' (ICDE 2012).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (see --list), or 'all' to run everything",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink grids/seeds so each experiment finishes in seconds",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_experiments",
        help="list the available experiment ids and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_experiments:
        for name in list_experiments():
            print(name)
        return 0

    if not args.experiment:
        parser.print_help()
        return 2

    names = list_experiments() if args.experiment == "all" else [args.experiment]
    for name in names:
        try:
            tables = run_experiment(name, quick=args.quick)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        for table in tables:
            print(render_table(table))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
